/**
 * @file
 * Work-stealing thread pool for the experiment-orchestration engine.
 *
 * Each worker owns a deque: it pushes and pops its own work at the
 * back and, when empty, steals from the front of a sibling's deque
 * (oldest task first), so large task batches spread across cores with
 * minimal contention. The pool executes tasks in an unspecified order
 * — callers that need deterministic output must make each task
 * independent and write to a pre-assigned slot (see engine.cc).
 *
 * `jobs == 1` is special-cased everywhere above this layer: the
 * serial path never constructs a pool, so single-job runs are exactly
 * the legacy code path with no threads involved.
 */

#ifndef PHOENIX_EXP_POOL_H
#define PHOENIX_EXP_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace phoenix::exp {

/** Resolve a --jobs value: 0 means hardware_concurrency (min 1). */
int resolveJobs(int jobs);

/** Fixed-size work-stealing pool. Tasks must not throw. */
class WorkStealingPool
{
  public:
    /** Spawn @p threads workers (at least 1). */
    explicit WorkStealingPool(int threads);

    /** Drains remaining work, then joins all workers. */
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /**
     * Enqueue a task. Tasks submitted from a worker thread go to that
     * worker's own deque (depth-first, cache-friendly); external
     * submissions are dealt round-robin across workers.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    int threadCount() const { return static_cast<int>(workers_.size()); }

  private:
    struct Worker
    {
        std::deque<std::function<void()>> tasks;
        std::mutex mutex;
    };

    void workerLoop(size_t self);
    bool popOwn(size_t self, std::function<void()> &task);
    bool steal(size_t self, std::function<void()> &task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex stateMutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    size_t pending_ = 0; // submitted but not yet finished
    size_t nextWorker_ = 0;
    bool stopping_ = false;
};

/**
 * Run fn(i) for every i in [0, count) on @p jobs threads (resolved via
 * resolveJobs). jobs == 1 runs serially on the calling thread with no
 * pool; otherwise each index is one stealable task. Returns the
 * resolved job count actually used.
 */
int parallelFor(int jobs, size_t count,
                const std::function<void(size_t)> &fn);

/**
 * Pool-backed executor for the planner/packer shard hooks
 * (core::ShardRunner is structurally this signature; core itself stays
 * thread-free). Shards write only their own arenas and results are
 * merged in shard order, so the outputs are identical whichever thread
 * runs which shard.
 */
inline std::function<void(size_t, const std::function<void(size_t)> &)>
shardRunner(int jobs)
{
    return [jobs](size_t count,
                  const std::function<void(size_t)> &fn) {
        parallelFor(jobs, count, fn);
    };
}

} // namespace phoenix::exp

#endif // PHOENIX_EXP_POOL_H
