#include "engine.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <sstream>

#include "exp/pool.h"
#include "util/stats.h"

namespace phoenix::exp {

namespace {

MetricStats
statsOf(const std::vector<double> &sample)
{
    MetricStats stats;
    if (sample.empty())
        return stats;
    util::RunningStat running;
    for (double x : sample)
        running.add(x);
    stats.mean = running.mean();
    stats.stddev = running.stddev();
    stats.min = running.min();
    stats.max = running.max();
    return stats;
}

} // namespace

std::vector<CellResult>
runGridCells(const adaptlab::Environment &env, const SweepGridSpec &spec,
             const EngineOptions &options)
{
    const std::vector<GridCell> cells = enumerateCells(spec);
    std::vector<CellResult> results(cells.size());
    parallelFor(options.jobs, cells.size(), [&](size_t i) {
        const GridCell &cell = cells[i];
        const double rate = spec.failureRates[cell.rate];
        const auto started = std::chrono::steady_clock::now();
        // One trace track per cell: the cell index is canonical, so
        // the trace layout is independent of the thread schedule.
        obs::setCurrentTrack(static_cast<uint32_t>(i));
        std::optional<obs::ThreadMetricDelta> delta;
        if (obs::metricsEnabled())
            delta.emplace();
        // Fresh scheme per cell: no shared mutable state between
        // concurrently executing cells.
        const auto scheme = spec.schemes[cell.scheme].make();
        CellResult &out = results[i];
        out.cell = cell;
        out.metrics = adaptlab::runFailureTrial(
            env, *scheme, rate,
            adaptlab::trialSeed(spec.seedBase, rate, cell.trial));
        if (delta)
            out.obsMetrics = delta->finish();
        out.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started)
                .count();
    });
    return results;
}

std::vector<SweepAggregate>
aggregateGrid(const SweepGridSpec &spec,
              const std::vector<CellResult> &results)
{
    std::vector<SweepAggregate> aggregates;
    aggregates.reserve(spec.schemes.size() * spec.failureRates.size());
    // results are in canonical order: for each scheme, for each rate,
    // trials are contiguous — walk group by group.
    size_t index = 0;
    for (size_t s = 0; s < spec.schemes.size(); ++s) {
        for (size_t r = 0; r < spec.failureRates.size(); ++r) {
            SweepAggregate agg;
            agg.scheme = spec.schemes[s].name;
            agg.failureRate = spec.failureRates[r];
            agg.trials = spec.trials;

            std::map<std::string, double> obs_sums;
            std::vector<adaptlab::TrialMetrics> batch;
            batch.reserve(static_cast<size_t>(spec.trials));
            std::vector<double> availability, strict, revenue, fair_pos,
                fair_neg, planner_util, util, plan_s, pack_s, served,
                ops_push, ops_probe, ops_sort;
            for (int t = 0; t < spec.trials; ++t, ++index) {
                const CellResult &cell = results[index];
                agg.wallSeconds += cell.wallSeconds;
                for (const auto &[name, delta] : cell.obsMetrics)
                    obs_sums[name] += delta;
                batch.push_back(cell.metrics);
                if (cell.metrics.schemeFailed) {
                    ++agg.failedTrials;
                    continue;
                }
                availability.push_back(cell.metrics.availability);
                strict.push_back(cell.metrics.availabilityStrict);
                revenue.push_back(cell.metrics.revenue);
                fair_pos.push_back(cell.metrics.fairnessPositive);
                fair_neg.push_back(cell.metrics.fairnessNegative);
                planner_util.push_back(cell.metrics.plannerUtilization);
                util.push_back(cell.metrics.utilization);
                plan_s.push_back(cell.metrics.planSeconds);
                pack_s.push_back(cell.metrics.packSeconds);
                served.push_back(cell.metrics.requestsServed);
                ops_push.push_back(cell.metrics.opsHeapPushes);
                ops_probe.push_back(cell.metrics.opsBestFitProbes);
                ops_sort.push_back(cell.metrics.opsChildSortElems);
            }
            // Same fold as the serial path, in the same trial order.
            agg.mean = adaptlab::averageTrials(batch);
            agg.availability = statsOf(availability);
            agg.availabilityStrict = statsOf(strict);
            agg.revenue = statsOf(revenue);
            agg.fairnessPositive = statsOf(fair_pos);
            agg.fairnessNegative = statsOf(fair_neg);
            agg.plannerUtilization = statsOf(planner_util);
            agg.utilization = statsOf(util);
            agg.planSeconds = statsOf(plan_s);
            agg.packSeconds = statsOf(pack_s);
            agg.requestsServed = statsOf(served);
            agg.opsHeapPushes = statsOf(ops_push);
            agg.opsBestFitProbes = statsOf(ops_probe);
            agg.opsChildSortElems = statsOf(ops_sort);
            agg.obs.assign(obs_sums.begin(), obs_sums.end());
            aggregates.push_back(std::move(agg));
        }
    }
    return aggregates;
}

std::vector<SweepAggregate>
runGrid(const adaptlab::Environment &env, const SweepGridSpec &spec,
        const EngineOptions &options)
{
    return aggregateGrid(spec, runGridCells(env, spec, options));
}

std::vector<adaptlab::SweepRow>
toSweepRows(const std::vector<SweepAggregate> &aggregates)
{
    std::vector<adaptlab::SweepRow> rows;
    rows.reserve(aggregates.size());
    for (const SweepAggregate &agg : aggregates)
        rows.push_back(adaptlab::SweepRow{agg.scheme, agg.mean});
    return rows;
}

namespace {

/** Exact (round-trippable) rendering of a double. */
void
appendExact(std::string &out, double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    out += buffer;
    out += ' ';
}

void
appendStats(std::string &out, const MetricStats &stats)
{
    appendExact(out, stats.mean);
    appendExact(out, stats.stddev);
    appendExact(out, stats.min);
    appendExact(out, stats.max);
}

} // namespace

std::string
canonicalMetricString(const std::vector<SweepAggregate> &aggregates)
{
    std::string out;
    for (const SweepAggregate &agg : aggregates) {
        out += agg.scheme;
        out += ' ';
        appendExact(out, agg.failureRate);
        out += std::to_string(agg.trials);
        out += ' ';
        out += std::to_string(agg.failedTrials);
        out += ' ';
        appendExact(out, agg.mean.availability);
        appendExact(out, agg.mean.availabilityStrict);
        appendExact(out, agg.mean.revenue);
        appendExact(out, agg.mean.fairnessPositive);
        appendExact(out, agg.mean.fairnessNegative);
        appendExact(out, agg.mean.plannerUtilization);
        appendExact(out, agg.mean.utilization);
        appendExact(out, agg.mean.requestsServed);
        appendStats(out, agg.availability);
        appendStats(out, agg.availabilityStrict);
        appendStats(out, agg.revenue);
        appendStats(out, agg.fairnessPositive);
        appendStats(out, agg.fairnessNegative);
        appendStats(out, agg.plannerUtilization);
        appendStats(out, agg.utilization);
        appendStats(out, agg.requestsServed);
        out += '\n';
    }
    return out;
}

} // namespace phoenix::exp
