/**
 * @file
 * The experiment-orchestration engine: executes a SweepGridSpec's
 * cells on a work-stealing thread pool and aggregates per-(scheme,
 * failure-rate) statistics.
 *
 * Determinism contract: a cell's metrics depend only on (environment,
 * scheme spec, failure rate, trial seed). The engine gives every cell
 * a freshly constructed scheme and a private copy of the cluster
 * state (made inside runFailureTrial), shares the environment's
 * immutable application/workload descriptors read-only, and writes
 * each result into the cell's pre-assigned slot. Aggregation then
 * walks cells in canonical (scheme, rate, trial) order — so the
 * aggregated metrics are bit-identical for any --jobs value and any
 * thread schedule, and identical to the legacy serial
 * adaptlab::sweepScheme. Wall-clock fields (planSeconds, packSeconds,
 * wallSeconds) are measurements, not simulation outputs, and are the
 * only fields exempt from the contract.
 */

#ifndef PHOENIX_EXP_ENGINE_H
#define PHOENIX_EXP_ENGINE_H

#include <string>
#include <utility>
#include <vector>

#include "adaptlab/environment.h"
#include "adaptlab/runner.h"
#include "exp/grid.h"
#include "obs/obs.h"

namespace phoenix::exp {

/** Engine knobs (the shared --jobs flag lands here). */
struct EngineOptions
{
    /** Worker threads; 0 = hardware_concurrency, 1 = serial (no pool). */
    int jobs = 0;
};

/** Raw outcome of one executed cell. */
struct CellResult
{
    GridCell cell;
    adaptlab::TrialMetrics metrics;
    /** Wall-clock seconds this cell took end to end. */
    double wallSeconds = 0.0;
    /** obs counter/histogram-count deltas this cell incremented
     * (name-sorted; empty with metrics disabled). */
    std::vector<std::pair<std::string, double>> obsMetrics;
};

/** min/mean/max/stddev of one metric across a cell group's trials. */
struct MetricStats
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Aggregated statistics of one (scheme, failure-rate) group. */
struct SweepAggregate
{
    std::string scheme;
    double failureRate = 0.0;
    int trials = 0;
    int failedTrials = 0;
    /** Per-field means, summed in trial order — bit-identical to the
     * legacy averageTrials over the same batch. */
    adaptlab::TrialMetrics mean;
    MetricStats availability;
    MetricStats availabilityStrict;
    MetricStats revenue;
    MetricStats fairnessPositive;
    MetricStats fairnessNegative;
    MetricStats plannerUtilization;
    MetricStats utilization;
    MetricStats planSeconds;
    MetricStats packSeconds;
    MetricStats requestsServed;
    /** Deterministic hot-path operation counters. Like the wall-clock
     * fields these describe implementation effort, not scheduling
     * decisions, so they are exempt from the canonicalMetricString
     * contract (equal decisions, fewer ops is the whole point). */
    MetricStats opsHeapPushes;
    MetricStats opsBestFitProbes;
    MetricStats opsChildSortElems;
    /** Summed wall-clock of the group's cells (CPU-time proxy). */
    double wallSeconds = 0.0;
    /** Summed obs metric deltas of the group's cells, name-sorted
     * (exported as the aggregate's "obs" JSON object; empty with
     * metrics disabled). Integer counter sums in canonical cell
     * order, so schedule-independent like everything else here. */
    std::vector<std::pair<std::string, double>> obs;
};

/** Execute every cell of @p spec; results in canonical cell order. */
std::vector<CellResult> runGridCells(const adaptlab::Environment &env,
                                     const SweepGridSpec &spec,
                                     const EngineOptions &options = {});

/** Fold cell results into per-(scheme, rate) aggregates. */
std::vector<SweepAggregate>
aggregateGrid(const SweepGridSpec &spec,
              const std::vector<CellResult> &results);

/** runGridCells + aggregateGrid. */
std::vector<SweepAggregate> runGrid(const adaptlab::Environment &env,
                                    const SweepGridSpec &spec,
                                    const EngineOptions &options = {});

/** Aggregates as legacy SweepRows (scheme name + mean metrics). */
std::vector<adaptlab::SweepRow>
toSweepRows(const std::vector<SweepAggregate> &aggregates);

/**
 * Canonical byte string of everything deterministic in @p aggregates
 * (all fields except the wall-clock measurements), with doubles
 * rendered exactly (hex float). Two runs of the same grid agree on
 * this string if and only if their simulation outputs are
 * bit-identical — the determinism ctest compares it across --jobs 1,
 * 4 and 16.
 */
std::string
canonicalMetricString(const std::vector<SweepAggregate> &aggregates);

} // namespace phoenix::exp

#endif // PHOENIX_EXP_ENGINE_H
