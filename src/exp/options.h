/**
 * @file
 * Shared command-line flags for every bench harness:
 *
 *   --jobs N       worker threads (0 = hardware_concurrency; 1 =
 *                  legacy serial path, no thread pool)
 *   --json PATH    JSON report path (default BENCH_<name>.json;
 *                  "none" disables)
 *   --csv PATH     CSV report path (default none)
 *   --filter SUB   keep only schemes whose name contains SUB
 *                  (case-insensitive)
 *   --trials N     override the harness's trial count
 *   --seed N       override the sweep's base seed
 *   --metrics      enable the obs metrics registry; per-cell metric
 *                  deltas land in the report's sweep sections and a
 *                  merged snapshot in an "obs.metrics" section
 *   --trace-out P  enable sim-time tracing and write a Chrome
 *                  trace-event JSON (Perfetto-loadable) to P
 *
 * Unknown flags print usage and exit(2); --help prints usage and
 * exit(0).
 */

#ifndef PHOENIX_EXP_OPTIONS_H
#define PHOENIX_EXP_OPTIONS_H

#include <string>

namespace phoenix::exp {

struct Options
{
    std::string benchName;
    int jobs = 0;
    std::string jsonPath; // defaulted to BENCH_<name>.json
    std::string csvPath = "none";
    std::string filter;
    int trials = -1;         // -1 = harness default
    int64_t seed = -1;       // -1 = harness default
    bool metrics = false;    // --metrics: obs registry on
    std::string traceOut;    // --trace-out: Chrome trace path

    /** @p fallback if --trials was not given. */
    int
    trialsOr(int fallback) const
    {
        return trials >= 0 ? trials : fallback;
    }

    /** @p fallback if --seed was not given. */
    uint64_t
    seedOr(uint64_t fallback) const
    {
        return seed >= 0 ? static_cast<uint64_t>(seed) : fallback;
    }
};

/** Parse argv; exits on --help or malformed flags. */
Options parseOptions(int argc, char **argv,
                     const std::string &benchName);

} // namespace phoenix::exp

#endif // PHOENIX_EXP_OPTIONS_H
