#include "timeseries.h"

namespace phoenix::exp {

double
recoveryTimeSince(const std::vector<SeriesPoint> &points,
                  double failureAt)
{
    if (failureAt < 0.0)
        return 0.0;
    double last_bad = -1.0;
    for (const SeriesPoint &point : points) {
        if (point.t >= failureAt && !point.ok)
            last_bad = point.t;
    }
    if (last_bad < 0.0)
        return 0.0;
    for (const SeriesPoint &point : points) {
        if (point.t > last_bad)
            return point.t - failureAt;
    }
    return -1.0; // still bad at the horizon
}

} // namespace phoenix::exp
