#include "runner.h"

#include <algorithm>

#include "sim/failure.h"

namespace phoenix::adaptlab {

using sim::ActiveSet;

TrialMetrics
runFailureTrial(const Environment &env, core::ResilienceScheme &scheme,
                double failure_rate, uint64_t seed)
{
    TrialMetrics metrics;
    metrics.failureRate = failure_rate;

    // Pre-failure reference.
    const ActiveSet before =
        sim::activeSetFromCluster(env.apps, env.cluster);
    const double avail_before =
        sim::criticalFractionAvailability(env.apps, before);
    const double strict_before =
        sim::criticalServiceAvailability(env.apps, before);
    const double revenue_before = sim::revenue(env.apps, before);

    sim::ClusterState cluster = env.cluster;
    sim::FailureInjector injector{util::Rng(seed)};
    injector.failCapacityFraction(cluster, failure_rate);

    core::SchemeResult result = scheme.apply(env.apps, cluster);
    metrics.planSeconds = result.planSeconds;
    metrics.packSeconds = result.packSeconds;
    metrics.opsHeapPushes = static_cast<double>(
        result.planOps.heapPushes + result.pack.ops.heapPushes);
    metrics.opsBestFitProbes = static_cast<double>(
        result.planOps.bestFitProbes + result.pack.ops.bestFitProbes);
    metrics.opsChildSortElems = static_cast<double>(
        result.planOps.childSortElems + result.pack.ops.childSortElems);
    metrics.schemeFailed = result.failed;
    if (result.failed)
        return metrics;

    const ActiveSet after = result.activeSet(env.apps);
    metrics.availability =
        avail_before > 0.0
            ? sim::criticalFractionAvailability(env.apps, after) /
                  avail_before
            : 0.0;
    metrics.availabilityStrict =
        strict_before > 0.0
            ? sim::criticalServiceAvailability(env.apps, after) /
                  strict_before
            : 0.0;
    metrics.revenue = revenue_before > 0.0
                          ? sim::revenue(env.apps, after) / revenue_before
                          : 0.0;

    const auto deviation =
        sim::fairShareDeviationPlaced(env.apps, result.pack.state);
    metrics.fairnessPositive = deviation.positive;
    metrics.fairnessNegative = deviation.negative;
    metrics.utilization = result.pack.state.utilization();

    // Planner-only utilization (Fig 8c's "Phoenix planner" series):
    // the ranked list's full intended demand against healthy capacity,
    // capped at 1 (the planner reserves quorums and fills the rest
    // opportunistically, so its target can nominally exceed capacity).
    double planned = 0.0;
    for (const auto &pod : result.plan)
        planned += env.apps[pod.app].services[pod.ms].totalCpu();
    const double healthy = result.pack.state.healthyCapacity();
    metrics.plannerUtilization =
        healthy > 0.0 ? std::min(1.0, planned / healthy) : 0.0;

    metrics.requestsServed = env.requestsServed(after);
    return metrics;
}

TrialMetrics
averageTrials(const std::vector<TrialMetrics> &trials)
{
    TrialMetrics mean;
    if (trials.empty())
        return mean;
    double n = 0.0;
    for (const TrialMetrics &t : trials) {
        if (t.schemeFailed) {
            mean.schemeFailed = true;
            continue;
        }
        mean.failureRate += t.failureRate;
        mean.availability += t.availability;
        mean.availabilityStrict += t.availabilityStrict;
        mean.revenue += t.revenue;
        mean.fairnessPositive += t.fairnessPositive;
        mean.fairnessNegative += t.fairnessNegative;
        mean.plannerUtilization += t.plannerUtilization;
        mean.utilization += t.utilization;
        mean.planSeconds += t.planSeconds;
        mean.packSeconds += t.packSeconds;
        mean.requestsServed += t.requestsServed;
        mean.opsHeapPushes += t.opsHeapPushes;
        mean.opsBestFitProbes += t.opsBestFitProbes;
        mean.opsChildSortElems += t.opsChildSortElems;
        n += 1.0;
    }
    if (n == 0.0)
        return mean;
    mean.failureRate /= n;
    mean.availability /= n;
    mean.availabilityStrict /= n;
    mean.revenue /= n;
    mean.fairnessPositive /= n;
    mean.fairnessNegative /= n;
    mean.plannerUtilization /= n;
    mean.utilization /= n;
    mean.planSeconds /= n;
    mean.packSeconds /= n;
    mean.requestsServed /= n;
    mean.opsHeapPushes /= n;
    mean.opsBestFitProbes /= n;
    mean.opsChildSortElems /= n;
    return mean;
}

std::vector<SweepRow>
sweepScheme(const Environment &env, core::ResilienceScheme &scheme,
            const std::vector<double> &failure_rates, int trials,
            uint64_t seed_base)
{
    std::vector<SweepRow> rows;
    for (double rate : failure_rates) {
        std::vector<TrialMetrics> batch;
        for (int t = 0; t < trials; ++t) {
            batch.push_back(runFailureTrial(
                env, scheme, rate, trialSeed(seed_base, rate, t)));
        }
        rows.push_back(SweepRow{scheme.name(), averageTrials(batch)});
    }
    return rows;
}

} // namespace phoenix::adaptlab
