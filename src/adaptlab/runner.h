/**
 * @file
 * AdaptLab experiment runner: inject a failure of a target capacity
 * fraction, run a resilience scheme, and score the resulting state on
 * the paper's metrics (critical service availability, normalized
 * revenue, fair-share deviation, utilization, planning time). Sweeps
 * average across trials with independent failure draws, as §6.2 does
 * (5 trials).
 */

#ifndef PHOENIX_ADAPTLAB_RUNNER_H
#define PHOENIX_ADAPTLAB_RUNNER_H

#include <string>
#include <vector>

#include "adaptlab/environment.h"
#include "core/schemes.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace phoenix::adaptlab {

/**
 * Seed of the (failure-rate, trial) cell of a sweep grid: a SplitMix64
 * chain over the sweep's base seed and the cell coordinates. Every
 * sweep runner — serial or parallel — derives per-trial seeds through
 * this one function, so results are independent of execution order.
 * Schemes are deliberately NOT part of the seed: all schemes face the
 * same failure draws (common random numbers), as in the paper.
 */
inline uint64_t
trialSeed(uint64_t seed_base, double failure_rate, int trial)
{
    return util::cellSeed(seed_base, util::doubleBits(failure_rate),
                          static_cast<uint64_t>(trial));
}

/** Metrics of one (scheme, failure-rate, seed) trial. */
struct TrialMetrics
{
    double failureRate = 0.0;
    /** Graded critical availability (mean fraction of C1 containers
     * activated per app), normalized to the pre-failure state — the
     * Fig 7a metric. */
    double availability = 0.0;
    /** Strict availability: fraction of apps with ALL C1 active. */
    double availabilityStrict = 0.0;
    /** Revenue normalized to the pre-failure state. */
    double revenue = 0.0;
    double fairnessPositive = 0.0;
    double fairnessNegative = 0.0;
    /** Utilization of the planner's target (before placement). */
    double plannerUtilization = 0.0;
    /** Utilization of the packed (placed) state. */
    double utilization = 0.0;
    double planSeconds = 0.0;
    double packSeconds = 0.0;
    /** Requests served per second after recovery (trace metric). */
    double requestsServed = 0.0;
    /** Deterministic hot-path operation counts (planner + packer),
     * stored as doubles so trial averaging works uniformly. These
     * fingerprint implementation effort, not decisions, and are
     * excluded from exp::canonicalMetricString. */
    double opsHeapPushes = 0.0;
    double opsBestFitProbes = 0.0;
    double opsChildSortElems = 0.0;
    bool schemeFailed = false;
};

/** Run one failure trial of @p scheme at @p failure_rate. */
TrialMetrics runFailureTrial(const Environment &env,
                             core::ResilienceScheme &scheme,
                             double failure_rate, uint64_t seed);

/** Mean metrics across trials at one failure rate. */
TrialMetrics averageTrials(const std::vector<TrialMetrics> &trials);

/** Sweep result: one averaged row per failure rate. */
struct SweepRow
{
    std::string scheme;
    TrialMetrics metrics;
};

/**
 * Sweep a scheme across @p failure_rates with @p trials independent
 * failure draws each.
 */
std::vector<SweepRow> sweepScheme(const Environment &env,
                                  core::ResilienceScheme &scheme,
                                  const std::vector<double> &failure_rates,
                                  int trials, uint64_t seed_base = 100);

} // namespace phoenix::adaptlab

#endif // PHOENIX_ADAPTLAB_RUNNER_H
