/**
 * @file
 * AdaptLab environment builder: assembles a simulated public-cloud
 * cluster (up to the paper's 100,000 nodes) running the Alibaba-style
 * application mix with a chosen resource model and tagging scheme, and
 * produces the healthy pre-failure placement every experiment starts
 * from.
 */

#ifndef PHOENIX_ADAPTLAB_ENVIRONMENT_H
#define PHOENIX_ADAPTLAB_ENVIRONMENT_H

#include <cstdint>
#include <vector>

#include "sim/cluster.h"
#include "sim/metrics.h"
#include "workloads/alibaba.h"
#include "workloads/resources.h"
#include "workloads/tagging.h"

namespace phoenix::adaptlab {

/** Environment parameters. */
struct EnvironmentConfig
{
    size_t nodeCount = 10000;
    /** Node capacity in the same normalized units as container sizes
     * (must exceed the largest container, default max 32). */
    double nodeCapacity = 64.0;
    /** Aggregate application demand / total cluster capacity. */
    double demandFraction = 0.80;
    /**
     * Cap on the per-microservice replica count used to reach the
     * demand target (0 = unlimited). 1 keeps the environment
     * single-replica — required by the exact LP baselines — at the
     * cost of a lower achieved demand fraction on big clusters.
     */
    int maxReplicas = 0;
    uint64_t seed = 1;

    workloads::AlibabaConfig alibaba;
    workloads::ResourceConfig resources;
    workloads::TaggingConfig tagging;
};

/** A ready-to-fail simulated cloud. */
struct Environment
{
    EnvironmentConfig config;
    std::vector<workloads::GeneratedApp> generated;
    /** Application descriptors handed to schemes. */
    std::vector<sim::Application> apps;
    /** Healthy cluster with the initial placement applied. */
    sim::ClusterState cluster;

    /** Requests per second served when the given active set holds. */
    double
    requestsServed(const sim::ActiveSet &active) const;
};

/** Build the environment (generate, assign, tag, place). */
Environment buildEnvironment(const EnvironmentConfig &config);

} // namespace phoenix::adaptlab

#endif // PHOENIX_ADAPTLAB_ENVIRONMENT_H
