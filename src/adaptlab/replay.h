/**
 * @file
 * Capacity-trace replay (Fig 8a): the cluster's available capacity
 * varies over a ~10-minute window (failures then staged recovery);
 * each scheme replans at every capacity change and the platform
 * reports user requests served over time by replaying the call-graph
 * mix against the active microservice set.
 */

#ifndef PHOENIX_ADAPTLAB_REPLAY_H
#define PHOENIX_ADAPTLAB_REPLAY_H

#include <vector>

#include "adaptlab/environment.h"
#include "core/schemes.h"

namespace phoenix::adaptlab {

/** One step of the capacity trace. */
struct CapacityPoint
{
    double timeSec = 0.0;
    /** Fraction of total capacity available in [0, 1]. */
    double capacityFraction = 1.0;
};

/** The paper-shaped 10-minute trace: dip to 40%, partial recovery,
 * second dip, full recovery. */
std::vector<CapacityPoint> defaultCapacityTrace();

/** One observation of the replay. */
struct ReplayPoint
{
    double timeSec = 0.0;
    double capacityFraction = 1.0;
    double requestsServed = 0.0;
};

/**
 * Replay @p trace against @p scheme: at each step the cluster is
 * failed/restored to the target capacity, the scheme replans, and the
 * served request rate is recorded.
 */
std::vector<ReplayPoint> replayTrace(const Environment &env,
                                     core::ResilienceScheme &scheme,
                                     const std::vector<CapacityPoint> &trace,
                                     uint64_t seed = 99);

} // namespace phoenix::adaptlab

#endif // PHOENIX_ADAPTLAB_REPLAY_H
