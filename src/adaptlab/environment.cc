#include "environment.h"

#include <algorithm>
#include <cmath>

#include "sim/metrics.h"
#include "util/rng.h"
#include "util/sorted_kv.h"

namespace phoenix::adaptlab {

using sim::MsId;
using sim::NodeId;
using sim::PodRef;

double
Environment::requestsServed(const sim::ActiveSet &active) const
{
    double served = 0.0;
    for (size_t a = 0; a < generated.size(); ++a) {
        const double per_second =
            generated[a].requestRate / (24.0 * 3600.0);
        for (const auto &tpl : generated[a].callGraphs) {
            bool all = true;
            for (MsId m : tpl.services) {
                if (!active[a][m]) {
                    all = false;
                    break;
                }
            }
            if (all)
                served += tpl.weight * per_second;
        }
    }
    return served;
}

Environment
buildEnvironment(const EnvironmentConfig &config)
{
    Environment env;
    env.config = config;

    workloads::AlibabaConfig alibaba = config.alibaba;
    alibaba.seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
    env.generated = workloads::AlibabaGenerator(alibaba).generate();

    workloads::assignResources(env.generated, config.resources);
    const double capacity =
        static_cast<double>(config.nodeCount) * config.nodeCapacity;
    const double target = capacity * config.demandFraction;
    const double max_container =
        std::min(config.resources.maxCpu, config.nodeCapacity);

    // Container (replica) sizes keep the resource model's native
    // distribution ([minCpu, maxCpu]); demand is matched to the target
    // by horizontally scaling every microservice (Appendix D: hot
    // services run many replica pods) and then scaling sizes *down*
    // only, which never violates the node-capacity clamp.
    double base_demand = 0.0;
    for (const auto &generated : env.generated)
        base_demand += generated.app.totalDemand();
    if (base_demand > 0.0 && base_demand < target) {
        int replicas = static_cast<int>(
            std::ceil(target / base_demand));
        if (config.maxReplicas > 0)
            replicas = std::min(replicas, config.maxReplicas);
        for (auto &generated : env.generated) {
            for (auto &ms : generated.app.services) {
                ms.replicas = replicas;
                // Stateless replicas behind a load balancer: a
                // majority quorum keeps the service up at reduced
                // throughput.
                ms.quorum = (replicas + 1) / 2;
            }
        }
    }
    // Scale only downward: when the replica cap keeps demand below
    // the target, scaling container sizes up instead would degenerate
    // the size distribution against the clamp.
    double replicated_demand = 0.0;
    for (const auto &generated : env.generated)
        replicated_demand += generated.app.totalDemand();
    if (replicated_demand > target)
        workloads::scaleTotalDemand(env.generated, target);
    // Safety clamp (scaling is downward after replication, so this is
    // normally a no-op).
    for (auto &generated : env.generated) {
        for (auto &ms : generated.app.services)
            ms.cpu = std::min(ms.cpu, max_container);
    }

    workloads::assignCriticality(env.generated, config.tagging);

    // Heterogeneous willingness-to-pay for the revenue objective.
    util::Rng rng(config.seed * 31 + 17);
    for (auto &generated : env.generated)
        generated.app.pricePerUnit = rng.uniform(1.0, 5.0);

    env.apps.reserve(env.generated.size());
    for (size_t a = 0; a < env.generated.size(); ++a) {
        env.apps.push_back(env.generated[a].app);
        env.apps.back().id = static_cast<sim::AppId>(a);
    }

    // Cluster + initial placement: first-fit-decreasing best-fit; at
    // the default 80% aggregate demand everything places.
    for (size_t n = 0; n < config.nodeCount; ++n)
        env.cluster.addNode(config.nodeCapacity);

    struct Item
    {
        double cpu;
        PodRef pod;
    };
    std::vector<Item> items;
    for (size_t a = 0; a < env.apps.size(); ++a) {
        for (const auto &ms : env.apps[a].services) {
            for (int r = 0; r < std::max(ms.replicas, 1); ++r) {
                items.push_back(
                    Item{ms.cpu, PodRef{static_cast<sim::AppId>(a),
                                        ms.id,
                                        static_cast<uint32_t>(r)}});
            }
        }
    }
    std::sort(items.begin(), items.end(), [](const Item &x,
                                             const Item &y) {
        if (x.cpu != y.cpu)
            return x.cpu > y.cpu;
        return x.pod < y.pod;
    });

    util::SortedKv<double, NodeId> by_remaining;
    for (NodeId id : env.cluster.healthyNodes())
        by_remaining.insert(env.cluster.remaining(id), id);
    for (const Item &item : items) {
        const auto slot = by_remaining.firstAtLeast(item.cpu);
        if (!slot)
            continue; // oversubscribed environment: leave unplaced
        by_remaining.erase(slot->first, slot->second);
        env.cluster.place(item.pod, slot->second, item.cpu);
        by_remaining.insert(env.cluster.remaining(slot->second),
                            slot->second);
    }
    return env;
}

} // namespace phoenix::adaptlab
