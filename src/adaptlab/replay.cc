#include "replay.h"

#include "util/rng.h"

namespace phoenix::adaptlab {

std::vector<CapacityPoint>
defaultCapacityTrace()
{
    // 10 minutes: healthy -> crash to 40% -> partial recovery to 70%
    // -> second dip to 50% -> full recovery. Matches the shape of the
    // solid capacity line of Fig 8a.
    return {
        {0.0, 1.00}, {60.0, 1.00},  {90.0, 0.40},  {210.0, 0.40},
        {240.0, 0.70}, {330.0, 0.70}, {360.0, 0.50}, {450.0, 0.50},
        {480.0, 1.00}, {600.0, 1.00},
    };
}

std::vector<ReplayPoint>
replayTrace(const Environment &env, core::ResilienceScheme &scheme,
            const std::vector<CapacityPoint> &trace, uint64_t seed)
{
    util::Rng rng(seed);
    sim::ClusterState cluster = env.cluster;
    const double total = cluster.totalCapacity();

    std::vector<ReplayPoint> points;
    for (const CapacityPoint &step : trace) {
        const double target = step.capacityFraction * total;

        // Fail or restore random nodes toward the target capacity.
        std::vector<sim::NodeId> healthy = cluster.healthyNodes();
        rng.shuffle(healthy);
        size_t cursor = 0;
        while (cluster.healthyCapacity() > target + 1e-9 &&
               cursor < healthy.size()) {
            cluster.failNode(healthy[cursor++]);
        }
        if (cluster.healthyCapacity() < target - 1e-9) {
            std::vector<sim::NodeId> failed;
            for (size_t n = 0; n < cluster.nodeCount(); ++n) {
                const auto id = static_cast<sim::NodeId>(n);
                if (!cluster.isHealthy(id))
                    failed.push_back(id);
            }
            rng.shuffle(failed);
            for (sim::NodeId id : failed) {
                if (cluster.healthyCapacity() >= target - 1e-9)
                    break;
                cluster.restoreNode(id);
            }
        }

        core::SchemeResult result = scheme.apply(env.apps, cluster);
        if (!result.failed)
            cluster = result.pack.state; // plan is enacted; carry over

        ReplayPoint point;
        point.timeSec = step.timeSec;
        point.capacityFraction = cluster.healthyCapacity() / total;
        point.requestsServed = env.requestsServed(
            sim::activeSetFromCluster(env.apps, cluster));
        points.push_back(point);
    }
    return points;
}

} // namespace phoenix::adaptlab
