#include "metrics.h"

#include "lp/waterfill.h"

namespace phoenix::sim {

ActiveSet
emptyActiveSet(const std::vector<Application> &apps)
{
    ActiveSet active(apps.size());
    for (size_t a = 0; a < apps.size(); ++a)
        active[a].assign(apps[a].services.size(), false);
    return active;
}

ActiveSet
activeSetFromCluster(const std::vector<Application> &apps,
                     const ClusterState &cluster)
{
    // A microservice is active only when every replica is placed
    // (Appendix D).
    std::vector<std::vector<int>> placed(apps.size());
    for (size_t a = 0; a < apps.size(); ++a)
        placed[a].assign(apps[a].services.size(), 0);
    for (const auto &[pod, node] : cluster.assignment()) {
        (void)node;
        if (pod.app < placed.size() && pod.ms < placed[pod.app].size())
            ++placed[pod.app][pod.ms];
    }
    ActiveSet active = emptyActiveSet(apps);
    for (size_t a = 0; a < apps.size(); ++a) {
        for (const auto &ms : apps[a].services) {
            active[a][ms.id] = placed[a][ms.id] >= ms.quorumCount();
        }
    }
    return active;
}

std::vector<double>
perAppCriticalAvailability(const std::vector<Application> &apps,
                           const ActiveSet &active)
{
    std::vector<double> out(apps.size(), 0.0);
    for (size_t a = 0; a < apps.size(); ++a) {
        bool all_critical_up = true;
        for (const auto &ms : apps[a].services) {
            if (ms.criticality == kC1 && !active[a][ms.id]) {
                all_critical_up = false;
                break;
            }
        }
        out[a] = all_critical_up ? 1.0 : 0.0;
    }
    return out;
}

double
criticalServiceAvailability(const std::vector<Application> &apps,
                            const ActiveSet &active)
{
    if (apps.empty())
        return 0.0;
    const auto per_app = perAppCriticalAvailability(apps, active);
    double total = 0.0;
    for (double v : per_app)
        total += v;
    return total / static_cast<double>(apps.size());
}

double
criticalFractionAvailability(const std::vector<Application> &apps,
                             const ActiveSet &active)
{
    if (apps.empty())
        return 0.0;
    double total = 0.0;
    for (size_t a = 0; a < apps.size(); ++a) {
        size_t critical = 0;
        size_t up = 0;
        for (const auto &ms : apps[a].services) {
            if (ms.criticality != kC1)
                continue;
            ++critical;
            if (active[a][ms.id])
                ++up;
        }
        total += critical == 0 ? 1.0
                               : static_cast<double>(up) /
                                     static_cast<double>(critical);
    }
    return total / static_cast<double>(apps.size());
}

double
revenue(const std::vector<Application> &apps, const ActiveSet &active)
{
    double total = 0.0;
    for (size_t a = 0; a < apps.size(); ++a) {
        for (const auto &ms : apps[a].services) {
            if (active[a][ms.id])
                total += apps[a].pricePerUnit * ms.totalCpu();
        }
    }
    return total;
}

double
revenueNormalized(const std::vector<Application> &apps,
                  const ActiveSet &active)
{
    double full = 0.0;
    for (const auto &app : apps)
        full += app.pricePerUnit * app.totalDemand();
    if (full <= 0.0)
        return 0.0;
    return revenue(apps, active) / full;
}

std::vector<double>
perAppUsage(const std::vector<Application> &apps, const ActiveSet &active)
{
    std::vector<double> usage(apps.size(), 0.0);
    for (size_t a = 0; a < apps.size(); ++a) {
        for (const auto &ms : apps[a].services) {
            if (active[a][ms.id])
                usage[a] += ms.totalCpu();
        }
    }
    return usage;
}

FairnessDeviation
fairShareDeviation(const std::vector<Application> &apps,
                   const ActiveSet &active, double capacity)
{
    FairnessDeviation dev;
    if (apps.empty() || capacity <= 0.0)
        return dev;

    std::vector<double> demands;
    demands.reserve(apps.size());
    for (const auto &app : apps)
        demands.push_back(app.totalDemand());
    const auto fair = lp::waterFill(demands, capacity);
    const auto usage = perAppUsage(apps, active);

    for (size_t a = 0; a < apps.size(); ++a) {
        const double delta = usage[a] - fair[a];
        if (delta > 0.0)
            dev.positive += delta;
        else
            dev.negative += -delta;
    }
    dev.positive /= capacity;
    dev.negative /= capacity;
    return dev;
}

FairnessDeviation
fairShareDeviationPlaced(const std::vector<Application> &apps,
                         const ClusterState &cluster)
{
    FairnessDeviation dev;
    const double capacity = cluster.healthyCapacity();
    if (apps.empty() || capacity <= 0.0)
        return dev;

    std::vector<double> demands;
    demands.reserve(apps.size());
    for (const auto &app : apps)
        demands.push_back(app.totalDemand());
    const auto fair = lp::waterFill(demands, capacity);

    std::vector<double> usage(apps.size(), 0.0);
    for (const auto &[pod, node] : cluster.assignment()) {
        (void)node;
        if (pod.app < usage.size())
            usage[pod.app] += cluster.podCpu(pod);
    }

    for (size_t a = 0; a < apps.size(); ++a) {
        const double delta = usage[a] - fair[a];
        if (delta > 0.0)
            dev.positive += delta;
        else
            dev.negative += -delta;
    }
    dev.positive /= capacity;
    dev.negative /= capacity;
    return dev;
}

bool
respectsCriticalityOrder(const std::vector<Application> &apps,
                         const ActiveSet &active)
{
    for (size_t a = 0; a < apps.size(); ++a) {
        // Find the most critical (lowest tag) inactive level; no active
        // service may have a strictly higher tag... i.e. for any pair
        // (j active, k inactive) require C(j) <= C(k).
        Criticality lowest_inactive = kLowestCriticality + 1;
        Criticality highest_active = 0;
        for (const auto &ms : apps[a].services) {
            if (active[a][ms.id])
                highest_active = std::max(highest_active, ms.criticality);
            else
                lowest_inactive =
                    std::min(lowest_inactive, ms.criticality);
        }
        if (highest_active > lowest_inactive)
            return false;
    }
    return true;
}

bool
respectsDependencies(const std::vector<Application> &apps,
                     const ActiveSet &active)
{
    for (size_t a = 0; a < apps.size(); ++a) {
        const auto &app = apps[a];
        if (!app.hasDependencyGraph)
            continue;
        for (const auto &ms : app.services) {
            if (!active[a][ms.id])
                continue;
            const auto &preds = app.dag.predecessors(ms.id);
            if (preds.empty())
                continue; // source node
            bool has_active_pred = false;
            for (auto p : preds) {
                if (active[a][p]) {
                    has_active_pred = true;
                    break;
                }
            }
            if (!has_active_pred)
                return false;
        }
    }
    return true;
}

} // namespace phoenix::sim
