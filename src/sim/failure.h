/**
 * @file
 * Failure injection for AdaptLab experiments: fail a target fraction of
 * cluster capacity (or node count) at random, as the paper's
 * sub-datacenter "disaster" events do.
 */

#ifndef PHOENIX_SIM_FAILURE_H
#define PHOENIX_SIM_FAILURE_H

#include <vector>

#include "sim/cluster.h"
#include "util/rng.h"

namespace phoenix::sim {

/** Outcome of one injected failure event. */
struct FailureEvent
{
    std::vector<NodeId> failedNodes;
    std::vector<PodRef> evictedPods;
    double failedCapacity = 0.0;
};

/**
 * Randomized failure injector. All methods mutate the cluster in place
 * and report what failed.
 */
class FailureInjector
{
  public:
    explicit FailureInjector(util::Rng rng) : rng_(rng) {}

    /**
     * Fail random healthy nodes until at least @p fraction of the total
     * cluster capacity is down (the paper's "capacity reduced to X%"
     * events fail 1-X of capacity).
     */
    FailureEvent failCapacityFraction(ClusterState &cluster,
                                      double fraction);

    /** Fail @p count random healthy nodes. */
    FailureEvent failNodeCount(ClusterState &cluster, size_t count);

    /** Restore every failed node. */
    std::vector<NodeId> restoreAll(ClusterState &cluster);

  private:
    util::Rng rng_;
};

} // namespace phoenix::sim

#endif // PHOENIX_SIM_FAILURE_H
