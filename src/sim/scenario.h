/**
 * @file
 * Declarative failure-scenario engine (Fig 6, §6.1 recovery dynamics).
 *
 * The paper's end-to-end evaluation is about *recovery dynamics*: how
 * a resilience scheme behaves while failures unfold and capacity
 * returns. A Scenario is a declarative list of timed steps — explicit
 * or randomized node failures, correlated zone outages, rolling
 * failures, kubelet flaps (stop→start inside or outside the node
 * grace period), capacity-fraction failures, and staggered partial
 * recovery. A ScenarioRunner arms the steps on the shared EventQueue
 * and drives any FaultTarget (the mini-Kubernetes cluster implements
 * the interface), recording a per-node trace of everything it
 * injected.
 *
 * Randomized selections (failCount, failCapacityFraction, rollingFail)
 * draw from an explicitly seeded Rng in event-fire order, so a
 * scenario is reproducible bit-for-bit for a given seed.
 */

#ifndef PHOENIX_SIM_SCENARIO_H
#define PHOENIX_SIM_SCENARIO_H

#include <set>
#include <vector>

#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/types.h"
#include "util/rng.h"

namespace phoenix::sim {

/**
 * Fault-injection surface the scenario engine drives. KubeCluster
 * implements it (failure = kubelet stop, recovery = kubelet start);
 * tests may implement it directly to observe injection order.
 */
class FaultTarget
{
  public:
    virtual ~FaultTarget() = default;

    virtual size_t nodeCount() const = 0;
    virtual double nodeCapacity(NodeId node) const = 0;
    /** Take the node down (for Kubernetes: stop its kubelet). */
    virtual void injectNodeFailure(NodeId node) = 0;
    /** Bring the node back (for Kubernetes: restart its kubelet). */
    virtual void injectNodeRecovery(NodeId node) = 0;
};

/** Scenario-wide knobs. */
struct ScenarioOptions
{
    /** Seed for randomized node selection. */
    uint64_t seed = 42;
    /** Zone assignment: node belongs to zone (id % zoneCount). */
    size_t zoneCount = 5;
};

/** One injected action, for traces and tests. */
enum class ScenarioAction { Fail, Recover };

struct ScenarioTraceEntry
{
    SimTime at = 0.0;
    ScenarioAction action = ScenarioAction::Fail;
    NodeId node = 0;
};

/**
 * The declarative scenario: an ordered list of timed steps built
 * through the fluent helpers. Steps may be added in any order; the
 * runner schedules each at its own instant.
 */
class Scenario
{
  public:
    struct Step
    {
        enum class Kind {
            FailNodes,           //!< fail an explicit node set
            FailCount,           //!< fail N random up nodes
            FailCapacityFraction,//!< fail until >= fraction of capacity down
            FailZone,            //!< correlated outage of one zone
            RollingFail,         //!< one random node every interval
            Flap,                //!< kubelet stop, restart after downtime
            RecoverNodes,        //!< recover an explicit node set
            RecoverAll,          //!< recover every down node (staggered)
        };

        SimTime at = 0.0;
        Kind kind = Kind::FailNodes;
        std::vector<NodeId> nodes;
        size_t count = 0;
        double fraction = 0.0;
        size_t zone = 0;
        /** Rolling spacing / staggered-recovery spacing (seconds). */
        double interval = 0.0;
        /** Flap: seconds between the stop and the restart. */
        double downtime = 0.0;
    };

    Scenario &failNodes(SimTime at, std::vector<NodeId> nodes);
    Scenario &failCount(SimTime at, size_t count);
    /** Fail random up nodes until at least @p fraction of the total
     * cluster capacity is down (cumulative with earlier failures —
     * the paper's "capacity reduced to X%" events). */
    Scenario &failCapacityFraction(SimTime at, double fraction);
    Scenario &failZone(SimTime at, size_t zone);
    /** Fail @p count random up nodes, one every @p interval seconds
     * starting at @p at. */
    Scenario &rollingFail(SimTime at, size_t count, double interval);
    /** Stop the kubelet at @p at, restart it @p downtime seconds
     * later: inside the node grace period the flap is invisible,
     * outside it the node goes NotReady and evicts exactly once. */
    Scenario &flapKubelet(SimTime at, NodeId node, double downtime);
    Scenario &recoverNodes(SimTime at, std::vector<NodeId> nodes);
    /** Recover every currently-down node; @p stagger > 0 spaces the
     * recoveries that many seconds apart in ascending node order
     * (staggered partial recovery). */
    Scenario &recoverAll(SimTime at, double stagger = 0.0);

    const std::vector<Step> &steps() const { return steps_; }

    /** Instant of the earliest failure-injecting step; -1 if none. */
    SimTime firstFailureAt() const;

  private:
    std::vector<Step> steps_;
};

/**
 * Executes a Scenario against a FaultTarget on the EventQueue. The
 * constructor arms every step; the runner must outlive the
 * simulation. The runner tracks which nodes *it* took down, so
 * recoverAll only touches scenario-injected failures.
 */
class ScenarioRunner
{
  public:
    ScenarioRunner(EventQueue &events, FaultTarget &target,
                   Scenario scenario, ScenarioOptions options = {});

    /** Everything injected so far, in injection order. */
    const std::vector<ScenarioTraceEntry> &trace() const
    {
        return trace_;
    }

    /** Nodes the scenario has failed and not yet recovered (sorted). */
    std::vector<NodeId> downNodes() const;

    /** Capacity of the currently-down nodes. */
    double downCapacity() const;

    SimTime firstFailureAt() const { return firstFailureAt_; }

  private:
    void armStep(const Scenario::Step &step);
    void runStep(const Scenario::Step &step);
    void failNode(NodeId node);
    void recoverNode(NodeId node);
    /** Up nodes (never failed or already recovered), ascending. */
    std::vector<NodeId> upNodes() const;
    double totalCapacity() const;

    EventQueue &events_;
    FaultTarget &target_;
    Scenario scenario_;
    ScenarioOptions options_;
    util::Rng rng_;
    std::set<NodeId> down_;
    std::vector<ScenarioTraceEntry> trace_;
    SimTime firstFailureAt_ = -1.0;

    /** obs handles, resolved once at construction. */
    struct ObsHandles
    {
        obs::Counter *nodeFailures = nullptr;
        obs::Counter *nodeRecoveries = nullptr;
        obs::Counter *steps = nullptr;
    };
    ObsHandles obs_;
};

} // namespace phoenix::sim

#endif // PHOENIX_SIM_SCENARIO_H
