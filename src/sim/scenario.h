/**
 * @file
 * Declarative failure-scenario engine (Fig 6, §6.1 recovery dynamics).
 *
 * The paper's end-to-end evaluation is about *recovery dynamics*: how
 * a resilience scheme behaves while failures unfold and capacity
 * returns. A Scenario is a declarative list of timed steps — explicit
 * or randomized node failures, correlated zone outages, rolling
 * failures, kubelet flaps (stop→start inside or outside the node
 * grace period), capacity-fraction failures, and staggered partial
 * recovery. A ScenarioRunner arms the steps on the shared EventQueue
 * and drives any FaultTarget (the mini-Kubernetes cluster implements
 * the interface), recording a per-node trace of everything it
 * injected.
 *
 * Beyond clean node loss, the engine covers the fault classes where
 * orchestrators actually break (the cloud-edge failure-injection
 * taxonomy): zone/node *network partitions* (heartbeats stop reaching
 * the control plane while the node keeps running), *degraded* nodes
 * (capacity/latency multiplier — slow, not dead), *API-server
 * outages* (the controller's observation freezes while the cluster
 * keeps evolving), and *clock skew* on kubelet heartbeats.
 *
 * Randomized selections (failCount, failCapacityFraction, rollingFail)
 * draw from an explicitly seeded Rng in event-fire order, so a
 * scenario is reproducible bit-for-bit for a given seed.
 *
 * Input validation: the fluent builders clamp out-of-domain arguments
 * deterministically (fractions into [0,1], negative
 * intervals/downtimes/staggers to 0, degrade factors into
 * [kMinDegradeFactor, 1]) instead of silently misbehaving; counts
 * larger than the node set saturate at "every node" at fire time.
 */

#ifndef PHOENIX_SIM_SCENARIO_H
#define PHOENIX_SIM_SCENARIO_H

#include <map>
#include <set>
#include <vector>

#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/types.h"
#include "util/rng.h"

namespace phoenix::sim {

/** Degrade factors below this clamp up to it (a factor of 0 would be
 * a dead node — that is what injectNodeFailure is for). */
constexpr double kMinDegradeFactor = 1.0 / 64.0;

/**
 * Fault-injection surface the scenario engine drives. KubeCluster
 * implements it (failure = kubelet stop, recovery = kubelet start);
 * tests may implement it directly to observe injection order.
 *
 * The extended taxonomy hooks default to no-ops so a target that only
 * models clean node loss still composes with any scenario; KubeCluster
 * overrides all of them.
 */
class FaultTarget
{
  public:
    virtual ~FaultTarget() = default;

    virtual size_t nodeCount() const = 0;
    virtual double nodeCapacity(NodeId node) const = 0;
    /**
     * Explicit failure-domain label for a node, or -1 when the target
     * has no topology. Zone-scoped steps (FailZone, PartitionZone,
     * DegradeZone) use explicit labels when the target reports them
     * and fall back to the classic id % zoneCount partition otherwise,
     * so targets without topology behave exactly as before.
     */
    virtual int
    nodeZone(NodeId node) const
    {
        (void)node;
        return -1;
    }
    /** Take the node down (for Kubernetes: stop its kubelet). */
    virtual void injectNodeFailure(NodeId node) = 0;
    /** Bring the node back (for Kubernetes: restart its kubelet). */
    virtual void injectNodeRecovery(NodeId node) = 0;

    /** Network-partition the node from the control plane: heartbeats
     * stop arriving but the node (and its pods) keep running. */
    virtual void injectPartition(NodeId node) { (void)node; }
    /** Heal the partition; heartbeats resume on their own cadence. */
    virtual void injectPartitionHeal(NodeId node) { (void)node; }
    /** Degrade (slow-not-dead): schedulable capacity multiplied by
     * @p factor in (0, 1]; 1.0 restores full service. */
    virtual void injectDegrade(NodeId node, double factor)
    {
        (void)node;
        (void)factor;
    }
    /** Skew the node's kubelet clock: heartbeat timestamps carry
     * now + skew seconds; 0 restores an honest clock. */
    virtual void injectClockSkew(NodeId node, double skewSeconds)
    {
        (void)node;
        (void)skewSeconds;
    }
    /** API-server outage window: controller-facing observation
     * freezes; the cluster itself keeps evolving. */
    virtual void injectApiOutageBegin() {}
    virtual void injectApiOutageEnd() {}
};

/** Scenario-wide knobs. */
struct ScenarioOptions
{
    /** Seed for randomized node selection. */
    uint64_t seed = 42;
    /** Zone assignment: node belongs to zone (id % zoneCount). */
    size_t zoneCount = 5;
};

/** One injected action, for traces and tests. */
enum class ScenarioAction {
    Fail,
    Recover,
    Partition,       //!< node partitioned from the control plane
    Heal,            //!< partition healed
    Degrade,         //!< capacity/latency multiplier applied (value)
    Restore,         //!< degrade lifted (factor back to 1.0)
    ClockSkew,       //!< heartbeat clock skew set (value = seconds)
    ApiOutageBegin,  //!< observation freeze begins (node unused)
    ApiOutageEnd,    //!< observation freeze ends (node unused)
};

struct ScenarioTraceEntry
{
    SimTime at = 0.0;
    ScenarioAction action = ScenarioAction::Fail;
    NodeId node = 0;
    /** Degrade: the factor; ClockSkew: the skew seconds; else 0. */
    double value = 0.0;
};

/**
 * The declarative scenario: an ordered list of timed steps built
 * through the fluent helpers. Steps may be added in any order; the
 * runner schedules each at its own instant.
 */
class Scenario
{
  public:
    struct Step
    {
        enum class Kind {
            FailNodes,           //!< fail an explicit node set
            FailCount,           //!< fail N random up nodes
            FailCapacityFraction,//!< fail until >= fraction of capacity down
            FailZone,            //!< correlated outage of one zone
            RollingFail,         //!< one random node every interval
            Flap,                //!< kubelet stop, restart after downtime
            RecoverNodes,        //!< recover an explicit node set
            RecoverAll,          //!< recover every down node (staggered)
            PartitionNodes,      //!< partition an explicit node set
            PartitionZone,       //!< partition one whole zone
            HealPartition,       //!< heal an explicit node set
            Degrade,             //!< degrade an explicit node set
            DegradeZone,         //!< degrade one whole zone
            ApiOutage,           //!< freeze observation for a window
            SkewClock,           //!< set heartbeat clock skew
        };

        SimTime at = 0.0;
        Kind kind = Kind::FailNodes;
        std::vector<NodeId> nodes;
        size_t count = 0;
        double fraction = 0.0;
        size_t zone = 0;
        /** Rolling spacing / staggered-recovery spacing (seconds). */
        double interval = 0.0;
        /** Flap: seconds between the stop and the restart. Partition /
         * Degrade / ApiOutage: window length (<= 0 = rest of run for
         * partition/degrade; an ApiOutage window is always >= 0). */
        double downtime = 0.0;
        /** Degrade factor in [kMinDegradeFactor, 1]. */
        double factor = 1.0;
        /** Heartbeat clock skew in seconds (SkewClock only). */
        double skew = 0.0;
    };

    Scenario &failNodes(SimTime at, std::vector<NodeId> nodes);
    /** Fail @p count random up nodes (saturates at the whole up set). */
    Scenario &failCount(SimTime at, size_t count);
    /** Fail random up nodes until at least @p fraction of the total
     * cluster capacity is down (cumulative with earlier failures —
     * the paper's "capacity reduced to X%" events). The fraction is
     * clamped into [0, 1]: <= 0 fails nothing, >= 1 fails everything. */
    Scenario &failCapacityFraction(SimTime at, double fraction);
    Scenario &failZone(SimTime at, size_t zone);
    /** Fail @p count random up nodes, one every @p interval seconds
     * starting at @p at. A non-positive interval clamps to 0: every
     * failure fires at @p at, in deterministic draw order. */
    Scenario &rollingFail(SimTime at, size_t count, double interval);
    /** Stop the kubelet at @p at, restart it @p downtime seconds
     * later: inside the node grace period the flap is invisible,
     * outside it the node goes NotReady and evicts exactly once. A
     * negative downtime clamps to 0 (stop and restart at the same
     * instant, stop first — FIFO tie-break). */
    Scenario &flapKubelet(SimTime at, NodeId node, double downtime);
    Scenario &recoverNodes(SimTime at, std::vector<NodeId> nodes);
    /** Recover every currently-down node; @p stagger > 0 spaces the
     * recoveries that many seconds apart in ascending node order
     * (staggered partial recovery). Negative staggers clamp to 0. */
    Scenario &recoverAll(SimTime at, double stagger = 0.0);

    // --- Extended fault taxonomy -----------------------------------
    /** Partition the nodes from the control plane at @p at; heal
     * @p duration seconds later (duration <= 0: stays partitioned
     * until an explicit healPartition step or the end of the run). */
    Scenario &partitionNodes(SimTime at, std::vector<NodeId> nodes,
                             double duration = 0.0);
    /** Partition every node of one zone (id % zoneCount == zone). */
    Scenario &partitionZone(SimTime at, size_t zone,
                            double duration = 0.0);
    Scenario &healPartition(SimTime at, std::vector<NodeId> nodes);
    /** Degrade the nodes to @p factor of their capacity (clamped into
     * [kMinDegradeFactor, 1]); restore @p duration seconds later
     * (duration <= 0: stays degraded). */
    Scenario &degradeNodes(SimTime at, std::vector<NodeId> nodes,
                           double factor, double duration = 0.0);
    Scenario &degradeZone(SimTime at, size_t zone, double factor,
                          double duration = 0.0);
    /** Freeze controller-facing observation for @p duration seconds
     * (clamped to >= 0). Overlapping windows merge: observation
     * unfreezes when the last window ends. */
    Scenario &apiOutage(SimTime at, double duration);
    /** Set the node's heartbeat clock skew to @p skew seconds
     * (negative = heartbeats look stale, positive = fresh-from-the-
     * future); 0 restores an honest clock. */
    Scenario &skewClock(SimTime at, NodeId node, double skew);

    const std::vector<Step> &steps() const { return steps_; }

    /** Instant of the earliest failure-injecting step; -1 if none. */
    SimTime firstFailureAt() const;

  private:
    std::vector<Step> steps_;
};

/**
 * Executes a Scenario against a FaultTarget on the EventQueue. The
 * constructor arms every step; the runner must outlive the
 * simulation. The runner tracks which nodes *it* took down, so
 * recoverAll only touches scenario-injected failures.
 */
class ScenarioRunner
{
  public:
    ScenarioRunner(EventQueue &events, FaultTarget &target,
                   Scenario scenario, ScenarioOptions options = {});

    /** Everything injected so far, in injection order. */
    const std::vector<ScenarioTraceEntry> &trace() const
    {
        return trace_;
    }

    /** Nodes the scenario has failed and not yet recovered (sorted). */
    std::vector<NodeId> downNodes() const;

    /** Nodes currently partitioned by the scenario (sorted). */
    std::vector<NodeId> partitionedNodes() const;

    /** Capacity of the currently-down nodes. */
    double downCapacity() const;

    /** Open API-outage windows (> 0 while observation is frozen). */
    size_t apiOutageDepth() const { return outageDepth_; }

    SimTime firstFailureAt() const { return firstFailureAt_; }

  private:
    void armStep(const Scenario::Step &step);
    void runStep(const Scenario::Step &step);
    void failNode(NodeId node);
    void recoverNode(NodeId node);
    void partitionNode(NodeId node);
    void healNode(NodeId node);
    void degradeNode(NodeId node, double factor);
    void skewNode(NodeId node, double skew);
    void beginOutage();
    void endOutage();
    /** Nodes of zone (id % zoneCount == zone), ascending. */
    std::vector<NodeId> zoneNodes(size_t zone) const;
    /** Up nodes (never failed or already recovered), ascending. */
    std::vector<NodeId> upNodes() const;
    double totalCapacity() const;

    EventQueue &events_;
    FaultTarget &target_;
    Scenario scenario_;
    ScenarioOptions options_;
    util::Rng rng_;
    std::set<NodeId> down_;
    std::set<NodeId> partitioned_;
    /** Current degrade factor per degraded node (absent = 1.0). */
    std::map<NodeId, double> degraded_;
    size_t outageDepth_ = 0;
    std::vector<ScenarioTraceEntry> trace_;
    SimTime firstFailureAt_ = -1.0;

    /** obs handles, resolved once at construction. */
    struct ObsHandles
    {
        obs::Counter *nodeFailures = nullptr;
        obs::Counter *nodeRecoveries = nullptr;
        obs::Counter *partitions = nullptr;
        obs::Counter *heals = nullptr;
        obs::Counter *degrades = nullptr;
        obs::Counter *skews = nullptr;
        obs::Counter *apiOutages = nullptr;
        obs::Counter *steps = nullptr;
    };
    ObsHandles obs_;
};

} // namespace phoenix::sim

#endif // PHOENIX_SIM_SCENARIO_H
