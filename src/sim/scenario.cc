#include "scenario.h"

#include <algorithm>

#include "util/log.h"

namespace phoenix::sim {

namespace {

bool
isFailureKind(Scenario::Step::Kind kind)
{
    switch (kind) {
    case Scenario::Step::Kind::FailNodes:
    case Scenario::Step::Kind::FailCount:
    case Scenario::Step::Kind::FailCapacityFraction:
    case Scenario::Step::Kind::FailZone:
    case Scenario::Step::Kind::RollingFail:
    case Scenario::Step::Kind::Flap:
    // Partitions and degradation remove (schedulable) capacity, so
    // they start the recovery clock. API outages and clock skew do
    // not by themselves — they only distort observation.
    case Scenario::Step::Kind::PartitionNodes:
    case Scenario::Step::Kind::PartitionZone:
    case Scenario::Step::Kind::Degrade:
    case Scenario::Step::Kind::DegradeZone:
        return true;
    case Scenario::Step::Kind::RecoverNodes:
    case Scenario::Step::Kind::RecoverAll:
    case Scenario::Step::Kind::HealPartition:
    case Scenario::Step::Kind::ApiOutage:
    case Scenario::Step::Kind::SkewClock:
        return false;
    }
    return false;
}

double
clampDegradeFactor(double factor)
{
    if (factor < kMinDegradeFactor)
        return kMinDegradeFactor;
    if (factor > 1.0)
        return 1.0;
    return factor;
}

} // namespace

Scenario &
Scenario::failNodes(SimTime at, std::vector<NodeId> nodes)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::FailNodes;
    step.nodes = std::move(nodes);
    steps_.push_back(std::move(step));
    return *this;
}

Scenario &
Scenario::failCount(SimTime at, size_t count)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::FailCount;
    step.count = count;
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::failCapacityFraction(SimTime at, double fraction)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::FailCapacityFraction;
    step.fraction = std::clamp(fraction, 0.0, 1.0);
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::failZone(SimTime at, size_t zone)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::FailZone;
    step.zone = zone;
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::rollingFail(SimTime at, size_t count, double interval)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::RollingFail;
    step.count = count;
    step.interval = std::max(interval, 0.0);
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::flapKubelet(SimTime at, NodeId node, double downtime)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::Flap;
    step.nodes = {node};
    step.downtime = std::max(downtime, 0.0);
    steps_.push_back(std::move(step));
    return *this;
}

Scenario &
Scenario::recoverNodes(SimTime at, std::vector<NodeId> nodes)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::RecoverNodes;
    step.nodes = std::move(nodes);
    steps_.push_back(std::move(step));
    return *this;
}

Scenario &
Scenario::recoverAll(SimTime at, double stagger)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::RecoverAll;
    step.interval = std::max(stagger, 0.0);
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::partitionNodes(SimTime at, std::vector<NodeId> nodes,
                         double duration)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::PartitionNodes;
    step.nodes = std::move(nodes);
    step.downtime = duration;
    steps_.push_back(std::move(step));
    return *this;
}

Scenario &
Scenario::partitionZone(SimTime at, size_t zone, double duration)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::PartitionZone;
    step.zone = zone;
    step.downtime = duration;
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::healPartition(SimTime at, std::vector<NodeId> nodes)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::HealPartition;
    step.nodes = std::move(nodes);
    steps_.push_back(std::move(step));
    return *this;
}

Scenario &
Scenario::degradeNodes(SimTime at, std::vector<NodeId> nodes,
                       double factor, double duration)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::Degrade;
    step.nodes = std::move(nodes);
    step.factor = clampDegradeFactor(factor);
    step.downtime = duration;
    steps_.push_back(std::move(step));
    return *this;
}

Scenario &
Scenario::degradeZone(SimTime at, size_t zone, double factor,
                      double duration)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::DegradeZone;
    step.zone = zone;
    step.factor = clampDegradeFactor(factor);
    step.downtime = duration;
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::apiOutage(SimTime at, double duration)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::ApiOutage;
    step.downtime = std::max(duration, 0.0);
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::skewClock(SimTime at, NodeId node, double skew)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::SkewClock;
    step.nodes = {node};
    step.skew = skew;
    steps_.push_back(std::move(step));
    return *this;
}

SimTime
Scenario::firstFailureAt() const
{
    SimTime first = -1.0;
    for (const Step &step : steps_) {
        if (!isFailureKind(step.kind))
            continue;
        if (first < 0.0 || step.at < first)
            first = step.at;
    }
    return first;
}

ScenarioRunner::ScenarioRunner(EventQueue &events, FaultTarget &target,
                               Scenario scenario,
                               ScenarioOptions options)
    : events_(events), target_(target), scenario_(std::move(scenario)),
      options_(options), rng_(options.seed),
      firstFailureAt_(scenario_.firstFailureAt())
{
    auto &registry = obs::Registry::global();
    obs_.nodeFailures = &registry.counter("scenario.node_failures");
    obs_.nodeRecoveries = &registry.counter("scenario.node_recoveries");
    obs_.partitions = &registry.counter("scenario.partitions");
    obs_.heals = &registry.counter("scenario.partition_heals");
    obs_.degrades = &registry.counter("scenario.degrades");
    obs_.skews = &registry.counter("scenario.clock_skews");
    obs_.apiOutages = &registry.counter("scenario.api_outages");
    obs_.steps = &registry.counter("scenario.steps");

    for (const Scenario::Step &step : scenario_.steps())
        armStep(step);
}

void
ScenarioRunner::armStep(const Scenario::Step &step)
{
    // Steps capture by value: the scenario spec outlives nothing, the
    // runner owns its own copy.
    const Scenario::Step armed = step;
    events_.schedule(armed.at, [this, armed] { runStep(armed); });
}

std::vector<NodeId>
ScenarioRunner::upNodes() const
{
    std::vector<NodeId> up;
    for (size_t n = 0; n < target_.nodeCount(); ++n) {
        const NodeId id = static_cast<NodeId>(n);
        if (!down_.count(id))
            up.push_back(id);
    }
    return up;
}

double
ScenarioRunner::totalCapacity() const
{
    double total = 0.0;
    for (size_t n = 0; n < target_.nodeCount(); ++n)
        total += target_.nodeCapacity(static_cast<NodeId>(n));
    return total;
}

double
ScenarioRunner::downCapacity() const
{
    double total = 0.0;
    for (NodeId id : down_)
        total += target_.nodeCapacity(id);
    return total;
}

std::vector<NodeId>
ScenarioRunner::downNodes() const
{
    return std::vector<NodeId>(down_.begin(), down_.end());
}

std::vector<NodeId>
ScenarioRunner::partitionedNodes() const
{
    return std::vector<NodeId>(partitioned_.begin(),
                               partitioned_.end());
}

std::vector<NodeId>
ScenarioRunner::zoneNodes(size_t zone) const
{
    const size_t zones = std::max<size_t>(options_.zoneCount, 1);
    std::vector<NodeId> nodes;
    for (size_t n = 0; n < target_.nodeCount(); ++n) {
        const NodeId id = static_cast<NodeId>(n);
        const int explicit_zone = target_.nodeZone(id);
        const size_t node_zone =
            explicit_zone >= 0 ? static_cast<size_t>(explicit_zone)
                               : id % zones;
        if (node_zone == zone)
            nodes.push_back(id);
    }
    return nodes;
}

void
ScenarioRunner::failNode(NodeId node)
{
    if (down_.count(node))
        return;
    down_.insert(node);
    trace_.push_back({events_.now(), ScenarioAction::Fail, node});
    PHOENIX_COUNT(*obs_.nodeFailures, 1);
    PHOENIX_TRACE_INSTANT("scenario", "fail", events_.now(),
                          (obs::TraceArg{
                              "node", static_cast<double>(node)}));
    target_.injectNodeFailure(node);
}

void
ScenarioRunner::recoverNode(NodeId node)
{
    if (!down_.erase(node))
        return;
    trace_.push_back({events_.now(), ScenarioAction::Recover, node});
    PHOENIX_COUNT(*obs_.nodeRecoveries, 1);
    PHOENIX_TRACE_INSTANT("scenario", "recover", events_.now(),
                          (obs::TraceArg{
                              "node", static_cast<double>(node)}));
    target_.injectNodeRecovery(node);
}

void
ScenarioRunner::partitionNode(NodeId node)
{
    if (!partitioned_.insert(node).second)
        return;
    trace_.push_back({events_.now(), ScenarioAction::Partition, node});
    PHOENIX_COUNT(*obs_.partitions, 1);
    PHOENIX_TRACE_INSTANT("scenario", "partition", events_.now(),
                          (obs::TraceArg{
                              "node", static_cast<double>(node)}));
    target_.injectPartition(node);
}

void
ScenarioRunner::healNode(NodeId node)
{
    if (!partitioned_.erase(node))
        return;
    trace_.push_back({events_.now(), ScenarioAction::Heal, node});
    PHOENIX_COUNT(*obs_.heals, 1);
    PHOENIX_TRACE_INSTANT("scenario", "heal", events_.now(),
                          (obs::TraceArg{
                              "node", static_cast<double>(node)}));
    target_.injectPartitionHeal(node);
}

void
ScenarioRunner::degradeNode(NodeId node, double factor)
{
    if (factor >= 1.0) {
        // Restoring a node that was never degraded is a no-op.
        if (degraded_.erase(node) == 0)
            return;
        trace_.push_back(
            {events_.now(), ScenarioAction::Restore, node, 1.0});
        target_.injectDegrade(node, 1.0);
        return;
    }
    degraded_[node] = factor;
    trace_.push_back(
        {events_.now(), ScenarioAction::Degrade, node, factor});
    PHOENIX_COUNT(*obs_.degrades, 1);
    PHOENIX_TRACE_INSTANT("scenario", "degrade", events_.now(),
                          (obs::TraceArg{
                              "node", static_cast<double>(node)}));
    target_.injectDegrade(node, factor);
}

void
ScenarioRunner::skewNode(NodeId node, double skew)
{
    trace_.push_back(
        {events_.now(), ScenarioAction::ClockSkew, node, skew});
    PHOENIX_COUNT(*obs_.skews, 1);
    PHOENIX_TRACE_INSTANT("scenario", "clock_skew", events_.now(),
                          (obs::TraceArg{
                              "node", static_cast<double>(node)}));
    target_.injectClockSkew(node, skew);
}

void
ScenarioRunner::beginOutage()
{
    trace_.push_back(
        {events_.now(), ScenarioAction::ApiOutageBegin, 0});
    if (++outageDepth_ > 1)
        return; // overlapping windows merge
    PHOENIX_COUNT(*obs_.apiOutages, 1);
    PHOENIX_TRACE_INSTANT("scenario", "api_outage_begin",
                          events_.now());
    target_.injectApiOutageBegin();
}

void
ScenarioRunner::endOutage()
{
    trace_.push_back({events_.now(), ScenarioAction::ApiOutageEnd, 0});
    if (outageDepth_ == 0 || --outageDepth_ > 0)
        return;
    PHOENIX_TRACE_INSTANT("scenario", "api_outage_end", events_.now());
    target_.injectApiOutageEnd();
}

void
ScenarioRunner::runStep(const Scenario::Step &step)
{
    using Kind = Scenario::Step::Kind;
    PHOENIX_COUNT(*obs_.steps, 1);
    switch (step.kind) {
    case Kind::FailNodes:
        for (NodeId node : step.nodes)
            failNode(node);
        break;

    case Kind::FailCount: {
        std::vector<NodeId> candidates = upNodes();
        rng_.shuffle(candidates);
        for (size_t i = 0; i < step.count && i < candidates.size(); ++i)
            failNode(candidates[i]);
        break;
    }

    case Kind::FailCapacityFraction: {
        const double target = totalCapacity() * step.fraction;
        std::vector<NodeId> candidates = upNodes();
        rng_.shuffle(candidates);
        for (NodeId node : candidates) {
            if (downCapacity() >= target - 1e-9)
                break;
            failNode(node);
        }
        break;
    }

    case Kind::FailZone: {
        const size_t zones = std::max<size_t>(options_.zoneCount, 1);
        for (NodeId node : upNodes()) {
            if (node % zones == step.zone)
                failNode(node);
        }
        break;
    }

    case Kind::RollingFail: {
        if (step.count == 0)
            break;
        std::vector<NodeId> candidates = upNodes();
        if (!candidates.empty()) {
            const size_t pick = static_cast<size_t>(rng_.uniformInt(
                0, static_cast<int64_t>(candidates.size()) - 1));
            failNode(candidates[pick]);
        }
        if (step.count > 1) {
            Scenario::Step next = step;
            next.at = events_.now() + step.interval;
            --next.count;
            armStep(next);
        }
        break;
    }

    case Kind::Flap: {
        for (NodeId node : step.nodes) {
            failNode(node);
            events_.scheduleAfter(step.downtime, [this, node] {
                recoverNode(node);
            });
        }
        break;
    }

    case Kind::RecoverNodes:
        for (NodeId node : step.nodes)
            recoverNode(node);
        break;

    case Kind::RecoverAll: {
        const std::vector<NodeId> nodes = downNodes();
        if (step.interval <= 0.0) {
            for (NodeId node : nodes)
                recoverNode(node);
            break;
        }
        double delay = 0.0;
        for (NodeId node : nodes) {
            if (delay == 0.0) {
                recoverNode(node);
            } else {
                events_.scheduleAfter(delay, [this, node] {
                    recoverNode(node);
                });
            }
            delay += step.interval;
        }
        break;
    }

    case Kind::PartitionNodes:
    case Kind::PartitionZone: {
        const std::vector<NodeId> nodes =
            step.kind == Kind::PartitionZone ? zoneNodes(step.zone)
                                             : step.nodes;
        for (NodeId node : nodes) {
            partitionNode(node);
            if (step.downtime > 0.0) {
                events_.scheduleAfter(step.downtime, [this, node] {
                    healNode(node);
                });
            }
        }
        break;
    }

    case Kind::HealPartition:
        for (NodeId node : step.nodes)
            healNode(node);
        break;

    case Kind::Degrade:
    case Kind::DegradeZone: {
        const std::vector<NodeId> nodes =
            step.kind == Kind::DegradeZone ? zoneNodes(step.zone)
                                           : step.nodes;
        for (NodeId node : nodes) {
            degradeNode(node, step.factor);
            if (step.downtime > 0.0) {
                events_.scheduleAfter(step.downtime, [this, node] {
                    degradeNode(node, 1.0);
                });
            }
        }
        break;
    }

    case Kind::ApiOutage: {
        beginOutage();
        events_.scheduleAfter(step.downtime,
                              [this] { endOutage(); });
        break;
    }

    case Kind::SkewClock:
        for (NodeId node : step.nodes)
            skewNode(node, step.skew);
        break;
    }
}

} // namespace phoenix::sim
