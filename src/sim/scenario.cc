#include "scenario.h"

#include <algorithm>

#include "util/log.h"

namespace phoenix::sim {

namespace {

bool
isFailureKind(Scenario::Step::Kind kind)
{
    switch (kind) {
    case Scenario::Step::Kind::FailNodes:
    case Scenario::Step::Kind::FailCount:
    case Scenario::Step::Kind::FailCapacityFraction:
    case Scenario::Step::Kind::FailZone:
    case Scenario::Step::Kind::RollingFail:
    case Scenario::Step::Kind::Flap:
        return true;
    case Scenario::Step::Kind::RecoverNodes:
    case Scenario::Step::Kind::RecoverAll:
        return false;
    }
    return false;
}

} // namespace

Scenario &
Scenario::failNodes(SimTime at, std::vector<NodeId> nodes)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::FailNodes;
    step.nodes = std::move(nodes);
    steps_.push_back(std::move(step));
    return *this;
}

Scenario &
Scenario::failCount(SimTime at, size_t count)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::FailCount;
    step.count = count;
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::failCapacityFraction(SimTime at, double fraction)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::FailCapacityFraction;
    step.fraction = fraction;
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::failZone(SimTime at, size_t zone)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::FailZone;
    step.zone = zone;
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::rollingFail(SimTime at, size_t count, double interval)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::RollingFail;
    step.count = count;
    step.interval = interval;
    steps_.push_back(step);
    return *this;
}

Scenario &
Scenario::flapKubelet(SimTime at, NodeId node, double downtime)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::Flap;
    step.nodes = {node};
    step.downtime = downtime;
    steps_.push_back(std::move(step));
    return *this;
}

Scenario &
Scenario::recoverNodes(SimTime at, std::vector<NodeId> nodes)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::RecoverNodes;
    step.nodes = std::move(nodes);
    steps_.push_back(std::move(step));
    return *this;
}

Scenario &
Scenario::recoverAll(SimTime at, double stagger)
{
    Step step;
    step.at = at;
    step.kind = Step::Kind::RecoverAll;
    step.interval = stagger;
    steps_.push_back(step);
    return *this;
}

SimTime
Scenario::firstFailureAt() const
{
    SimTime first = -1.0;
    for (const Step &step : steps_) {
        if (!isFailureKind(step.kind))
            continue;
        if (first < 0.0 || step.at < first)
            first = step.at;
    }
    return first;
}

ScenarioRunner::ScenarioRunner(EventQueue &events, FaultTarget &target,
                               Scenario scenario,
                               ScenarioOptions options)
    : events_(events), target_(target), scenario_(std::move(scenario)),
      options_(options), rng_(options.seed),
      firstFailureAt_(scenario_.firstFailureAt())
{
    auto &registry = obs::Registry::global();
    obs_.nodeFailures = &registry.counter("scenario.node_failures");
    obs_.nodeRecoveries = &registry.counter("scenario.node_recoveries");
    obs_.steps = &registry.counter("scenario.steps");

    for (const Scenario::Step &step : scenario_.steps())
        armStep(step);
}

void
ScenarioRunner::armStep(const Scenario::Step &step)
{
    // Steps capture by value: the scenario spec outlives nothing, the
    // runner owns its own copy.
    const Scenario::Step armed = step;
    events_.schedule(armed.at, [this, armed] { runStep(armed); });
}

std::vector<NodeId>
ScenarioRunner::upNodes() const
{
    std::vector<NodeId> up;
    for (size_t n = 0; n < target_.nodeCount(); ++n) {
        const NodeId id = static_cast<NodeId>(n);
        if (!down_.count(id))
            up.push_back(id);
    }
    return up;
}

double
ScenarioRunner::totalCapacity() const
{
    double total = 0.0;
    for (size_t n = 0; n < target_.nodeCount(); ++n)
        total += target_.nodeCapacity(static_cast<NodeId>(n));
    return total;
}

double
ScenarioRunner::downCapacity() const
{
    double total = 0.0;
    for (NodeId id : down_)
        total += target_.nodeCapacity(id);
    return total;
}

std::vector<NodeId>
ScenarioRunner::downNodes() const
{
    return std::vector<NodeId>(down_.begin(), down_.end());
}

void
ScenarioRunner::failNode(NodeId node)
{
    if (down_.count(node))
        return;
    down_.insert(node);
    trace_.push_back({events_.now(), ScenarioAction::Fail, node});
    PHOENIX_COUNT(*obs_.nodeFailures, 1);
    PHOENIX_TRACE_INSTANT("scenario", "fail", events_.now(),
                          (obs::TraceArg{
                              "node", static_cast<double>(node)}));
    target_.injectNodeFailure(node);
}

void
ScenarioRunner::recoverNode(NodeId node)
{
    if (!down_.erase(node))
        return;
    trace_.push_back({events_.now(), ScenarioAction::Recover, node});
    PHOENIX_COUNT(*obs_.nodeRecoveries, 1);
    PHOENIX_TRACE_INSTANT("scenario", "recover", events_.now(),
                          (obs::TraceArg{
                              "node", static_cast<double>(node)}));
    target_.injectNodeRecovery(node);
}

void
ScenarioRunner::runStep(const Scenario::Step &step)
{
    using Kind = Scenario::Step::Kind;
    PHOENIX_COUNT(*obs_.steps, 1);
    switch (step.kind) {
    case Kind::FailNodes:
        for (NodeId node : step.nodes)
            failNode(node);
        break;

    case Kind::FailCount: {
        std::vector<NodeId> candidates = upNodes();
        rng_.shuffle(candidates);
        for (size_t i = 0; i < step.count && i < candidates.size(); ++i)
            failNode(candidates[i]);
        break;
    }

    case Kind::FailCapacityFraction: {
        const double target = totalCapacity() * step.fraction;
        std::vector<NodeId> candidates = upNodes();
        rng_.shuffle(candidates);
        for (NodeId node : candidates) {
            if (downCapacity() >= target - 1e-9)
                break;
            failNode(node);
        }
        break;
    }

    case Kind::FailZone: {
        const size_t zones = std::max<size_t>(options_.zoneCount, 1);
        for (NodeId node : upNodes()) {
            if (node % zones == step.zone)
                failNode(node);
        }
        break;
    }

    case Kind::RollingFail: {
        if (step.count == 0)
            break;
        std::vector<NodeId> candidates = upNodes();
        if (!candidates.empty()) {
            const size_t pick = static_cast<size_t>(rng_.uniformInt(
                0, static_cast<int64_t>(candidates.size()) - 1));
            failNode(candidates[pick]);
        }
        if (step.count > 1) {
            Scenario::Step next = step;
            next.at = events_.now() + step.interval;
            --next.count;
            armStep(next);
        }
        break;
    }

    case Kind::Flap: {
        for (NodeId node : step.nodes) {
            failNode(node);
            events_.scheduleAfter(step.downtime, [this, node] {
                recoverNode(node);
            });
        }
        break;
    }

    case Kind::RecoverNodes:
        for (NodeId node : step.nodes)
            recoverNode(node);
        break;

    case Kind::RecoverAll: {
        const std::vector<NodeId> nodes = downNodes();
        if (step.interval <= 0.0) {
            for (NodeId node : nodes)
                recoverNode(node);
            break;
        }
        double delay = 0.0;
        for (NodeId node : nodes) {
            if (delay == 0.0) {
                recoverNode(node);
            } else {
                events_.scheduleAfter(delay, [this, node] {
                    recoverNode(node);
                });
            }
            delay += step.interval;
        }
        break;
    }
    }
}

} // namespace phoenix::sim
