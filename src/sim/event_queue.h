/**
 * @file
 * Minimal discrete-event simulation engine used by the mini-Kubernetes
 * layer, the end-to-end recovery experiments (Fig 6) and the serving
 * front end (src/serve): a time-ordered queue of callbacks with
 * deterministic FIFO tie-breaking.
 *
 * Tie-breaking contract: events scheduled for the same instant fire in
 * insertion order, enforced by a monotone sequence number carried with
 * every event. The serve loop leans on this — a request arrival, its
 * admission decision and a window-close tick armed for the same
 * timestamp must interleave identically on every run, or BENCH_serve
 * sweep sections would not be byte-identical across --jobs counts.
 * EventQueue.SameTimestampFifo is the regression test.
 */

#ifndef PHOENIX_SIM_EVENT_QUEUE_H
#define PHOENIX_SIM_EVENT_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace phoenix::sim {

/** Simulated time in seconds. */
using SimTime = double;

/**
 * Discrete-event scheduler. Events fire in (time, insertion order)
 * order; handlers may schedule further events.
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Schedule @p handler at absolute time @p when (>= now). */
    void
    schedule(SimTime when, Handler handler)
    {
        if (when < now_)
            when = now_;
        heap_.push_back(Event{when, seq_++, std::move(handler)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }

    /** Schedule @p handler @p delay seconds from now. */
    void
    scheduleAfter(SimTime delay, Handler handler)
    {
        schedule(now_ + delay, std::move(handler));
    }

    SimTime now() const { return now_; }
    bool empty() const { return heap_.empty(); }
    size_t pending() const { return heap_.size(); }

    /** The instant of the next pending event; -1 when empty. */
    SimTime
    nextEventAt() const
    {
        return heap_.empty() ? -1.0 : heap_.front().when;
    }

    /** Run a single event; returns false when the queue is empty. */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        // Move the event out before running it: the handler may push
        // (and reallocate) freely, and std::function is never copied.
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Event ev = std::move(heap_.back());
        heap_.pop_back();
        now_ = ev.when;
        ev.handler();
        return true;
    }

    /** Run events until the queue drains or time exceeds @p until. */
    void
    runUntil(SimTime until)
    {
        while (!heap_.empty() && heap_.front().when <= until)
            step();
        if (now_ < until)
            now_ = until;
    }

    /** Drain the queue completely. */
    void
    runAll()
    {
        while (step()) {
        }
    }

  private:
    struct Event
    {
        SimTime when;
        uint64_t seq;
        Handler handler;
    };

    /** Max-heap comparator inverted into a min-heap on (when, seq):
     * the earliest event wins, and among same-instant events the one
     * inserted first (smallest seq) — stable FIFO tie-breaking. */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<Event> heap_;
    SimTime now_ = 0.0;
    uint64_t seq_ = 0;
};

} // namespace phoenix::sim

#endif // PHOENIX_SIM_EVENT_QUEUE_H
