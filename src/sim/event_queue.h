/**
 * @file
 * Minimal discrete-event simulation engine used by the mini-Kubernetes
 * layer and the end-to-end recovery experiments (Fig 6): a time-ordered
 * queue of callbacks with deterministic FIFO tie-breaking.
 */

#ifndef PHOENIX_SIM_EVENT_QUEUE_H
#define PHOENIX_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace phoenix::sim {

/** Simulated time in seconds. */
using SimTime = double;

/**
 * Discrete-event scheduler. Events fire in (time, insertion order)
 * order; handlers may schedule further events.
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Schedule @p handler at absolute time @p when (>= now). */
    void
    schedule(SimTime when, Handler handler)
    {
        if (when < now_)
            when = now_;
        heap_.push(Event{when, seq_++, std::move(handler)});
    }

    /** Schedule @p handler @p delay seconds from now. */
    void
    scheduleAfter(SimTime delay, Handler handler)
    {
        schedule(now_ + delay, std::move(handler));
    }

    SimTime now() const { return now_; }
    bool empty() const { return heap_.empty(); }
    size_t pending() const { return heap_.size(); }

    /** Run a single event; returns false when the queue is empty. */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.handler();
        return true;
    }

    /** Run events until the queue drains or time exceeds @p until. */
    void
    runUntil(SimTime until)
    {
        while (!heap_.empty() && heap_.top().when <= until)
            step();
        if (now_ < until)
            now_ = until;
    }

    /** Drain the queue completely. */
    void
    runAll()
    {
        while (step()) {
        }
    }

  private:
    struct Event
    {
        SimTime when;
        uint64_t seq;
        Handler handler;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    SimTime now_ = 0.0;
    uint64_t seq_ = 0;
};

} // namespace phoenix::sim

#endif // PHOENIX_SIM_EVENT_QUEUE_H
