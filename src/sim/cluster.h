/**
 * @file
 * Cluster state: nodes with capacities and health, and the assignment of
 * microservice pods to nodes. This is the substrate both the Phoenix
 * scheduler (which plans on a copy) and the mini-Kubernetes layer (which
 * holds the live state) operate on.
 */

#ifndef PHOENIX_SIM_CLUSTER_H
#define PHOENIX_SIM_CLUSTER_H

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "sim/types.h"

namespace phoenix::sim {

/** A server. */
struct Node
{
    NodeId id = 0;
    double capacity = 0.0;
    bool healthy = true;
    /** Failure-domain label (availability zone); static for the
     * node's lifetime. Zone 0 when the deployment has no topology. */
    uint32_t zone = 0;
};

/**
 * Mutable cluster state. Placement is capacity-checked; the class keeps
 * per-node used counters and a pod->node index consistent at all times.
 * Copying a ClusterState yields an independent scratch copy (used by the
 * packing module, which plans on a copy and defers execution to the
 * agent, §4.2).
 */
class ClusterState
{
  public:
    /** Add a node with the given capacity; returns its id. */
    NodeId addNode(double capacity, uint32_t zone = 0);

    size_t nodeCount() const { return nodes_.size(); }
    const Node &node(NodeId id) const { return nodes_.at(id); }
    uint32_t zoneOf(NodeId id) const { return nodes_.at(id).zone; }
    /** Number of distinct failure domains: max zone label + 1. */
    size_t zoneCount() const;

    /** Mark a node failed and evict everything on it.
     *  @return the pods that were evicted. */
    std::vector<PodRef> failNode(NodeId id);

    /** Bring a failed node back (empty). */
    void restoreNode(NodeId id);

    /**
     * Resize a node's capacity in place (degraded-node modeling: a
     * slow-not-dead node offers capacity * factor). The new capacity
     * is clamped up to the node's current usage so existing
     * placements stay valid — degradation never evicts.
     */
    void setNodeCapacity(NodeId id, double capacity);

    bool isHealthy(NodeId id) const { return nodes_.at(id).healthy; }

    /**
     * Place a pod consuming @p cpu on a node. Fails (returns false)
     * when the node is unhealthy, capacity would be exceeded, or the
     * pod is already placed somewhere.
     */
    bool place(const PodRef &pod, NodeId node, double cpu);

    /** Remove a pod; returns false when it was not placed. */
    bool evict(const PodRef &pod);

    /** Node currently hosting the pod, if any. */
    std::optional<NodeId> nodeOf(const PodRef &pod) const;

    bool isActive(const PodRef &pod) const
    {
        return assignment_.count(pod) > 0;
    }

    double used(NodeId id) const { return used_.at(id); }
    double
    remaining(NodeId id) const
    {
        const Node &n = nodes_.at(id);
        return n.healthy ? n.capacity - used_.at(id) : 0.0;
    }

    /** Pods on a node with their sizes. */
    const std::map<PodRef, double> &podsOn(NodeId id) const
    {
        return podsOn_.at(id);
    }

    /** All placed pods with their node. */
    const std::map<PodRef, NodeId> &assignment() const
    {
        return assignment_;
    }

    /** CPU size recorded for a placed pod. */
    double podCpu(const PodRef &pod) const;

    std::vector<NodeId> healthyNodes() const;

    double totalCapacity() const;
    double healthyCapacity() const;
    double usedCapacity() const;

    /** Fraction of healthy capacity in use (operator utilization). */
    double utilization() const;

  private:
    std::vector<Node> nodes_;
    std::vector<double> used_;
    std::vector<std::map<PodRef, double>> podsOn_;
    std::map<PodRef, NodeId> assignment_;
};

} // namespace phoenix::sim

#endif // PHOENIX_SIM_CLUSTER_H
