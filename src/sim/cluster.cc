#include "cluster.h"

#include <algorithm>
#include <cassert>

namespace phoenix::sim {

namespace {
constexpr double kCapacityEps = 1e-9;
} // namespace

NodeId
ClusterState::addNode(double capacity, uint32_t zone)
{
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{id, capacity, true, zone});
    used_.push_back(0.0);
    podsOn_.emplace_back();
    return id;
}

size_t
ClusterState::zoneCount() const
{
    uint32_t max_zone = 0;
    for (const auto &n : nodes_)
        max_zone = std::max(max_zone, n.zone);
    return nodes_.empty() ? 0 : static_cast<size_t>(max_zone) + 1;
}

std::vector<PodRef>
ClusterState::failNode(NodeId id)
{
    std::vector<PodRef> evicted;
    Node &n = nodes_.at(id);
    if (!n.healthy)
        return evicted;
    n.healthy = false;
    for (const auto &[pod, cpu] : podsOn_[id]) {
        (void)cpu;
        evicted.push_back(pod);
        assignment_.erase(pod);
    }
    podsOn_[id].clear();
    used_[id] = 0.0;
    return evicted;
}

void
ClusterState::restoreNode(NodeId id)
{
    nodes_.at(id).healthy = true;
}

void
ClusterState::setNodeCapacity(NodeId id, double capacity)
{
    Node &n = nodes_.at(id);
    n.capacity = std::max(capacity, used_.at(id));
}

bool
ClusterState::place(const PodRef &pod, NodeId node, double cpu)
{
    if (node >= nodes_.size())
        return false;
    const Node &n = nodes_[node];
    if (!n.healthy)
        return false;
    if (assignment_.count(pod))
        return false;
    if (used_[node] + cpu > n.capacity + kCapacityEps)
        return false;
    assignment_[pod] = node;
    podsOn_[node][pod] = cpu;
    used_[node] += cpu;
    return true;
}

bool
ClusterState::evict(const PodRef &pod)
{
    auto it = assignment_.find(pod);
    if (it == assignment_.end())
        return false;
    const NodeId node = it->second;
    auto pit = podsOn_[node].find(pod);
    assert(pit != podsOn_[node].end());
    used_[node] -= pit->second;
    if (used_[node] < 0.0)
        used_[node] = 0.0;
    podsOn_[node].erase(pit);
    assignment_.erase(it);
    return true;
}

std::optional<NodeId>
ClusterState::nodeOf(const PodRef &pod) const
{
    auto it = assignment_.find(pod);
    if (it == assignment_.end())
        return std::nullopt;
    return it->second;
}

double
ClusterState::podCpu(const PodRef &pod) const
{
    auto it = assignment_.find(pod);
    if (it == assignment_.end())
        return 0.0;
    return podsOn_[it->second].at(pod);
}

std::vector<NodeId>
ClusterState::healthyNodes() const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_) {
        if (n.healthy)
            out.push_back(n.id);
    }
    return out;
}

double
ClusterState::totalCapacity() const
{
    double total = 0.0;
    for (const auto &n : nodes_)
        total += n.capacity;
    return total;
}

double
ClusterState::healthyCapacity() const
{
    double total = 0.0;
    for (const auto &n : nodes_) {
        if (n.healthy)
            total += n.capacity;
    }
    return total;
}

double
ClusterState::usedCapacity() const
{
    double total = 0.0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].healthy)
            total += used_[i];
    }
    return total;
}

double
ClusterState::utilization() const
{
    const double healthy = healthyCapacity();
    if (healthy <= 0.0)
        return 0.0;
    return usedCapacity() / healthy;
}

} // namespace phoenix::sim
