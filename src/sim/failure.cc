#include "failure.h"

namespace phoenix::sim {

FailureEvent
FailureInjector::failCapacityFraction(ClusterState &cluster,
                                      double fraction)
{
    FailureEvent event;
    const double target = cluster.totalCapacity() * fraction;
    std::vector<NodeId> candidates = cluster.healthyNodes();
    rng_.shuffle(candidates);
    for (NodeId id : candidates) {
        if (event.failedCapacity >= target - 1e-9)
            break;
        const double cap = cluster.node(id).capacity;
        auto evicted = cluster.failNode(id);
        event.failedNodes.push_back(id);
        event.failedCapacity += cap;
        event.evictedPods.insert(event.evictedPods.end(),
                                 evicted.begin(), evicted.end());
    }
    return event;
}

FailureEvent
FailureInjector::failNodeCount(ClusterState &cluster, size_t count)
{
    FailureEvent event;
    std::vector<NodeId> candidates = cluster.healthyNodes();
    rng_.shuffle(candidates);
    for (size_t i = 0; i < count && i < candidates.size(); ++i) {
        const NodeId id = candidates[i];
        const double cap = cluster.node(id).capacity;
        auto evicted = cluster.failNode(id);
        event.failedNodes.push_back(id);
        event.failedCapacity += cap;
        event.evictedPods.insert(event.evictedPods.end(),
                                 evicted.begin(), evicted.end());
    }
    return event;
}

std::vector<NodeId>
FailureInjector::restoreAll(ClusterState &cluster)
{
    std::vector<NodeId> restored;
    for (size_t i = 0; i < cluster.nodeCount(); ++i) {
        const NodeId id = static_cast<NodeId>(i);
        if (!cluster.isHealthy(id)) {
            cluster.restoreNode(id);
            restored.push_back(id);
        }
    }
    return restored;
}

} // namespace phoenix::sim
