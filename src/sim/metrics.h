/**
 * @file
 * Operator- and application-level metrics from §6:
 * critical service availability, normalized revenue, deviation from
 * water-fill fair share (split into positive and negative parts), and
 * cluster utilization.
 */

#ifndef PHOENIX_SIM_METRICS_H
#define PHOENIX_SIM_METRICS_H

#include <vector>

#include "sim/cluster.h"
#include "sim/types.h"

namespace phoenix::sim {

/** Deviation from max-min fair share, decomposed per §6. */
struct FairnessDeviation
{
    /** Sum over apps of resources above fair share. */
    double positive = 0.0;
    /** Sum over apps of resources below fair share. */
    double negative = 0.0;

    double total() const { return positive + negative; }
};

/** Which microservices are active, indexed [app][ms]. */
using ActiveSet = std::vector<std::vector<bool>>;

/** Build an all-inactive ActiveSet shaped like @p apps. */
ActiveSet emptyActiveSet(const std::vector<Application> &apps);

/** Derive the ActiveSet from the cluster's current assignment. */
ActiveSet activeSetFromCluster(const std::vector<Application> &apps,
                               const ClusterState &cluster);

/**
 * Fraction of applications whose critical service goal is met: all C1
 * microservices active (§6.2 "Application Metrics").
 */
double criticalServiceAvailability(const std::vector<Application> &apps,
                                   const ActiveSet &active);

/** Per-application critical availability (1 or 0 each). */
std::vector<double>
perAppCriticalAvailability(const std::vector<Application> &apps,
                           const ActiveSet &active);

/**
 * Graded critical availability: mean over applications of the fraction
 * of C1 containers activated. §6.2 normalizes "C1 containers
 * activated" against the unaffected cluster state, which gives partial
 * credit, unlike the binary goal used for the CloudLab apps.
 */
double criticalFractionAvailability(const std::vector<Application> &apps,
                                    const ActiveSet &active);

/**
 * Revenue: sum over active microservices of price-per-unit * resources
 * (the LPCost objective). Use revenueNormalized for the paper's
 * "normalized w.r.t. the pre-failure state" figure series.
 */
double revenue(const std::vector<Application> &apps,
               const ActiveSet &active);

double revenueNormalized(const std::vector<Application> &apps,
                         const ActiveSet &active);

/** Resources currently activated per application. */
std::vector<double> perAppUsage(const std::vector<Application> &apps,
                                const ActiveSet &active);

/**
 * Deviation from the water-fill fair share of @p capacity across
 * applications, split into positive (above share) and negative (below
 * share) components, normalized by capacity.
 */
FairnessDeviation
fairShareDeviation(const std::vector<Application> &apps,
                   const ActiveSet &active, double capacity);

/**
 * Placed-resource variant: per-application usage comes from the pods
 * actually placed on the cluster (which matters with replica quorums,
 * where an active microservice may hold fewer resources than its full
 * replica demand).
 */
FairnessDeviation
fairShareDeviationPlaced(const std::vector<Application> &apps,
                         const ClusterState &cluster);

/**
 * Check that the active set respects intra-app criticality order:
 * no microservice is active while a strictly more critical one in the
 * same application is inactive (LP Eq. 1). Used by tests and the chaos
 * suite.
 */
bool respectsCriticalityOrder(const std::vector<Application> &apps,
                              const ActiveSet &active);

/**
 * Check the topological constraint (LP Eq. 2): every active non-source
 * microservice of an app with a dependency graph has at least one
 * active predecessor.
 */
bool respectsDependencies(const std::vector<Application> &apps,
                          const ActiveSet &active);

} // namespace phoenix::sim

#endif // PHOENIX_SIM_METRICS_H
