/**
 * @file
 * Core domain types shared across Phoenix and AdaptLab: microservices,
 * applications with criticality tags and dependency graphs, and pod
 * references.
 */

#ifndef PHOENIX_SIM_TYPES_H
#define PHOENIX_SIM_TYPES_H

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"

namespace phoenix::sim {

using AppId = uint32_t;
using MsId = uint32_t;
using NodeId = uint32_t;

/**
 * Criticality tag: C1 (=1) is the most critical; larger numbers are
 * progressively more degradable (§3). Untagged microservices default to
 * C1, the highest level, per §5 "Partial Tagging".
 */
using Criticality = int;
constexpr Criticality kC1 = 1;
constexpr Criticality kDefaultCriticality = kC1;
constexpr Criticality kLowestCriticality = 10;

/** One containerized microservice of an application. */
struct Microservice
{
    MsId id = 0;
    std::string name;
    /** Resource demand in normalized units (CPU millicores). */
    double cpu = 0.0;
    Criticality criticality = kDefaultCriticality;
    /** Replica count (Appendix D extension; 1 in the base system). */
    int replicas = 1;
    /**
     * Minimum replicas that must run for the microservice to count as
     * active. 0 (default) means all replicas — the Appendix D rule.
     * Stateless services behind a load balancer typically stay up at
     * reduced throughput with a quorum of replicas; AdaptLab uses
     * ceil(replicas/2).
     */
    int quorum = 0;

    // ---- Topology placement policy (all off by default) ----

    /** Anti-affinity group id within the application, or -1 for none.
     * Replicas of every service sharing a group id count against that
     * group's caps (see Application::placementGroups). */
    int antiAffinityGroup = -1;
    /** Max replicas of this service per node; 0 = unlimited. */
    int maxPerNode = 0;
    /** Max replicas of this service per zone; 0 = unlimited. */
    int maxPerZone = 0;
    /**
     * Minimum number of distinct zones the replica set must span
     * (0/1 = no spread requirement). Enforced as the implied per-zone
     * cap replicas - minZoneSpread + 1: any placement honoring the cap
     * that places >= minZoneSpread replicas necessarily spans
     * >= minZoneSpread zones, and under degradation the cap gracefully
     * limits how many survivors one zone may hold.
     */
    int minZoneSpread = 0;
    /**
     * PodDisruptionBudget: max replicas Phoenix's own preemption may
     * delete in one planning epoch; -1 = unlimited. A below-quorum
     * self-cleanup (the service ends fully down) is exempt — a
     * sub-quorum remnant serves nothing.
     */
    int pdbMaxUnavailable = -1;

    /** True when any placement constraint is set. */
    bool
    constrained() const
    {
        return antiAffinityGroup >= 0 || maxPerNode > 0 ||
               maxPerZone > 0 || minZoneSpread > 1 ||
               pdbMaxUnavailable >= 0;
    }

    /** Effective per-zone cap combining maxPerZone with the
     * minZoneSpread-implied cap; 0 = unlimited. */
    int
    effectiveZoneCap() const
    {
        int cap = maxPerZone;
        if (minZoneSpread > 1) {
            const int all = replicas > 1 ? replicas : 1;
            const int implied = all - minZoneSpread + 1;
            const int spread_cap = implied > 1 ? implied : 1;
            cap = cap > 0 ? (spread_cap < cap ? spread_cap : cap)
                          : spread_cap;
        }
        return cap;
    }

    /** Total demand across replicas. */
    double totalCpu() const { return cpu * replicas; }

    /** Effective activation quorum. */
    int
    quorumCount() const
    {
        const int all = replicas > 1 ? replicas : 1;
        if (quorum <= 0 || quorum > all)
            return all;
        return quorum;
    }

    /** Demand of the minimum viable (quorum) allocation. */
    double quorumCpu() const { return cpu * quorumCount(); }
};

/**
 * An anti-affinity group declared by an application: replicas of every
 * member service (Microservice::antiAffinityGroup == id) jointly count
 * against the group's per-node / per-zone caps. The YTsaurus cluster
 * model calls these vacancies.
 */
struct PlacementGroup
{
    int id = 0;
    /** Max member pods per node; 0 = unlimited. */
    int maxPerNode = 0;
    /** Max member pods per zone; 0 = unlimited. */
    int maxPerZone = 0;
};

/**
 * A tenant application: a set of microservices, optionally a dependency
 * graph over them (node ids == microservice ids), criticality tags, and
 * the operator-facing price it pays per unit of resource.
 */
struct Application
{
    AppId id = 0;
    std::string name;
    std::vector<Microservice> services;
    /** Anti-affinity groups services may join via antiAffinityGroup. */
    std::vector<PlacementGroup> placementGroups;
    /** Dependency graph; meaningful only when hasDependencyGraph. */
    graph::DiGraph dag;
    bool hasDependencyGraph = false;
    /** Revenue per activated unit of resource (LPCost's C_i). */
    double pricePerUnit = 1.0;
    /**
     * Namespace label "phoenix=enabled" (§5 Partial Tagging): only
     * subscribed applications take part in diagonal scaling. For
     * unsubscribed applications every container is treated as highest
     * criticality — Phoenix never degrades them below their peers.
     */
    bool phoenixEnabled = true;

    /** True when any service or group declares a placement policy. */
    bool
    topologyConstrained() const
    {
        if (!placementGroups.empty())
            return true;
        for (const auto &ms : services) {
            if (ms.constrained())
                return true;
        }
        return false;
    }

    /** Total resource demand of the application. */
    double
    totalDemand() const
    {
        double total = 0.0;
        for (const auto &ms : services)
            total += ms.totalCpu();
        return total;
    }

    /** Demand of the C1 (most critical) microservices only. */
    double
    criticalDemand() const
    {
        double total = 0.0;
        for (const auto &ms : services) {
            if (ms.criticality == kC1)
                total += ms.totalCpu();
        }
        return total;
    }
};

/**
 * Identifies one replica pod of one microservice cluster-wide. The
 * base system runs one replica per microservice (replica == 0);
 * Appendix D's multi-replica extension indexes them.
 */
struct PodRef
{
    AppId app = 0;
    MsId ms = 0;
    uint32_t replica = 0;

    auto operator<=>(const PodRef &) const = default;
};

} // namespace phoenix::sim

#endif // PHOENIX_SIM_TYPES_H
