/**
 * @file
 * Core domain types shared across Phoenix and AdaptLab: microservices,
 * applications with criticality tags and dependency graphs, and pod
 * references.
 */

#ifndef PHOENIX_SIM_TYPES_H
#define PHOENIX_SIM_TYPES_H

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"

namespace phoenix::sim {

using AppId = uint32_t;
using MsId = uint32_t;
using NodeId = uint32_t;

/**
 * Criticality tag: C1 (=1) is the most critical; larger numbers are
 * progressively more degradable (§3). Untagged microservices default to
 * C1, the highest level, per §5 "Partial Tagging".
 */
using Criticality = int;
constexpr Criticality kC1 = 1;
constexpr Criticality kDefaultCriticality = kC1;
constexpr Criticality kLowestCriticality = 10;

/** One containerized microservice of an application. */
struct Microservice
{
    MsId id = 0;
    std::string name;
    /** Resource demand in normalized units (CPU millicores). */
    double cpu = 0.0;
    Criticality criticality = kDefaultCriticality;
    /** Replica count (Appendix D extension; 1 in the base system). */
    int replicas = 1;
    /**
     * Minimum replicas that must run for the microservice to count as
     * active. 0 (default) means all replicas — the Appendix D rule.
     * Stateless services behind a load balancer typically stay up at
     * reduced throughput with a quorum of replicas; AdaptLab uses
     * ceil(replicas/2).
     */
    int quorum = 0;

    /** Total demand across replicas. */
    double totalCpu() const { return cpu * replicas; }

    /** Effective activation quorum. */
    int
    quorumCount() const
    {
        const int all = replicas > 1 ? replicas : 1;
        if (quorum <= 0 || quorum > all)
            return all;
        return quorum;
    }

    /** Demand of the minimum viable (quorum) allocation. */
    double quorumCpu() const { return cpu * quorumCount(); }
};

/**
 * A tenant application: a set of microservices, optionally a dependency
 * graph over them (node ids == microservice ids), criticality tags, and
 * the operator-facing price it pays per unit of resource.
 */
struct Application
{
    AppId id = 0;
    std::string name;
    std::vector<Microservice> services;
    /** Dependency graph; meaningful only when hasDependencyGraph. */
    graph::DiGraph dag;
    bool hasDependencyGraph = false;
    /** Revenue per activated unit of resource (LPCost's C_i). */
    double pricePerUnit = 1.0;
    /**
     * Namespace label "phoenix=enabled" (§5 Partial Tagging): only
     * subscribed applications take part in diagonal scaling. For
     * unsubscribed applications every container is treated as highest
     * criticality — Phoenix never degrades them below their peers.
     */
    bool phoenixEnabled = true;

    /** Total resource demand of the application. */
    double
    totalDemand() const
    {
        double total = 0.0;
        for (const auto &ms : services)
            total += ms.totalCpu();
        return total;
    }

    /** Demand of the C1 (most critical) microservices only. */
    double
    criticalDemand() const
    {
        double total = 0.0;
        for (const auto &ms : services) {
            if (ms.criticality == kC1)
                total += ms.totalCpu();
        }
        return total;
    }
};

/**
 * Identifies one replica pod of one microservice cluster-wide. The
 * base system runs one replica per microservice (replica == 0);
 * Appendix D's multi-replica extension indexes them.
 */
struct PodRef
{
    AppId app = 0;
    MsId ms = 0;
    uint32_t replica = 0;

    auto operator<=>(const PodRef &) const = default;
};

} // namespace phoenix::sim

#endif // PHOENIX_SIM_TYPES_H
