#include "alloc_counter.h"

namespace phoenix::util {

namespace {
thread_local uint64_t allocCount_ = 0;
bool active_ = false;
} // namespace

uint64_t
allocCount()
{
    return allocCount_;
}

bool
allocCounterActive()
{
    return active_;
}

namespace detail {

void
bumpAllocCount()
{
    ++allocCount_;
}

void
setAllocCounterActive()
{
    active_ = true;
}

} // namespace detail

} // namespace phoenix::util
