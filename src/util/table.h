/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harnesses to print
 * the rows/series of each paper table and figure.
 */

#ifndef PHOENIX_UTIL_TABLE_H
#define PHOENIX_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace phoenix::util {

/**
 * A simple column-aligned ASCII table. Cells are strings; numeric
 * convenience overloads format with a fixed precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Start a new row. */
    Table &row();

    /** Append a cell to the current row. */
    Table &cell(const std::string &text);
    Table &cell(const char *text);
    Table &cell(double value, int precision = 3);
    Table &cell(size_t value);
    Table &cell(int value);

    /** Render with column alignment to the stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

    size_t rowCount() const { return rows_.size(); }

    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &
    rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision. */
std::string formatDouble(double value, int precision = 3);

} // namespace phoenix::util

#endif // PHOENIX_UTIL_TABLE_H
