/**
 * @file
 * Flat blocked sorted key/value container for the packing hot path.
 *
 * The packer keys every node by its remaining capacity and needs four
 * operations: insert, exact-pair erase, best-fit ("smallest key >=
 * bound"), and ordered scans from either end. util::SortedKv serves
 * those from a std::multiset — one node allocation plus a red-black
 * rebalance per placed pod, which is what Fig 8(b) spends its time on
 * at 10k+ nodes. BucketedKv keeps the same total order, (key, value)
 * ascending, in a flat two-level structure instead: a sorted sequence
 * of size-capped blocks (an unrolled sorted list).
 *
 *   - blocks partition the sequence by POSITION, not by key range;
 *     every pair in block i orders before every pair in block i+1;
 *   - a parallel vector of per-block maxima is binary-searched to
 *     route any operation to its block in O(log blocks);
 *   - within a block, binary search + a memmove bounded by the block
 *     cap finish the job; a block that outgrows the cap splits in two,
 *     a block that empties returns its buffer to a free pool.
 *
 * Position-based blocks matter because capacity keys are tie-heavy: a
 * fresh cluster has thousands of nodes with *identical* remaining
 * capacity, so any key-range bucketing collapses them into one bucket
 * and every insert/erase there memmoves O(n) entries. Here the worst
 * memmove is the block cap regardless of the key distribution.
 * Emptied block buffers are pooled and reused, so a packer that keeps
 * one BucketedKv in scratch stops allocating once its block pool has
 * grown to the workload's size. Iteration order is byte-identical to
 * the multiset, which the planner/packer bit-identity suite in
 * test_properties relies on.
 */

#ifndef PHOENIX_UTIL_BUCKETED_KV_H
#define PHOENIX_UTIL_BUCKETED_KV_H

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace phoenix::util {

template <typename Value>
class BucketedKv
{
  public:
    using Pair = std::pair<double, Value>;

    /**
     * Reset to empty. The parameters are sizing hints kept for
     * interface stability; the block layout adapts to the data, so
     * they are not needed. Every previously grown buffer (blocks,
     * maxima, pool) is kept, so reconfiguration does not allocate in
     * steady state.
     */
    void
    configure(double max_key, size_t expected_count)
    {
        (void)max_key;
        (void)expected_count;
        while (!blocks_.empty())
            releaseBlock(blocks_.size() - 1);
        size_ = 0;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    insert(double key, const Value &value)
    {
        const Pair entry(key, value);
        if (blocks_.empty()) {
            blocks_.push_back(takePooledBlock());
            blocks_.back().push_back(entry);
            maxima_.push_back(entry);
            ++size_;
            return;
        }
        // Route to the first block whose max orders >= entry; an entry
        // beyond the global max appends to the last block.
        size_t b = blockFor(entry);
        if (b == blocks_.size())
            b = blocks_.size() - 1;
        auto &block = blocks_[b];
        block.insert(
            std::upper_bound(block.begin(), block.end(), entry), entry);
        maxima_[b] = block.back();
        ++size_;
        if (block.size() >= kSplitSize)
            splitBlock(b);
    }

    /** Erase one occurrence of (key, value); returns whether found. */
    bool
    erase(double key, const Value &value)
    {
        const Pair entry(key, value);
        const size_t b = blockFor(entry);
        if (b == blocks_.size())
            return false;
        auto &block = blocks_[b];
        auto it = std::lower_bound(block.begin(), block.end(), entry);
        if (it == block.end() || *it != entry)
            return false;
        block.erase(it);
        --size_;
        if (block.empty())
            releaseBlock(b);
        else
            maxima_[b] = block.back();
        return true;
    }

    /** Smallest pair whose key is >= bound (best-fit query). */
    std::optional<Pair>
    firstAtLeast(double bound) const
    {
        std::optional<Pair> hit;
        scanAtLeast(bound, [&](const Pair &entry) {
            hit = entry;
            return false;
        });
        return hit;
    }

    /** Pair with the largest key, if any. */
    std::optional<Pair>
    largest() const
    {
        if (blocks_.empty())
            return std::nullopt;
        return maxima_.back();
    }

    /**
     * Visit pairs in ascending (key, value) order starting from the
     * first pair with key >= bound. @p visit returns false to stop.
     */
    template <typename Visit>
    void
    scanAtLeast(double bound, Visit visit) const
    {
        const Pair probe(bound, Value());
        size_t b = blockFor(probe);
        if (b == blocks_.size())
            return;
        {
            const auto &block = blocks_[b];
            auto it = std::lower_bound(block.begin(), block.end(),
                                       probe);
            for (; it != block.end(); ++it) {
                if (!visit(*it))
                    return;
            }
        }
        for (++b; b < blocks_.size(); ++b) {
            for (const Pair &entry : blocks_[b]) {
                if (!visit(entry))
                    return;
            }
        }
    }

    /**
     * Visit every pair in descending (key, value) order. @p visit
     * returns false to stop.
     */
    template <typename Visit>
    void
    scanDescending(Visit visit) const
    {
        for (size_t b = blocks_.size(); b-- > 0;) {
            const auto &block = blocks_[b];
            for (auto it = block.rbegin(); it != block.rend(); ++it) {
                if (!visit(*it))
                    return;
            }
        }
    }

    /**
     * Explicit scan position for k-way merges across several
     * BucketedKv instances (the zone-sharded capacity index walks one
     * cursor per zone and repeatedly advances the minimum/maximum).
     * A cursor is invalidated by any mutation of the container.
     */
    struct Cursor
    {
        size_t block = 0;
        size_t offset = 0;
        bool valid = false;
    };

    /** Cursor at the first pair with key >= bound (invalid if none). */
    Cursor
    cursorAtLeast(double bound) const
    {
        Cursor c;
        const Pair probe(bound, Value());
        const size_t b = blockFor(probe);
        if (b == blocks_.size())
            return c;
        const auto &block = blocks_[b];
        // maxima_[b] >= probe, so the bound lands inside this block.
        c.block = b;
        c.offset = static_cast<size_t>(
            std::lower_bound(block.begin(), block.end(), probe) -
            block.begin());
        c.valid = true;
        return c;
    }

    /** Cursor at the last (largest) pair (invalid when empty). */
    Cursor
    cursorLast() const
    {
        Cursor c;
        if (blocks_.empty())
            return c;
        c.block = blocks_.size() - 1;
        c.offset = blocks_.back().size() - 1;
        c.valid = true;
        return c;
    }

    const Pair &
    cursorPair(const Cursor &c) const
    {
        return blocks_[c.block][c.offset];
    }

    /** Step ascending; invalidates past the last pair. */
    void
    cursorAdvance(Cursor &c) const
    {
        if (++c.offset == blocks_[c.block].size()) {
            c.offset = 0;
            if (++c.block == blocks_.size())
                c.valid = false;
        }
    }

    /** Step descending; invalidates before the first pair. */
    void
    cursorRetreat(Cursor &c) const
    {
        if (c.offset == 0) {
            if (c.block == 0) {
                c.valid = false;
                return;
            }
            --c.block;
            c.offset = blocks_[c.block].size() - 1;
        } else {
            --c.offset;
        }
    }

  private:
    // Split at 256 pairs (4 KiB of 16-byte pairs): big enough that
    // block-vector bookkeeping stays negligible, small enough that the
    // worst within-block memmove is ~2 KiB.
    static constexpr size_t kSplitSize = 256;

    /** Index of the first block whose max orders >= entry. */
    size_t
    blockFor(const Pair &entry) const
    {
        return static_cast<size_t>(
            std::lower_bound(maxima_.begin(), maxima_.end(), entry) -
            maxima_.begin());
    }

    std::vector<Pair>
    takePooledBlock()
    {
        if (pool_.empty())
            return {};
        std::vector<Pair> block = std::move(pool_.back());
        pool_.pop_back();
        return block;
    }

    /** Return block b's buffer to the pool and drop it in place. */
    void
    releaseBlock(size_t b)
    {
        blocks_[b].clear();
        pool_.push_back(std::move(blocks_[b]));
        blocks_.erase(blocks_.begin() +
                      static_cast<ptrdiff_t>(b));
        maxima_.erase(maxima_.begin() + static_cast<ptrdiff_t>(b));
    }

    /** Move the upper half of block b into a new block at b + 1. */
    void
    splitBlock(size_t b)
    {
        std::vector<Pair> upper = takePooledBlock();
        auto &block = blocks_[b];
        const size_t half = block.size() / 2;
        upper.assign(block.begin() + static_cast<ptrdiff_t>(half),
                     block.end());
        block.resize(half);
        maxima_[b] = block.back();
        const Pair upper_max = upper.back();
        blocks_.insert(blocks_.begin() + static_cast<ptrdiff_t>(b) + 1,
                       std::move(upper));
        maxima_.insert(maxima_.begin() + static_cast<ptrdiff_t>(b) + 1,
                       upper_max);
    }

    std::vector<std::vector<Pair>> blocks_; //!< non-empty, cap-bounded
    std::vector<Pair> maxima_;              //!< blocks_[i].back()
    std::vector<std::vector<Pair>> pool_;   //!< emptied block buffers
    size_t size_ = 0;
};

} // namespace phoenix::util

#endif // PHOENIX_UTIL_BUCKETED_KV_H
