#include "table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace phoenix::util {

std::string
formatDouble(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    if (rows_.empty())
        rows_.emplace_back();
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(const char *text)
{
    return cell(std::string(text));
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

Table &
Table::cell(size_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << " " << std::setw(static_cast<int>(widths[c]))
               << std::left << text << " |";
        }
        os << "\n";
    };

    auto print_sep = [&]() {
        os << "+";
        for (size_t w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };

    print_sep();
    print_row(header_);
    print_sep();
    for (const auto &row : rows_)
        print_row(row);
    print_sep();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace phoenix::util
