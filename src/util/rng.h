/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * All stochastic components in Phoenix/AdaptLab draw from an explicitly
 * seeded Rng so that every experiment is reproducible bit-for-bit. The
 * generator is xoshiro256** seeded via splitmix64, which is both fast and
 * statistically strong enough for workload synthesis.
 */

#ifndef PHOENIX_UTIL_RNG_H
#define PHOENIX_UTIL_RNG_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace phoenix::util {

/** splitmix64 step; used to expand a single seed into a full state. */
inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless splitmix64 finalizer: one well-mixed output word. */
inline uint64_t
splitmix64Mix(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Raw bit pattern of a double, for hashing real-valued coordinates. */
inline uint64_t
doubleBits(double value)
{
    static_assert(sizeof(double) == sizeof(uint64_t));
    uint64_t bits = 0;
    __builtin_memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/**
 * Derive an independent seed from a base seed and integer cell
 * coordinates by chaining each coordinate through the splitmix64
 * finalizer. Unlike additive formulas (seed + t*7919 + rate*1000),
 * nearby cells — and cells from sweeps with different bases — map to
 * unrelated seeds, so no two cells of an experiment grid share a
 * failure draw by accident.
 */
template <typename... Coords>
inline uint64_t
cellSeed(uint64_t base, Coords... coords)
{
    uint64_t h = splitmix64Mix(base);
    ((h = splitmix64Mix(h ^ splitmix64Mix(static_cast<uint64_t>(coords)))),
     ...);
    return h;
}

/**
 * Seeded xoshiro256** generator with the distribution helpers the
 * workload generators need (uniform, exponential, log-normal, Pareto,
 * Zipf, weighted choice).
 */
class Rng
{
  public:
    using result_type = uint64_t;

    explicit Rng(uint64_t seed = 0x5eedULL)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<uint64_t>::max();
    }

    /** Next raw 64-bit value. */
    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        if (hi <= lo)
            return lo;
        const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
        return lo + static_cast<int64_t>(operator()() % span);
    }

    /** Bernoulli trial with success probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Exponential with the given rate (lambda). */
    double
    exponential(double rate)
    {
        return -std::log1p(-uniform()) / rate;
    }

    /** Log-normal with the given log-space mean and sigma. */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(mu + sigma * gaussian());
    }

    /** Standard normal via Box-Muller (caches the second variate). */
    double
    gaussian()
    {
        if (hasSpare_) {
            hasSpare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        spare_ = mag * std::sin(2.0 * M_PI * u2);
        hasSpare_ = true;
        return mag * std::cos(2.0 * M_PI * u2);
    }

    /**
     * Poisson-distributed count with the given mean: Knuth's method
     * for small means, a clamped normal approximation for large ones.
     */
    uint64_t
    poisson(double mean)
    {
        if (mean <= 0.0)
            return 0;
        if (mean < 50.0) {
            const double limit = std::exp(-mean);
            uint64_t count = 0;
            double product = uniform();
            while (product > limit) {
                ++count;
                product *= uniform();
            }
            return count;
        }
        const double draw = mean + std::sqrt(mean) * gaussian();
        return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
    }

    /**
     * Bounded Pareto sample in [lo, hi] with tail index alpha. Used for
     * the long-tailed (Azure-like) container size model.
     */
    double
    boundedPareto(double lo, double hi, double alpha)
    {
        const double u = uniform();
        const double la = std::pow(lo, alpha);
        const double ha = std::pow(hi, alpha);
        return std::pow(-(u * ha - u * la - ha) / (ha * la),
                        -1.0 / alpha);
    }

    /**
     * Zipf-distributed rank in [1, n] with skew s, via rejection-inversion
     * (fast for the large n used in call-graph sampling).
     */
    uint64_t
    zipf(uint64_t n, double s)
    {
        // Rejection-free inverse-CDF approximation adequate for workload
        // shaping: sample from the continuous bounded Pareto analogue of
        // the Zipf mass function and clamp.
        if (n <= 1)
            return 1;
        if (s == 1.0)
            s = 1.0000001;
        const double u = uniform();
        const double t = std::pow(static_cast<double>(n), 1.0 - s);
        const double x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
        uint64_t rank = static_cast<uint64_t>(x);
        if (rank < 1)
            rank = 1;
        if (rank > n)
            rank = n;
        return rank;
    }

    /**
     * Weighted index choice: returns i with probability
     * weights[i] / sum(weights).
     */
    size_t
    weightedChoice(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        double draw = uniform() * total;
        for (size_t i = 0; i < weights.size(); ++i) {
            draw -= weights[i];
            if (draw <= 0.0)
                return i;
        }
        return weights.empty() ? 0 : weights.size() - 1;
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            const size_t j =
                static_cast<size_t>(uniformInt(0, static_cast<int64_t>(i) - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

    /** Derive an independent child generator (for parallel components). */
    Rng
    fork()
    {
        return Rng(operator()());
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4] = {};
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace phoenix::util

#endif // PHOENIX_UTIL_RNG_H
