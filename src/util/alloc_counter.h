/**
 * @file
 * Thread-local allocation micro-counter.
 *
 * The hot-path work (PlanScratch, the indexed heaps, BucketedKv)
 * claims "zero allocation in steady state"; this counter turns that
 * claim into an assertable number. Counting happens in replacement
 * global operator new/delete, which a binary opts into by expanding
 * PHOENIX_INSTALL_ALLOC_COUNTER() once at namespace scope in its main
 * translation unit (bench_micro and test_hotpath do). Binaries that
 * do not install the hook pay nothing and read allocCount() == 0 with
 * allocCounterActive() == false — callers must gate their assertions
 * on allocCounterActive().
 *
 * Under AddressSanitizer/ThreadSanitizer the macro expands to nothing
 * (the sanitizer owns the allocator interposition); the counting tests
 * skip themselves via allocCounterActive().
 */

#ifndef PHOENIX_UTIL_ALLOC_COUNTER_H
#define PHOENIX_UTIL_ALLOC_COUNTER_H

#include <cstdint>
#include <cstdlib>
#include <new>

namespace phoenix::util {

/** operator-new calls made by this thread (0 unless hooked). */
uint64_t allocCount();

/** True when the counting operator new is linked into this binary. */
bool allocCounterActive();

namespace detail {
void bumpAllocCount();
void setAllocCounterActive();

/** Installs the flag from a namespace-scope initializer. */
struct AllocCounterInstaller
{
    AllocCounterInstaller() { setAllocCounterActive(); }
};
} // namespace detail

/**
 * Allocations performed by this thread while running @p fn. Returns 0
 * when the hook is not installed — check allocCounterActive() first.
 */
template <typename Fn>
uint64_t
allocationsDuring(Fn &&fn)
{
    const uint64_t before = allocCount();
    fn();
    return allocCount() - before;
}

} // namespace phoenix::util

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PHOENIX_INSTALL_ALLOC_COUNTER()                                  \
    static_assert(true, "alloc counter disabled under sanitizers")
#else
#define PHOENIX_INSTALL_ALLOC_COUNTER()                                  \
    static phoenix::util::detail::AllocCounterInstaller                  \
        phoenixAllocCounterInstaller_;                                   \
    void *operator new(std::size_t size)                                 \
    {                                                                    \
        phoenix::util::detail::bumpAllocCount();                         \
        if (void *p = std::malloc(size ? size : 1))                      \
            return p;                                                    \
        throw std::bad_alloc();                                          \
    }                                                                    \
    void *operator new[](std::size_t size)                               \
    {                                                                    \
        return ::operator new(size);                                     \
    }                                                                    \
    void *operator new(std::size_t size,                                 \
                       const std::nothrow_t &) noexcept                  \
    {                                                                    \
        phoenix::util::detail::bumpAllocCount();                         \
        return std::malloc(size ? size : 1);                             \
    }                                                                    \
    void *operator new[](std::size_t size,                               \
                         const std::nothrow_t &nt) noexcept              \
    {                                                                    \
        return ::operator new(size, nt);                                 \
    }                                                                    \
    void operator delete(void *p) noexcept { std::free(p); }             \
    void operator delete[](void *p) noexcept { std::free(p); }           \
    void operator delete(void *p, std::size_t) noexcept                  \
    {                                                                    \
        std::free(p);                                                    \
    }                                                                    \
    void operator delete[](void *p, std::size_t) noexcept                \
    {                                                                    \
        std::free(p);                                                    \
    }                                                                    \
    void operator delete(void *p, const std::nothrow_t &) noexcept       \
    {                                                                    \
        std::free(p);                                                    \
    }                                                                    \
    void operator delete[](void *p, const std::nothrow_t &) noexcept     \
    {                                                                    \
        std::free(p);                                                    \
    }
#endif

#endif // PHOENIX_UTIL_ALLOC_COUNTER_H
