#include "json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace phoenix::util {

const JsonValue *
JsonValue::field(const std::string &name) const
{
    for (const auto &[key, value] : fields) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

const JsonValue *
JsonValue::path(const std::string &dotted) const
{
    const JsonValue *node = this;
    size_t start = 0;
    while (node) {
        const size_t dot = dotted.find('.', start);
        const std::string key = dotted.substr(
            start, dot == std::string::npos ? dot : dot - start);
        node = node->field(key);
        if (dot == std::string::npos)
            return node;
        start = dot + 1;
    }
    return nullptr;
}

double
JsonValue::numberAt(const std::string &dotted, double fallback) const
{
    const JsonValue *node = path(dotted);
    return node && node->kind == Kind::Number ? node->number : fallback;
}

std::string
JsonValue::stringAt(const std::string &dotted,
                    const std::string &fallback) const
{
    const JsonValue *node = path(dotted);
    return node && node->kind == Kind::String ? node->text : fallback;
}

namespace {

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out)
    {
        pos_ = 0;
        if (!value(out))
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{':
            return object(out);
        case '[':
            return array(out);
        case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.text);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        default:
            return number(out);
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"' ||
                !string(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            JsonValue child;
            if (!value(child))
                return false;
            out.fields.emplace_back(std::move(key), std::move(child));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue child;
            if (!value(child))
                return false;
            out.items.push_back(std::move(child));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            const char escape = text_[pos_++];
            switch (escape) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return false;
                const unsigned code = static_cast<unsigned>(std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                // Our writers only escape control chars (< 0x20).
                out += static_cast<char>(code);
                break;
            }
            default:
                return false;
            }
        }
        return false;
    }

    bool
    number(JsonValue &out)
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        out.number = std::strtod(begin, &end);
        if (end == begin)
            return false;
        out.kind = JsonValue::Kind::Number;
        pos_ += static_cast<size_t>(end - begin);
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out)
{
    return JsonParser(text).parse(out);
}

std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null"; // JSON has no inf/nan
    char buffer[40];
    // max_digits10 guarantees the double round-trips exactly.
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

} // namespace phoenix::util
