/**
 * @file
 * Indexed d-ary min-heap over dense integer ids.
 *
 * The planner's two priority queues — the criticality-keyed DFS queue
 * of the priority estimator and the per-app head queue of the global
 * ranking — were std::set<pair<Key, Id>>: one red-black-tree node
 * allocation and O(log n) pointer chasing per insert/erase. Both
 * queues hold at most one live entry per dense id, which is exactly
 * the shape an indexed heap handles with zero allocation after the
 * first reset(): a flat array heap of ids, a position index for O(1)
 * membership tests, and keys stored per id.
 *
 * Ordering is the strict total order (key, id): ties on the key pop
 * the smaller id first, byte-identical to the std::set<pair<Key, Id>>
 * it replaces. The arity (default 4) trades a shallower tree (fewer
 * cache misses on sift-down) for more comparisons per level; 4 is the
 * usual sweet spot for flat heaps of scalar keys.
 */

#ifndef PHOENIX_UTIL_HEAP_H
#define PHOENIX_UTIL_HEAP_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace phoenix::util {

template <typename Key, unsigned Arity = 4>
class IndexedDaryHeap
{
    static_assert(Arity >= 2, "d-ary heap needs arity >= 2");

  public:
    using Id = uint32_t;

    /** Drop all entries and make ids [0, id_count) usable. Keeps the
     * underlying capacity, so a reset-and-refill cycle allocates only
     * when id_count grows past every previous reset. */
    void
    reset(size_t id_count)
    {
        heap_.clear();
        pos_.assign(id_count, kAbsent);
        keys_.resize(id_count);
    }

    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }
    size_t idCount() const { return pos_.size(); }

    bool
    contains(Id id) const
    {
        assert(id < pos_.size());
        return pos_[id] != kAbsent;
    }

    /** Key of a contained id. */
    const Key &
    keyOf(Id id) const
    {
        assert(contains(id));
        return keys_[id];
    }

    /** Insert @p id with @p key; @p id must not be contained. */
    void
    push(Id id, const Key &key)
    {
        assert(id < pos_.size() && !contains(id));
        keys_[id] = key;
        pos_[id] = static_cast<uint32_t>(heap_.size());
        heap_.push_back(id);
        siftUp(pos_[id]);
    }

    /** Insert, or re-key an already-contained id. */
    void
    pushOrUpdate(Id id, const Key &key)
    {
        if (!contains(id)) {
            push(id, key);
            return;
        }
        const Key old = keys_[id];
        keys_[id] = key;
        if (key < old)
            siftUp(pos_[id]);
        else
            siftDown(pos_[id]);
    }

    /** Smallest (key, id) entry. */
    Id
    top() const
    {
        assert(!heap_.empty());
        return heap_.front();
    }

    /** Remove and return the smallest (key, id) entry. */
    Id
    pop()
    {
        assert(!heap_.empty());
        const Id id = heap_.front();
        removeAt(0);
        return id;
    }

    /** Remove a contained id from anywhere in the heap. */
    void
    erase(Id id)
    {
        assert(contains(id));
        removeAt(pos_[id]);
    }

    void
    clear()
    {
        for (Id id : heap_)
            pos_[id] = kAbsent;
        heap_.clear();
    }

  private:
    static constexpr uint32_t kAbsent = static_cast<uint32_t>(-1);

    /** (key, id) lexicographic strict order. */
    bool
    before(Id a, Id b) const
    {
        if (keys_[a] < keys_[b])
            return true;
        if (keys_[b] < keys_[a])
            return false;
        return a < b;
    }

    void
    removeAt(size_t slot)
    {
        const Id id = heap_[slot];
        const Id last = heap_.back();
        heap_.pop_back();
        pos_[id] = kAbsent;
        if (slot < heap_.size()) {
            heap_[slot] = last;
            pos_[last] = static_cast<uint32_t>(slot);
            // The replacement may need to travel either way.
            siftUp(slot);
            siftDown(pos_[last]);
        }
    }

    void
    siftUp(size_t slot)
    {
        const Id id = heap_[slot];
        while (slot > 0) {
            const size_t parent = (slot - 1) / Arity;
            if (!before(id, heap_[parent]))
                break;
            heap_[slot] = heap_[parent];
            pos_[heap_[slot]] = static_cast<uint32_t>(slot);
            slot = parent;
        }
        heap_[slot] = id;
        pos_[id] = static_cast<uint32_t>(slot);
    }

    void
    siftDown(size_t slot)
    {
        const Id id = heap_[slot];
        const size_t n = heap_.size();
        for (;;) {
            const size_t first_child = slot * Arity + 1;
            if (first_child >= n)
                break;
            size_t best = first_child;
            const size_t last_child =
                first_child + Arity < n ? first_child + Arity : n;
            for (size_t c = first_child + 1; c < last_child; ++c) {
                if (before(heap_[c], heap_[best]))
                    best = c;
            }
            if (!before(heap_[best], id))
                break;
            heap_[slot] = heap_[best];
            pos_[heap_[slot]] = static_cast<uint32_t>(slot);
            slot = best;
        }
        heap_[slot] = id;
        pos_[id] = static_cast<uint32_t>(slot);
    }

    std::vector<Id> heap_;      //!< slot -> id
    std::vector<uint32_t> pos_; //!< id -> slot, kAbsent when out
    std::vector<Key> keys_;     //!< id -> key (valid while contained)
};

} // namespace phoenix::util

#endif // PHOENIX_UTIL_HEAP_H
