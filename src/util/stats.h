/**
 * @file
 * Small statistics helpers shared by the metrics and benchmark layers:
 * summary statistics, percentiles, histograms and running accumulators.
 */

#ifndef PHOENIX_UTIL_STATS_H
#define PHOENIX_UTIL_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace phoenix::util {

/**
 * The "no sample" sentinel every percentile-style accessor returns on
 * an empty population: util::percentile, util::Histogram::percentile,
 * obs::LogHistogram::percentile and apps::LoadStats all report -1, so
 * a consumer can always tell "no data" from a legitimate 0.
 */
constexpr double kNoSample = -1.0;

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &sample);

/** Population standard deviation; 0 for fewer than two points. */
double stddev(const std::vector<double> &sample);

/**
 * Linear-interpolation percentile (the "inclusive" definition used by
 * numpy.percentile). @p q clamps to [0, 100]; NaN observations are
 * ignored. Returns kNoSample when no (finite-or-infinite) observations
 * remain, or when @p q is NaN.
 */
double percentile(std::vector<double> sample, double q);

/** Sum of a sample. */
double sum(const std::vector<double> &sample);

/**
 * Streaming accumulator for mean / min / max / stddev without storing
 * the sample (Welford's algorithm).
 */
class RunningStat
{
  public:
    void add(double x);

    size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi); values outside are clamped into
 * the first/last bucket. Used by latency models to extract percentiles
 * from large request populations cheaply. Degenerate shapes are legal:
 * zero buckets collapse to one, lo >= hi collapses to a single bucket
 * reporting lo, and NaN observations are ignored.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t buckets);

    void add(double x);
    size_t total() const { return total_; }

    /** Approximate q-th percentile; @p q clamps to [0, 100]. Returns
     * kNoSample when the histogram is empty or @p q is NaN. */
    double percentile(double q) const;

    const std::vector<size_t> &buckets() const { return counts_; }

  private:
    double lo_;
    double hi_;
    double width_;
    size_t total_ = 0;
    std::vector<size_t> counts_;
};

} // namespace phoenix::util

#endif // PHOENIX_UTIL_STATS_H
