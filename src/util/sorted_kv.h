/**
 * @file
 * Sorted key/value container used by the Phoenix packing heuristic.
 *
 * The paper's Python implementation keeps nodes in a SortedList keyed by
 * remaining capacity so that best-fit lookups, insertions and deletions
 * are all O(log n). This is the C++ equivalent built on std::multiset.
 */

#ifndef PHOENIX_UTIL_SORTED_KV_H
#define PHOENIX_UTIL_SORTED_KV_H

#include <optional>
#include <set>
#include <utility>

namespace phoenix::util {

/**
 * Multiset of (key, value) pairs ordered by key (then value for
 * determinism). Supports the three operations packing needs:
 * insert, erase of an exact pair, and "smallest key >= bound" lookup.
 */
template <typename Key, typename Value>
class SortedKv
{
  public:
    using Pair = std::pair<Key, Value>;

    void
    insert(const Key &key, const Value &value)
    {
        items_.emplace(key, value);
    }

    /** Erase one occurrence of (key, value); returns whether found. */
    bool
    erase(const Key &key, const Value &value)
    {
        auto [lo, hi] = items_.equal_range(Pair(key, value));
        if (lo == hi)
            return false;
        items_.erase(lo);
        return true;
    }

    /** Smallest pair whose key is >= bound (best-fit query). */
    std::optional<Pair>
    firstAtLeast(const Key &bound) const
    {
        auto it = items_.lower_bound(Pair(bound, Value()));
        // lower_bound with a default Value may land before pairs with an
        // equal key but smaller value; that is fine: any pair with
        // key >= bound qualifies, and this returns the smallest such key.
        if (it == items_.end())
            return std::nullopt;
        return *it;
    }

    /** Iterator to the first pair with key >= bound. */
    auto
    lowerBound(const Key &bound) const
    {
        return items_.lower_bound(Pair(bound, Value()));
    }

    /** Pair with the largest key, if any. */
    std::optional<Pair>
    largest() const
    {
        if (items_.empty())
            return std::nullopt;
        return *items_.rbegin();
    }

    size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }

    auto begin() const { return items_.begin(); }
    auto end() const { return items_.end(); }
    auto rbegin() const { return items_.rbegin(); }
    auto rend() const { return items_.rend(); }

    void clear() { items_.clear(); }

  private:
    std::multiset<Pair> items_;
};

} // namespace phoenix::util

#endif // PHOENIX_UTIL_SORTED_KV_H
