/**
 * @file
 * Minimal JSON value, recursive-descent parser, and emit helpers.
 *
 * Shared by the tools that read the repo's own machine-readable
 * artifacts (perfdiff over exp::Report files, fuzzcheck over corpus
 * repro files) and by the writers that produce them. The parser covers
 * the JSON subset those writers emit — no surrogate-pair escapes — and
 * is not a general-purpose JSON library.
 */

#ifndef PHOENIX_UTIL_JSON_H
#define PHOENIX_UTIL_JSON_H

#include <string>
#include <vector>

namespace phoenix::util {

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object field lookup; nullptr when absent or not an object. */
    const JsonValue *field(const std::string &name) const;

    /** Dotted-path lookup, e.g. "plan_seconds.mean". */
    const JsonValue *path(const std::string &dotted) const;

    /** Field's number, or @p fallback when absent / not a number. */
    double numberAt(const std::string &dotted, double fallback = 0.0) const;

    /** Field's string, or @p fallback when absent / not a string. */
    std::string stringAt(const std::string &dotted,
                         const std::string &fallback = "") const;
};

/**
 * Parse @p text into @p out. Returns false on malformed input or
 * trailing garbage.
 */
bool parseJson(const std::string &text, JsonValue &out);

/** Escape and quote a string as a JSON literal. */
std::string jsonQuote(const std::string &text);

/** Shortest round-trippable JSON rendering of a double (inf/nan ->
 * null, since JSON has neither). */
std::string jsonNumber(double value);

} // namespace phoenix::util

#endif // PHOENIX_UTIL_JSON_H
