#include "stats.h"

#include <algorithm>
#include <cmath>

namespace phoenix::util {

double
mean(const std::vector<double> &sample)
{
    if (sample.empty())
        return 0.0;
    double total = 0.0;
    for (double x : sample)
        total += x;
    return total / static_cast<double>(sample.size());
}

double
stddev(const std::vector<double> &sample)
{
    if (sample.size() < 2)
        return 0.0;
    const double mu = mean(sample);
    double acc = 0.0;
    for (double x : sample)
        acc += (x - mu) * (x - mu);
    return std::sqrt(acc / static_cast<double>(sample.size()));
}

double
percentile(std::vector<double> sample, double q)
{
    if (std::isnan(q))
        return kNoSample;
    // NaN observations carry no order information; drop them rather
    // than letting them poison the sort.
    sample.erase(std::remove_if(sample.begin(), sample.end(),
                                [](double x) { return std::isnan(x); }),
                 sample.end());
    if (sample.empty())
        return kNoSample;
    std::sort(sample.begin(), sample.end());
    if (q <= 0.0)
        return sample.front();
    if (q >= 100.0)
        return sample.back();
    const double pos = q / 100.0 * static_cast<double>(sample.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sample.size())
        return sample.back();
    return sample[lo] * (1.0 - frac) + sample[lo + 1] * frac;
}

double
sum(const std::vector<double> &sample)
{
    double total = 0.0;
    for (double x : sample)
        total += x;
    return total;
}

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(std::max(hi, lo)),
      width_((hi_ - lo) / static_cast<double>(buckets ? buckets : 1)),
      counts_(buckets ? buckets : 1, 0)
{
}

void
Histogram::add(double x)
{
    if (std::isnan(x))
        return; // no order information; ignore rather than misfile
    size_t idx = 0;
    if (width_ > 0.0) {
        const double clamped = std::clamp(x, lo_, hi_);
        idx = static_cast<size_t>((clamped - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
    }
    ++counts_[idx];
    ++total_;
}

double
Histogram::percentile(double q) const
{
    if (total_ == 0 || std::isnan(q))
        return kNoSample;
    q = std::clamp(q, 0.0, 100.0);
    // lo == hi: every observation sits at the single representable
    // point, whatever the quantile.
    if (width_ <= 0.0)
        return lo_;
    const double target = q / 100.0 * static_cast<double>(total_);
    double seen = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += static_cast<double>(counts_[i]);
        if (seen >= target)
            return lo_ + width_ * (static_cast<double>(i) + 0.5);
    }
    return hi_;
}

} // namespace phoenix::util
