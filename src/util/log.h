/**
 * @file
 * Minimal leveled logging. The controller and benchmark harnesses log
 * through these helpers; tests silence them by lowering the level.
 */

#ifndef PHOENIX_UTIL_LOG_H
#define PHOENIX_UTIL_LOG_H

#include <iostream>
#include <sstream>
#include <string>

namespace phoenix::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global log threshold; messages below it are dropped. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Emit a message at the given level (thread-unsafe by design: the
 * simulator is single-threaded). */
void logMessage(LogLevel level, const std::string &message);

} // namespace phoenix::util

#define PHOENIX_LOG(level, expr)                                          \
    do {                                                                   \
        if (static_cast<int>(level) >=                                     \
            static_cast<int>(::phoenix::util::logLevel())) {               \
            std::ostringstream phoenix_log_oss_;                           \
            phoenix_log_oss_ << expr;                                      \
            ::phoenix::util::logMessage(level, phoenix_log_oss_.str());    \
        }                                                                  \
    } while (0)

#define PHOENIX_DEBUG(expr) PHOENIX_LOG(::phoenix::util::LogLevel::Debug, expr)
#define PHOENIX_INFO(expr) PHOENIX_LOG(::phoenix::util::LogLevel::Info, expr)
#define PHOENIX_WARN(expr) PHOENIX_LOG(::phoenix::util::LogLevel::Warn, expr)
#define PHOENIX_ERROR(expr) PHOENIX_LOG(::phoenix::util::LogLevel::Error, expr)

#endif // PHOENIX_UTIL_LOG_H
