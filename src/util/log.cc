#include "log.h"

namespace phoenix::util {

namespace {

LogLevel globalLevel = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      default: return "?";
    }
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

void
logMessage(LogLevel level, const std::string &message)
{
    std::cerr << "[" << levelName(level) << "] " << message << "\n";
}

} // namespace phoenix::util
