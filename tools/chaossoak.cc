/**
 * @file
 * chaossoak: continuous chaos soak over the mini-Kubernetes substrate
 * (src/exp/soak.h) — hours of simulated time with overlapping seeded
 * waves from the full fault taxonomy, the kube invariant checker and
 * the convergence oracle running the whole way.
 *
 *   chaossoak --hours 2 --seed 7
 *   chaossoak --hours 0.5 --seed 7,8,9 --scheme fair
 *   chaossoak --hours 1 --zones 5       # zone-correlated waves vs
 *                                       # spread-constrained services
 *   chaossoak --inject-fault 0.5 --hours 0.25 --corpus tests/corpus
 *   SOAK_HOURS=6 chaossoak --hours-env --seed 7
 *
 * On any violation the tool dumps the Perfetto trace window for that
 * seed (sim start through the first violation, ring-capped) and a
 * CheckCase repro of the fault script — shrunk through src/check when
 * the differential oracle reproduces the failure — into the corpus
 * directory.
 *
 * Exit codes: 0 every seed ran clean, 1 violations found, 2 usage or
 * I/O error, 77 skipped (--hours-env without SOAK_HOURS set — ctest's
 * SKIP_RETURN_CODE).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "check/shrink.h"
#include "exp/soak.h"
#include "obs/obs.h"

namespace {

using phoenix::exp::RecoveryScheme;
using phoenix::exp::SoakConfig;
using phoenix::exp::SoakResult;

int
usage(std::ostream &out, int code)
{
    out << "usage: chaossoak [options]\n"
           "  --hours H          simulated soak length (default 2)\n"
           "  --hours-env        read the length from $SOAK_HOURS;\n"
           "                     exit 77 (skip) when it is not set\n"
           "  --seed S[,S...]    soak seeds (default 7)\n"
           "  --scheme NAME      cost | fair | default (default cost)\n"
           "  --wave-gap G       mean seconds between waves (default "
           "240)\n"
           "  --check-period P   oracle cadence seconds (default 60)\n"
           "  --zones Z          stripe nodes over Z zones, apply the\n"
           "                     spread/PDB overlay to C1 services, "
           "and\n"
           "                     let waves upgrade to zone-correlated\n"
           "                     failures (default 0 = no topology)\n"
           "  --inject-fault F   enable the deliberately-tight "
           "capacity\n"
           "                     invariant (used(node) <= F * "
           "capacity)\n"
           "  --corpus DIR       violation artifact directory "
           "(default\n"
           "                     tests/corpus)\n"
           "  --trace-out FILE   also write the Perfetto trace of the\n"
           "                     last seed's run to FILE\n"
           "  --json             machine-readable summary on stdout\n";
    return code;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << content;
    return out.good();
}

/** Dump the trace window + (shrunk) repro for one violating seed. */
void
dumpViolationArtifacts(const SoakConfig &config,
                       const SoakResult &result,
                       const std::string &corpus_dir)
{
    const std::string stem =
        corpus_dir + "/soak-" + std::to_string(config.seed) + "-" +
        result.violations.front().property;

    // Perfetto trace window: re-run the deterministic prefix with a
    // horizon just past the first violation, so the exported trace
    // ends at the failure instead of spanning the whole soak. The
    // horizon keeps every wave that starts by the violation in the
    // regenerated schedule (generation is a sequential function of
    // the seed), so the prefix replays bit-for-bit.
    {
        SoakConfig window = config;
        window.hours =
            (result.firstViolationAt + 480.0 +
             config.settleSeconds + 120.0 +
             1.5 * config.meanWaveGap + 1.0) /
            3600.0;
        phoenix::obs::Tracer::global().clear();
        (void)phoenix::exp::runSoak(window);
        std::ostringstream trace;
        phoenix::obs::Tracer::global().exportChromeJson(trace);
        if (writeFile(stem + ".trace.json", trace.str())) {
            std::cerr << "chaossoak: wrote trace window " << stem
                      << ".trace.json\n";
        }
    }

    // CheckCase repro of the fault script up to the violation; shrink
    // it when the differential oracle reproduces a failure.
    phoenix::check::CheckCase repro = phoenix::exp::makeSoakRepro(
        config, result.waves, result.firstViolationAt);
    repro.name = "soak-" + std::to_string(config.seed) + "-" +
                 result.violations.front().property;
    repro.notes = "chaossoak seed " + std::to_string(config.seed) +
                  ": " + result.violations.front().property + " at " +
                  std::to_string(result.firstViolationAt) + "s — " +
                  result.violations.front().detail;

    phoenix::check::OracleOptions oracle;
    oracle.runLp = false;
    oracle.lifecycle = false;
    if (config.injectFault)
        oracle.injectTightCapacityFraction =
            config.injectTightCapacityFraction;

    const auto check = phoenix::check::checkCase(repro, oracle);
    if (!check.ok()) {
        const auto shrunk =
            phoenix::check::shrinkCase(repro, oracle);
        phoenix::check::CheckCase out = shrunk.shrunk;
        out.name = repro.name;
        out.notes = repro.notes + " (shrunk, " +
                    std::to_string(shrunk.stepsApplied) + " steps)";
        if (writeFile(stem + ".json", out.toJson()))
            std::cerr << "chaossoak: wrote shrunk repro " << stem
                      << ".json\n";
    } else {
        repro.notes +=
            " (static oracle did not reproduce; unshrunk script)";
        if (writeFile(stem + ".json", repro.toJson()))
            std::cerr << "chaossoak: wrote repro " << stem
                      << ".json\n";
    }
}

void
printSummary(const SoakConfig &config, const SoakResult &result,
             bool json)
{
    if (json) {
        std::cout << "{\"seed\": " << config.seed
                  << ", \"hours\": " << config.hours
                  << ", \"waves\": " << result.waves.size()
                  << ", \"checks\": " << result.checkTicks
                  << ", \"violations\": " << result.violationCount
                  << ", \"invariant_violations\": "
                  << result.invariantViolations
                  << ", \"evicted\": " << result.evictedPods
                  << ", \"replans\": " << result.replans
                  << ", \"min_availability\": "
                  << result.minAvailability
                  << ", \"mean_availability\": "
                  << result.meanAvailability << "}\n";
        return;
    }
    std::cout << "SOAK seed=" << config.seed
              << " scheme=" << recoverySchemeName(config.scheme)
              << " hours=" << config.hours
              << " waves=" << result.waves.size()
              << " checks=" << result.checkTicks
              << " violations=" << result.violationCount
              << " invariants=" << result.invariantViolations
              << " evicted=" << result.evictedPods
              << " replans=" << result.replans
              << " minAvail=" << result.minAvailability
              << " meanAvail=" << result.meanAvailability
              << " maxPending=" << result.maxPending << "\n";
    for (const auto &violation : result.violations) {
        std::cout << "  VIOLATION t=" << violation.at << " "
                  << violation.property << ": " << violation.detail
                  << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    SoakConfig config;
    std::vector<uint64_t> seeds;
    std::string corpus_dir = "tests/corpus";
    std::string trace_out;
    bool json = false;
    bool hours_from_env = false;

    const std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size()) {
                std::cerr << "chaossoak: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--hours") {
            config.hours = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--hours-env") {
            hours_from_env = true;
        } else if (arg == "--seed") {
            std::stringstream list(next());
            std::string token;
            while (std::getline(list, token, ','))
                seeds.push_back(
                    std::strtoull(token.c_str(), nullptr, 10));
        } else if (arg == "--scheme") {
            const std::string name = next();
            if (name == "cost")
                config.scheme = RecoveryScheme::PhoenixCost;
            else if (name == "fair")
                config.scheme = RecoveryScheme::PhoenixFair;
            else if (name == "default")
                config.scheme = RecoveryScheme::Default;
            else
                return usage(std::cerr, 2);
        } else if (arg == "--wave-gap") {
            config.meanWaveGap = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--check-period") {
            config.checkPeriod = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--zones") {
            config.zoneCount =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--inject-fault") {
            config.injectFault = true;
            config.injectTightCapacityFraction =
                std::strtod(next().c_str(), nullptr);
        } else if (arg == "--corpus") {
            corpus_dir = next();
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "chaossoak: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        }
    }

    if (hours_from_env) {
        const char *env = std::getenv("SOAK_HOURS");
        if (!env || !*env) {
            std::cerr << "chaossoak: SOAK_HOURS not set; skipping\n";
            return 77;
        }
        config.hours = std::strtod(env, nullptr);
    }
    if (config.hours <= 0.0) {
        std::cerr << "chaossoak: --hours must be positive\n";
        return 2;
    }
    if (seeds.empty())
        seeds.push_back(7);

    phoenix::obs::setMetricsEnabled(true);
    phoenix::obs::setTraceEnabled(true);

    bool any_violation = false;
    for (uint64_t seed : seeds) {
        config.seed = seed;
        phoenix::obs::Tracer::global().clear();
        const SoakResult result = phoenix::exp::runSoak(config);
        printSummary(config, result, json);
        if (!result.ok()) {
            any_violation = true;
            if (!result.violations.empty())
                dumpViolationArtifacts(config, result, corpus_dir);
        }
        if (!trace_out.empty()) {
            std::ostringstream trace;
            phoenix::obs::Tracer::global().exportChromeJson(trace);
            if (!writeFile(trace_out, trace.str())) {
                std::cerr << "chaossoak: cannot write " << trace_out
                          << "\n";
                return 2;
            }
        }
    }
    return any_violation ? 1 : 0;
}
