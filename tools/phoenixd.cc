/**
 * phoenixd: the long-running serving daemon. Reads one JSON command
 * per line on stdin, writes one JSON reply per line on stdout (see
 * serve/daemon.h for the command set). Sim time advances only on
 * {"cmd":"advance",...}, so a driver script fully controls the clock.
 *
 * Quick start:
 *
 *   $ ./tools/phoenixd --scheme=PhoenixCost --metrics
 *   {"cmd":"load-testbed"}
 *   {"cmd":"start-controller","scheme":"PhoenixCost"}
 *   {"cmd":"serve-start","duration":1200,"shape":"diurnal"}
 *   {"cmd":"inject-scenario","steps":[{"kind":"fail-zone","at":600,"zone":0}]}
 *   {"cmd":"advance","seconds":1200}
 *   {"cmd":"stats"}
 *   {"cmd":"shutdown"}
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.h"
#include "serve/daemon.h"

namespace {

int
usage(int code)
{
    std::cerr
        << "usage: phoenixd [--seed=N] [--metrics] "
           "[--trace-out=FILE] [--manifest-rps=R]\n"
           "  Line-delimited JSON command REPL on stdin/stdout.\n"
           "  --seed=N          base seed for serving streams "
           "(default 42)\n"
           "  --metrics         enable the obs metrics registry "
           "(the 'metrics' command reports live values)\n"
           "  --trace-out=FILE  record sim-time spans/instants and "
           "write a Chrome trace on exit\n"
           "  --manifest-rps=R  synthesized offered rps per "
           "manifest service (default 5)\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    phoenix::serve::DaemonConfig config;
    std::string traceOut;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(0);
        if (arg == "--metrics") {
            phoenix::obs::setMetricsEnabled(true);
            continue;
        }
        if (arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg.substr(12);
            phoenix::obs::setTraceEnabled(true);
            continue;
        }
        if (arg.rfind("--seed=", 0) == 0) {
            config.seed = static_cast<uint64_t>(
                std::strtoull(arg.c_str() + 7, nullptr, 10));
            continue;
        }
        if (arg.rfind("--manifest-rps=", 0) == 0) {
            config.manifestRps =
                std::strtod(arg.c_str() + 15, nullptr);
            continue;
        }
        std::cerr << "phoenixd: unknown flag " << arg << "\n";
        return usage(2);
    }

    phoenix::serve::ServeDaemon daemon(std::move(config));
    const int rc = daemon.repl(std::cin, std::cout);

    if (!traceOut.empty()) {
        std::ofstream trace(traceOut);
        if (trace) {
            phoenix::obs::Tracer::global().exportChromeJson(trace);
        } else {
            std::cerr << "phoenixd: cannot write trace to "
                      << traceOut << "\n";
        }
    }
    return rc;
}
