#include "perfdiff_lib.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <map>
#include <sstream>

namespace phoenix::tools {

using util::JsonValue;

std::vector<std::pair<std::string, PerfCell>>
collectPerfCells(const JsonValue &root)
{
    std::vector<std::pair<std::string, PerfCell>> cells;
    const JsonValue *sections = root.field("sections");
    if (!sections)
        return cells;
    for (const JsonValue &section : sections->items) {
        const JsonValue *name = section.field("name");
        const JsonValue *sweep = section.field("sweep");
        if (!name || !sweep)
            continue;
        for (const JsonValue &agg : sweep->items) {
            const JsonValue *scheme = agg.field("scheme");
            if (!scheme)
                continue;
            std::ostringstream key;
            key << name->text << "/" << scheme->text << "@"
                << agg.numberAt("failure_rate");
            PerfCell cell;
            cell.planSeconds = agg.numberAt("plan_seconds.mean");
            cell.packSeconds = agg.numberAt("pack_seconds.mean");
            cell.heapPushes = agg.numberAt("ops_heap_pushes.mean");
            cell.bestFitProbes =
                agg.numberAt("ops_best_fit_probes.mean");
            cell.childSortElems =
                agg.numberAt("ops_child_sort_elems.mean");
            cells.emplace_back(key.str(), cell);
        }
    }
    return cells;
}

PerfDiffResult
diffPerfReports(const JsonValue &baseline_root, const JsonValue &fresh_root,
                double require_speedup, double max_ops_regression)
{
    PerfDiffResult result;
    const auto baseline_cells = collectPerfCells(baseline_root);
    const auto fresh_cells = collectPerfCells(fresh_root);
    std::map<std::string, PerfCell> baseline;
    for (const auto &[key, cell] : baseline_cells)
        baseline.emplace(key, cell);
    {
        std::map<std::string, PerfCell> fresh_by_key;
        for (const auto &[key, cell] : fresh_cells)
            fresh_by_key.emplace(key, cell);
        for (const auto &[key, cell] : baseline_cells) {
            (void)cell;
            if (!fresh_by_key.count(key))
                result.removed.push_back(key);
        }
    }

    for (const auto &[key, fresh] : fresh_cells) {
        const auto it = baseline.find(key);
        if (it == baseline.end()) {
            result.added.push_back(key);
            continue;
        }
        PerfDiffRow row;
        row.cell = key;
        row.baseline = it->second;
        row.fresh = fresh;
        row.speedup = fresh.total() > 0.0
                          ? it->second.total() / fresh.total()
                          : 0.0;
        if (result.worstCell.empty() ||
            row.speedup < result.worstSpeedup) {
            result.worstSpeedup = row.speedup;
            result.worstCell = key;
        }
        if (require_speedup > 0.0 && row.speedup < require_speedup)
            result.met = false;
        if (it->second.ops() > 0.0) {
            const double ratio = fresh.ops() / it->second.ops();
            if (result.worstOpsCell.empty() ||
                ratio > result.worstOpsRatio) {
                result.worstOpsRatio = ratio;
                result.worstOpsCell = key;
            }
            if (max_ops_regression >= 0.0 &&
                ratio > 1.0 + max_ops_regression)
                result.opsMet = false;
        }
        result.rows.push_back(std::move(row));
    }
    return result;
}

bool
loadPerfReport(const std::string &file, JsonValue &out, std::ostream &err)
{
    std::ifstream in(file);
    if (!in) {
        err << "perfdiff: cannot open " << file << "\n";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!util::parseJson(buffer.str(), out)) {
        err << "perfdiff: " << file << " is not valid JSON\n";
        return false;
    }
    return true;
}

namespace {

std::string
formatSeconds(double s)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.4f", s);
    return buffer;
}

std::string
formatRow(const char *cell, const char *base, const char *fresh,
          const char *speedup, const char *pushes, const char *probes)
{
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "%-44s %10s %10s %8s %12s %12s\n", cell, base, fresh,
                  speedup, pushes, probes);
    return buffer;
}

} // namespace

int
runPerfDiff(const std::vector<std::string> &args, std::ostream &out,
            std::ostream &err)
{
    std::vector<std::string> files;
    double require_speedup = 0.0;
    double max_ops_regression = -1.0;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--require-speedup" && i + 1 < args.size()) {
            require_speedup = std::atof(args[++i].c_str());
        } else if (arg == "--max-ops-regression" &&
                   i + 1 < args.size()) {
            max_ops_regression = std::atof(args[++i].c_str());
        } else if (arg == "--help" || arg == "-h") {
            out << "usage: perfdiff BASELINE.json NEW.json "
                   "[--require-speedup X] [--max-ops-regression F]\n";
            return 0;
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2) {
        err << "usage: perfdiff BASELINE.json NEW.json "
               "[--require-speedup X] [--max-ops-regression F]\n";
        return 2;
    }

    JsonValue baseline_root;
    JsonValue fresh_root;
    if (!loadPerfReport(files[0], baseline_root, err) ||
        !loadPerfReport(files[1], fresh_root, err))
        return 2;

    const PerfDiffResult result =
        diffPerfReports(baseline_root, fresh_root, require_speedup,
                        max_ops_regression);
    if (result.rows.empty() && result.added.empty() &&
        result.removed.empty()) {
        err << "perfdiff: the two reports share no cells and none were "
               "added or removed\n";
        return 2;
    }

    if (!result.rows.empty())
        out << formatRow("cell", "base(s)", "new(s)", "speedup",
                         "d-pushes", "d-probes");
    for (const PerfDiffRow &row : result.rows) {
        char speedup[24];
        std::snprintf(speedup, sizeof(speedup), "%.2fx", row.speedup);
        char pushes[24];
        std::snprintf(pushes, sizeof(pushes), "%.0f",
                      row.fresh.heapPushes - row.baseline.heapPushes);
        char probes[24];
        std::snprintf(probes, sizeof(probes), "%.0f",
                      row.fresh.bestFitProbes -
                          row.baseline.bestFitProbes);
        out << formatRow(row.cell.c_str(),
                         formatSeconds(row.baseline.total()).c_str(),
                         formatSeconds(row.fresh.total()).c_str(),
                         speedup, pushes, probes);
        if (row.baseline.childSortElems > 0.0 &&
            row.fresh.childSortElems == 0.0) {
            // The headline structural win: successor sorting went from
            // O(sum child-list sorts) to zero. Not a timing artifact.
            char note[96];
            std::snprintf(note, sizeof(note),
                          "%-44s   child-sort elems %.0f -> 0\n", "",
                          row.baseline.childSortElems);
            out << note;
        }
    }
    // Cells present in only one report are informational: a growing
    // bench adds sizes/schemes, a retired scheme drops them. Neither is
    // a comparison failure.
    for (const std::string &key : result.added)
        out << "added cell: " << key << "\n";
    for (const std::string &key : result.removed)
        out << "removed cell: " << key << "\n";
    if (!result.rows.empty()) {
        char worst[128];
        std::snprintf(worst, sizeof(worst), "worst cell: %s at %.2fx\n",
                      result.worstCell.c_str(), result.worstSpeedup);
        out << worst;
    }
    if (max_ops_regression >= 0.0 && !result.worstOpsCell.empty()) {
        char verdict[160];
        std::snprintf(verdict, sizeof(verdict),
                      "ops bound: <= +%.0f%% on every shared cell "
                      "(worst %s at %+.2f%%) -> %s\n",
                      max_ops_regression * 100.0,
                      result.worstOpsCell.c_str(),
                      (result.worstOpsRatio - 1.0) * 100.0,
                      result.opsMet ? "PASS" : "FAIL");
        out << verdict;
    }
    int exit_code = 0;
    if (require_speedup > 0.0) {
        char verdict[96];
        std::snprintf(verdict, sizeof(verdict),
                      "required: %.2fx on every shared cell -> %s\n",
                      require_speedup, result.met ? "PASS" : "FAIL");
        out << verdict;
        if (!result.met)
            exit_code = 1;
    }
    if (max_ops_regression >= 0.0 && !result.opsMet)
        exit_code = 1;
    return exit_code;
}

} // namespace phoenix::tools
