/**
 * @file
 * perfdiff core: compare two exp::Report JSON documents cell by cell.
 *
 * A cell is a (section, scheme, failure_rate) triple; the compared
 * quantity is plan_seconds.mean + pack_seconds.mean, with the
 * deterministic op counters diffed alongside (wall-clock is noisy, the
 * counters are not, so a perf claim should move both). Split out of
 * the perfdiff executable so the parsing, per-cell speedup math, and
 * the --require-speedup exit semantics are unit-testable.
 */

#ifndef PHOENIX_TOOLS_PERFDIFF_LIB_H
#define PHOENIX_TOOLS_PERFDIFF_LIB_H

#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.h"

namespace phoenix::tools {

/** Timing/op aggregate of one sweep cell. */
struct PerfCell
{
    double planSeconds = 0.0;
    double packSeconds = 0.0;
    double heapPushes = 0.0;
    double bestFitProbes = 0.0;
    double childSortElems = 0.0;

    double total() const { return planSeconds + packSeconds; }

    /** Deterministic pack-phase work: heap pushes + best-fit probes.
     * Unlike wall-clock these never carry machine noise, so a bound
     * on their growth is a machine-independent overhead claim. */
    double ops() const { return heapPushes + bestFitProbes; }
};

/**
 * Extract every sweep cell of a parsed exp::Report, keyed
 * "section/scheme@rate", in file order.
 */
std::vector<std::pair<std::string, PerfCell>>
collectPerfCells(const util::JsonValue &root);

/** One compared cell of a diff. */
struct PerfDiffRow
{
    std::string cell;
    PerfCell baseline;
    PerfCell fresh;
    /** base total / fresh total; 0 when fresh total is 0. */
    double speedup = 0.0;
};

/** Outcome of comparing two reports. */
struct PerfDiffResult
{
    std::vector<PerfDiffRow> rows; //!< cells present in both reports
    /** Cells only in the fresh report (new sizes/schemes are expected
     * when a bench grows — reported, never an error). */
    std::vector<std::string> added;
    /** Cells only in the baseline report. */
    std::vector<std::string> removed;
    double worstSpeedup = 0.0;
    std::string worstCell;
    /** Every shared cell met the required speedup (true when no
     * requirement was given; cells present in only one report are
     * exempt). */
    bool met = true;
    /** Largest fresh/baseline ops() ratio across shared cells (1.0 =
     * identical work; only cells with baseline ops > 0 count). */
    double worstOpsRatio = 0.0;
    std::string worstOpsCell;
    /** Every shared cell stayed within the allowed ops regression
     * (true when no bound was given). */
    bool opsMet = true;
};

/**
 * Compare two parsed reports. @p require_speedup <= 0 disables the
 * requirement check; @p max_ops_regression < 0 disables the op-count
 * bound (e.g. 0.05 allows fresh ops() up to 5% above baseline on
 * every shared cell).
 */
PerfDiffResult diffPerfReports(const util::JsonValue &baseline,
                               const util::JsonValue &fresh,
                               double require_speedup = 0.0,
                               double max_ops_regression = -1.0);

/** Load and parse a report file; errors go to @p err. */
bool loadPerfReport(const std::string &file, util::JsonValue &out,
                    std::ostream &err);

/**
 * Full CLI semantics: parse args, load both reports, print the diff
 * table to @p out. Returns the process exit code: 0 ok / requirement
 * met, 1 requirement missed, 2 usage or input error.
 */
int runPerfDiff(const std::vector<std::string> &args, std::ostream &out,
                std::ostream &err);

} // namespace phoenix::tools

#endif // PHOENIX_TOOLS_PERFDIFF_LIB_H
