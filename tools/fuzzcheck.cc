/**
 * @file
 * fuzzcheck: differential-oracle fuzzing CLI over src/check.
 *
 *   fuzzcheck --cases 200 --seed 1 --out build/fuzz-repros
 *   fuzzcheck --replay tests/corpus/some-case.json
 *   FUZZ_CASES=20000 fuzzcheck --cases-env --seed 7
 *
 * Exit codes: 0 all properties held, 1 violations found, 2 usage or
 * I/O error, 77 skipped (--cases-env without FUZZ_CASES set — ctest's
 * SKIP_RETURN_CODE).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzzer.h"

namespace {

using phoenix::check::CheckCase;
using phoenix::check::FuzzOptions;
using phoenix::check::OracleResult;

int
usage(std::ostream &out, int code)
{
    out << "usage: fuzzcheck [options]\n"
           "  --cases N          generated cases to run (default 200)\n"
           "  --cases-env        read the case count from $FUZZ_CASES;\n"
           "                     exit 77 (skip) when it is not set\n"
           "  --cases-env-var V  like --cases-env but read $V instead\n"
           "                     (ctest gates each long run on its own\n"
           "                     opt-in variable)\n"
           "  --seed S           base seed (default 1)\n"
           "  --shrink / --no-shrink   shrink failing cases (default on)\n"
           "  --out DIR          write failing-case repros to DIR\n"
           "  --replay FILE      check one serialized case instead of "
           "fuzzing\n"
           "  --inject-fault F   enable the deliberately-tight capacity\n"
           "                     invariant (used(node) <= F * capacity)\n"
           "  --shards N         shard/zone width for the sharded and\n"
           "                     incremental schemes-under-test, and the\n"
           "                     generator's zone-local failures\n"
           "                     (default 3; <= 1 skips those checks)\n"
           "  --constraints P    emit placement policies (anti-affinity\n"
           "                     groups, PDBs, minZoneSpread) with\n"
           "                     probability P per draw (default 0)\n"
           "  --no-lp            skip the LP differential\n"
           "  --no-lifecycle     skip the kube lifecycle oracle\n"
           "  --json             machine-readable summary on stdout\n"
           "  --verbose          periodic progress\n";
    return code;
}

int
replayFile(const std::string &file, const FuzzOptions &options,
           bool json)
{
    std::ifstream in(file);
    if (!in) {
        std::cerr << "fuzzcheck: cannot open " << file << "\n";
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto parsed = CheckCase::fromJson(buffer.str(), &error);
    if (!parsed) {
        std::cerr << "fuzzcheck: " << file << ": " << error << "\n";
        return 2;
    }
    const OracleResult result =
        phoenix::check::checkCase(*parsed, options.oracle);
    if (json) {
        std::cout << "{\"case\": \"" << parsed->name
                  << "\", \"violations\": " << result.violations.size()
                  << "}\n";
    } else {
        for (const auto &v : result.violations) {
            std::cout << v.property << " [" << v.scheme << "] "
                      << v.detail << "\n";
        }
        std::cout << file << ": " << result.violations.size()
                  << " violations\n";
    }
    return result.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions options;
    std::string replay;
    bool json = false;
    bool cases_from_env = false;
    std::string cases_env_var = "FUZZ_CASES";

    const std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size()) {
                std::cerr << "fuzzcheck: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--cases") {
            options.cases =
                static_cast<size_t>(std::strtoull(next().c_str(),
                                                  nullptr, 10));
        } else if (arg == "--cases-env") {
            cases_from_env = true;
        } else if (arg == "--cases-env-var") {
            cases_from_env = true;
            cases_env_var = next();
        } else if (arg == "--seed") {
            options.seed =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--shrink") {
            options.shrink = true;
        } else if (arg == "--no-shrink") {
            options.shrink = false;
        } else if (arg == "--out") {
            options.outDir = next();
        } else if (arg == "--replay") {
            replay = next();
        } else if (arg == "--inject-fault") {
            options.oracle.injectTightCapacityFraction =
                std::atof(next().c_str());
        } else if (arg == "--shards") {
            const int shards = std::atoi(next().c_str());
            options.oracle.shards = shards;
            options.gen.zoneFailureZones = shards;
            options.gen.topologyZones = shards;
        } else if (arg == "--constraints") {
            const double p = std::atof(next().c_str());
            options.gen.antiAffinityProbability = p;
            options.gen.pdbProbability = p;
            options.gen.zoneSpreadProbability = p;
            options.gen.nodeCapProbability = p;
        } else if (arg == "--no-lp") {
            options.oracle.runLp = false;
        } else if (arg == "--no-lifecycle") {
            options.oracle.lifecycle = false;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "fuzzcheck: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        }
    }

    if (!replay.empty())
        return replayFile(replay, options, json);

    if (cases_from_env) {
        const char *env = std::getenv(cases_env_var.c_str());
        if (!env || !*env) {
            std::cerr << "fuzzcheck: " << cases_env_var
                      << " not set; skipping long fuzz run\n";
            return 77;
        }
        options.cases = static_cast<size_t>(
            std::strtoull(env, nullptr, 10));
    }

    const phoenix::check::FuzzStats stats =
        phoenix::check::runFuzz(options, std::cerr);

    if (json) {
        std::cout << "{\"cases\": " << stats.casesRun
                  << ", \"failures\": " << stats.failures
                  << ", \"lp_cost_runs\": " << stats.lpCostRuns
                  << ", \"lp_fair_runs\": " << stats.lpFairRuns
                  << ", \"lifecycle_runs\": " << stats.lifecycleRuns
                  << "}\n";
    } else {
        std::cout << "fuzzcheck: " << stats.casesRun << " cases, "
                  << stats.failures << " failures (LP cost/fair ran "
                  << stats.lpCostRuns << "/" << stats.lpFairRuns
                  << ", lifecycle " << stats.lifecycleRuns << ")\n";
        for (const auto &failure : stats.failureList) {
            std::cout << "  case " << failure.caseIndex << " seed "
                      << failure.caseSeed << ": "
                      << failure.firstViolation.property;
            if (!failure.reproFile.empty())
                std::cout << " -> " << failure.reproFile;
            std::cout << "\n";
        }
    }
    return stats.ok() ? 0 : 1;
}
