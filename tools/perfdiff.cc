/**
 * @file
 * perfdiff: compare two exp::Report JSON files (e.g. a committed
 * BENCH_fig8b.baseline.json and a fresh BENCH_fig8b.json) and print
 * the per-cell speedup of every sweep aggregate the two runs share.
 *
 *   perfdiff BASELINE.json NEW.json [--require-speedup X]
 *            [--max-ops-regression F]
 *
 * With --require-speedup the tool exits 1 unless every shared cell
 * reached the given speedup (used by the README's perf smoke recipe).
 * With --max-ops-regression the tool exits 1 when any shared cell's
 * deterministic pack-phase op count (heap pushes + best-fit probes)
 * grew by more than the given fraction — a machine-independent
 * overhead bound (e.g. 0.05 = "at most 5% more pack work").
 * All the logic lives in perfdiff_lib (unit-tested by test_perfdiff);
 * this translation unit is only the process entry point.
 */

#include <iostream>

#include "perfdiff_lib.h"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return phoenix::tools::runPerfDiff(args, std::cout, std::cerr);
}
