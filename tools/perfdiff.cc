/**
 * @file
 * perfdiff: compare two exp::Report JSON files (e.g. a committed
 * BENCH_fig8b.baseline.json and a fresh BENCH_fig8b.json) and print
 * the per-cell speedup of every sweep aggregate the two runs share.
 *
 *   perfdiff BASELINE.json NEW.json [--require-speedup X]
 *
 * A cell is a (section, scheme, failure_rate) triple; the compared
 * quantity is plan_seconds.mean + pack_seconds.mean. The deterministic
 * op counters are diffed alongside — wall-clock can be noisy, the
 * counters cannot, so a perf claim should move both. With
 * --require-speedup the tool exits 1 unless every shared cell reached
 * the given speedup (used by the README's perf smoke recipe).
 *
 * The parser covers exactly the JSON subset exp::Report emits (no
 * surrogate escapes); it is not a general-purpose JSON library.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.
// ------------------------------------------------------------------

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *
    field(const std::string &name) const
    {
        for (const auto &[key, value] : fields) {
            if (key == name)
                return &value;
        }
        return nullptr;
    }

    /** Dotted-path lookup, e.g. "plan_seconds.mean". */
    const JsonValue *
    path(const std::string &dotted) const
    {
        const JsonValue *node = this;
        size_t start = 0;
        while (node) {
            const size_t dot = dotted.find('.', start);
            const std::string key = dotted.substr(
                start, dot == std::string::npos ? dot : dot - start);
            node = node->field(key);
            if (dot == std::string::npos)
                return node;
            start = dot + 1;
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : text_(std::move(text)) {}

    bool
    parse(JsonValue &out)
    {
        pos_ = 0;
        if (!value(out))
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{':
            return object(out);
        case '[':
            return array(out);
        case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.text);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        default:
            return number(out);
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"' ||
                !string(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            JsonValue child;
            if (!value(child))
                return false;
            out.fields.emplace_back(std::move(key), std::move(child));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue child;
            if (!value(child))
                return false;
            out.items.push_back(std::move(child));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            const char escape = text_[pos_++];
            switch (escape) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return false;
                const unsigned code = static_cast<unsigned>(std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                // exp::Report only escapes control chars (< 0x20).
                out += static_cast<char>(code);
                break;
            }
            default:
                return false;
            }
        }
        return false;
    }

    bool
    number(JsonValue &out)
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        out.number = std::strtod(begin, &end);
        if (end == begin)
            return false;
        out.kind = JsonValue::Kind::Number;
        pos_ += static_cast<size_t>(end - begin);
        return true;
    }

    std::string text_;
    size_t pos_ = 0;
};

// ------------------------------------------------------------------
// Report walking.
// ------------------------------------------------------------------

struct Cell
{
    double planSeconds = 0.0;
    double packSeconds = 0.0;
    double heapPushes = 0.0;
    double bestFitProbes = 0.0;
    double childSortElems = 0.0;

    double total() const { return planSeconds + packSeconds; }
};

double
numberAt(const JsonValue &agg, const std::string &dotted)
{
    const JsonValue *node = agg.path(dotted);
    return node && node->kind == JsonValue::Kind::Number ? node->number
                                                         : 0.0;
}

/** (section, scheme@rate) -> timing/ops cell, in file order. */
std::vector<std::pair<std::string, Cell>>
collectCells(const JsonValue &root)
{
    std::vector<std::pair<std::string, Cell>> cells;
    const JsonValue *sections = root.field("sections");
    if (!sections)
        return cells;
    for (const JsonValue &section : sections->items) {
        const JsonValue *name = section.field("name");
        const JsonValue *sweep = section.field("sweep");
        if (!name || !sweep)
            continue;
        for (const JsonValue &agg : sweep->items) {
            const JsonValue *scheme = agg.field("scheme");
            if (!scheme)
                continue;
            std::ostringstream key;
            key << name->text << "/" << scheme->text << "@"
                << numberAt(agg, "failure_rate");
            Cell cell;
            cell.planSeconds = numberAt(agg, "plan_seconds.mean");
            cell.packSeconds = numberAt(agg, "pack_seconds.mean");
            cell.heapPushes = numberAt(agg, "ops_heap_pushes.mean");
            cell.bestFitProbes =
                numberAt(agg, "ops_best_fit_probes.mean");
            cell.childSortElems =
                numberAt(agg, "ops_child_sort_elems.mean");
            cells.emplace_back(key.str(), cell);
        }
    }
    return cells;
}

bool
loadReport(const std::string &file, JsonValue &out)
{
    std::ifstream in(file);
    if (!in) {
        std::cerr << "perfdiff: cannot open " << file << "\n";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonParser parser(buffer.str());
    if (!parser.parse(out)) {
        std::cerr << "perfdiff: " << file << " is not valid JSON\n";
        return false;
    }
    return true;
}

std::string
formatSeconds(double s)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.4f", s);
    return buffer;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    double require_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--require-speedup" && i + 1 < argc) {
            require_speedup = std::atof(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: perfdiff BASELINE.json NEW.json "
                         "[--require-speedup X]\n";
            return 0;
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2) {
        std::cerr << "usage: perfdiff BASELINE.json NEW.json "
                     "[--require-speedup X]\n";
        return 2;
    }

    JsonValue baseline_root;
    JsonValue fresh_root;
    if (!loadReport(files[0], baseline_root) ||
        !loadReport(files[1], fresh_root))
        return 2;

    const auto baseline_cells = collectCells(baseline_root);
    const auto fresh_cells = collectCells(fresh_root);
    std::map<std::string, Cell> baseline;
    for (const auto &[key, cell] : baseline_cells)
        baseline.emplace(key, cell);

    std::printf("%-44s %10s %10s %8s %12s %12s\n", "cell",
                "base(s)", "new(s)", "speedup", "d-pushes",
                "d-probes");
    size_t shared = 0;
    bool met = true;
    double worst = 0.0;
    std::string worst_cell;
    for (const auto &[key, fresh] : fresh_cells) {
        const auto it = baseline.find(key);
        if (it == baseline.end())
            continue;
        ++shared;
        const Cell &base = it->second;
        const double speedup =
            fresh.total() > 0.0 ? base.total() / fresh.total() : 0.0;
        if (worst_cell.empty() || speedup < worst) {
            worst = speedup;
            worst_cell = key;
        }
        if (require_speedup > 0.0 && speedup < require_speedup)
            met = false;
        std::printf("%-44s %10s %10s %7.2fx %12.0f %12.0f\n",
                    key.c_str(), formatSeconds(base.total()).c_str(),
                    formatSeconds(fresh.total()).c_str(), speedup,
                    fresh.heapPushes - base.heapPushes,
                    fresh.bestFitProbes - base.bestFitProbes);
        if (base.childSortElems > 0.0 && fresh.childSortElems == 0.0) {
            // The headline structural win: successor sorting went from
            // O(sum child-list sorts) to zero. Not a timing artifact.
            std::printf("%-44s   child-sort elems %.0f -> 0\n", "",
                        base.childSortElems);
        }
    }
    if (shared == 0) {
        std::cerr << "perfdiff: the two reports share no cells\n";
        return 2;
    }
    std::printf("worst cell: %s at %.2fx\n", worst_cell.c_str(), worst);
    if (require_speedup > 0.0) {
        std::printf("required: %.2fx on every shared cell -> %s\n",
                    require_speedup, met ? "PASS" : "FAIL");
        return met ? 0 : 1;
    }
    return 0;
}
