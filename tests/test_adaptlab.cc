/**
 * @file
 * Tests for the AdaptLab benchmarking platform: environment
 * construction, failure trials, scheme sweeps and capacity-trace
 * replay — including the paper's headline orderings (Phoenix above the
 * non-cooperative baselines on availability; PhoenixCost on revenue;
 * PhoenixFair on fairness deviation).
 */

#include <gtest/gtest.h>

#include "adaptlab/environment.h"
#include "adaptlab/replay.h"
#include "adaptlab/runner.h"

using namespace phoenix;
using namespace phoenix::adaptlab;
using namespace phoenix::core;

namespace {

EnvironmentConfig
smallEnv(uint64_t seed = 1)
{
    EnvironmentConfig config;
    config.nodeCount = 200;
    config.nodeCapacity = 64.0;
    config.demandFraction = 0.8;
    config.seed = seed;
    config.alibaba.appCount = 10;
    config.alibaba.sizeScale = 0.08; // 240 .. ~4 services
    return config;
}

} // namespace

TEST(Environment, BuildsAndPlacesEverything)
{
    const Environment env = buildEnvironment(smallEnv());
    EXPECT_EQ(env.apps.size(), 10u);
    EXPECT_EQ(env.cluster.nodeCount(), 200u);

    // Aggregate demand scaled to the target fraction.
    double demand = 0.0;
    for (const auto &app : env.apps)
        demand += app.totalDemand();
    // Clamping the biggest containers to node capacity costs a little
    // of the exact target; within 1%.
    EXPECT_NEAR(demand, 0.8 * 200 * 64.0, 0.01 * 0.8 * 200 * 64.0);

    // Initial placement activates everything (availability 1).
    const auto active = sim::activeSetFromCluster(env.apps, env.cluster);
    EXPECT_NEAR(sim::criticalServiceAvailability(env.apps, active), 1.0,
                1e-9);
    EXPECT_GT(env.requestsServed(active), 0.0);
}

TEST(Environment, DeterministicForSeed)
{
    const Environment a = buildEnvironment(smallEnv(5));
    const Environment b = buildEnvironment(smallEnv(5));
    EXPECT_EQ(a.cluster.assignment(), b.cluster.assignment());
    const Environment c = buildEnvironment(smallEnv(6));
    EXPECT_NE(a.cluster.assignment(), c.cluster.assignment());
}

TEST(Runner, TrialMetricsAreSane)
{
    const Environment env = buildEnvironment(smallEnv());
    PhoenixScheme scheme(Objective::Fair);
    const TrialMetrics metrics = runFailureTrial(env, scheme, 0.5, 42);
    EXPECT_FALSE(metrics.schemeFailed);
    EXPECT_GE(metrics.availability, 0.0);
    EXPECT_LE(metrics.availability, 1.0 + 1e-9);
    EXPECT_GE(metrics.revenue, 0.0);
    EXPECT_LE(metrics.revenue, 1.0 + 1e-9);
    EXPECT_GE(metrics.utilization, 0.0);
    EXPECT_LE(metrics.utilization, 1.0 + 1e-9);
    EXPECT_GT(metrics.planSeconds, 0.0);
    EXPECT_GT(metrics.requestsServed, 0.0);
}

TEST(Runner, ZeroFailureKeepsEverythingUp)
{
    const Environment env = buildEnvironment(smallEnv());
    PhoenixScheme scheme(Objective::Fair);
    const TrialMetrics metrics = runFailureTrial(env, scheme, 0.0, 42);
    EXPECT_NEAR(metrics.availability, 1.0, 1e-9);
    EXPECT_NEAR(metrics.revenue, 1.0, 1e-6);
}

TEST(Runner, AvailabilityDegradesWithFailureRate)
{
    const Environment env = buildEnvironment(smallEnv());
    PhoenixScheme scheme(Objective::Fair);
    const auto rows =
        sweepScheme(env, scheme, {0.1, 0.5, 0.9}, 3);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_GE(rows[0].metrics.availability,
              rows[1].metrics.availability - 0.05);
    EXPECT_GE(rows[1].metrics.availability,
              rows[2].metrics.availability - 0.05);
}

TEST(Runner, PaperOrderingsHold)
{
    // Each Fig 7 claim is asserted at the failure rate where the
    // schemes differentiate most clearly (see EXPERIMENTS.md for the
    // full sweeps): availability at 70% failure, revenue at 70%,
    // fairness deviation at 50%.
    const Environment env = buildEnvironment(smallEnv());
    PhoenixScheme phoenix_fair(Objective::Fair);
    PhoenixScheme phoenix_cost(Objective::Cost);
    FairScheme fair;
    PriorityScheme priority;
    DefaultScheme def;

    auto avg = [&](ResilienceScheme &scheme, double rate) {
        std::vector<TrialMetrics> batch;
        for (uint64_t t = 0; t < 3; ++t)
            batch.push_back(runFailureTrial(env, scheme, rate, 40 + t));
        return averageTrials(batch);
    };

    // Fig 7a at 70% capacity failure: PhoenixFair above every
    // baseline; PhoenixCost above Default.
    {
        const auto pf = avg(phoenix_fair, 0.7);
        const auto pc = avg(phoenix_cost, 0.7);
        const auto fr = avg(fair, 0.7);
        const auto pr = avg(priority, 0.7);
        const auto df = avg(def, 0.7);
        EXPECT_GT(pf.availability, fr.availability);
        EXPECT_GT(pf.availability, pr.availability);
        EXPECT_GT(pf.availability, df.availability);
        EXPECT_GT(pc.availability, df.availability);

        // Fig 7b: PhoenixCost tops revenue.
        EXPECT_GT(pc.revenue, pf.revenue);
        EXPECT_GT(pc.revenue, fr.revenue);
        EXPECT_GT(pc.revenue, pr.revenue);
        EXPECT_GT(pc.revenue, df.revenue);
    }

    // Fig 7c at 50% failure: PhoenixFair has the least total
    // fair-share deviation.
    {
        const auto pf = avg(phoenix_fair, 0.5);
        const auto pc = avg(phoenix_cost, 0.5);
        const auto fr = avg(fair, 0.5);
        const auto pr = avg(priority, 0.5);
        const auto df = avg(def, 0.5);
        const double pf_dev =
            pf.fairnessPositive + pf.fairnessNegative;
        EXPECT_LT(pf_dev, pc.fairnessPositive + pc.fairnessNegative);
        EXPECT_LT(pf_dev, pr.fairnessPositive + pr.fairnessNegative);
        EXPECT_LT(pf_dev, df.fairnessPositive + df.fairnessNegative);
        EXPECT_LT(pf_dev, fr.fairnessPositive + fr.fairnessNegative);
    }
}

TEST(Runner, PhoenixPacksAsWellAsDefaultButProtectsCritical)
{
    // Fig 8c companions: at deep failure both schedulers fill the
    // cluster (skip-and-continue keeps Default's raw utilization
    // high), but Phoenix spends that capacity on critical services.
    const Environment env = buildEnvironment(smallEnv());
    PhoenixScheme phoenix(Objective::Fair);
    DefaultScheme def;
    double phoenix_util = 0.0;
    double default_util = 0.0;
    double phoenix_strict = 0.0;
    double default_strict = 0.0;
    for (uint64_t t = 0; t < 3; ++t) {
        const auto px = runFailureTrial(env, phoenix, 0.5, 70 + t);
        const auto df = runFailureTrial(env, def, 0.5, 70 + t);
        phoenix_util += px.utilization;
        default_util += df.utilization;
        phoenix_strict += px.availabilityStrict;
        default_strict += df.availabilityStrict;
    }
    EXPECT_GT(phoenix_util, default_util - 0.05);
    EXPECT_GT(phoenix_strict, default_strict);

    // The planner -> scheduler utilization drop is minimal (the
    // paper's Fig 8c observation about Phoenix's packing efficiency).
    const auto trial = runFailureTrial(env, phoenix, 0.5, 99);
    EXPECT_LT(trial.plannerUtilization - trial.utilization, 0.1);
}

TEST(Replay, TraceShapeAndRecovery)
{
    const Environment env = buildEnvironment(smallEnv());
    PhoenixScheme phoenix(Objective::Fair);
    const auto trace = defaultCapacityTrace();
    const auto points = replayTrace(env, phoenix, trace);
    ASSERT_EQ(points.size(), trace.size());

    const double full = points.front().requestsServed;
    EXPECT_GT(full, 0.0);
    // During the 40% dip requests drop but stay positive (grace
    // degradation); at the end, full recovery.
    const auto &dip = points[3]; // t=210, 40% capacity
    EXPECT_LT(dip.requestsServed, full);
    EXPECT_GT(dip.requestsServed, 0.0);
    EXPECT_NEAR(points.back().requestsServed, full, full * 0.01);
    EXPECT_NEAR(points.back().capacityFraction, 1.0, 1e-9);
}

TEST(Replay, PhoenixServesMoreThanNonCooperativeBaselines)
{
    // Fig 8a: Phoenix ~2x requests served vs Fair/Priority through
    // the capacity trough.
    const Environment env = buildEnvironment(smallEnv());
    PhoenixScheme phoenix(Objective::Fair);
    FairScheme fair;
    PriorityScheme priority;

    auto served_through_dip = [&](core::ResilienceScheme &scheme) {
        const auto points =
            replayTrace(env, scheme, defaultCapacityTrace());
        double total = 0.0;
        for (const auto &point : points)
            total += point.requestsServed;
        return total;
    };

    const double phoenix_total = served_through_dip(phoenix);
    EXPECT_GT(phoenix_total, served_through_dip(fair));
    // Our Priority baseline's arbitrary tie-break happens to align
    // with app popularity, which flatters it on this metric; Phoenix
    // must stay within a whisker (the paper's Priority does far
    // worse — see EXPERIMENTS.md).
    EXPECT_GT(phoenix_total, 0.85 * served_through_dip(priority));

    DefaultScheme def;
    EXPECT_GT(phoenix_total, served_through_dip(def));
}
