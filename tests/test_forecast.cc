/**
 * @file
 * Tests for the forecast subsystem (src/forecast): trend-model
 * determinism, hysteresis boundary behavior, warm-plan-equals-cold-plan
 * bit identity over seeded fuzz environments, the end-to-end precursor
 * storyline through the recovery harness, and the shared time-series
 * derivation both harnesses (recovery, soak) are pinned to.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "check/generator.h"
#include "check/oracle.h"
#include "core/schemes.h"
#include "exp/recovery.h"
#include "exp/timeseries.h"
#include "forecast/detector.h"
#include "forecast/forecaster.h"
#include "forecast/model.h"

using namespace phoenix;
using exp::RecoveryConfig;
using exp::RecoveryResult;
using exp::RecoveryScheme;
using forecast::Forecaster;
using forecast::HysteresisConfig;
using forecast::HysteresisGate;
using forecast::TrendModel;
using forecast::TrendModelConfig;

namespace {

/** The bench's "decayzone" anticipated fault: three of fallback zone
 * 0's nodes die as precursors before the whole zone goes at t=900. */
RecoveryConfig
decayZoneConfig(bool forecastOn)
{
    RecoveryConfig config;
    config.scheme = RecoveryScheme::PhoenixCost;
    config.scenarioOptions.zoneCount = 5;
    config.scenario.failNodes(400.0, {0, 5})
        .failNodes(500.0, {10})
        .failZone(900.0, 0)
        .recoverAll(1500.0, 30.0);
    config.endTime = 2400.0;
    config.forecast = forecastOn;
    return config;
}

} // namespace

// --- Trend model -----------------------------------------------------

TEST(TrendModel, ExactLinearFitAndProjection)
{
    TrendModel model;
    // value = 100 - 0.5 * t: the least-squares fit of noiseless linear
    // data recovers the line exactly.
    for (int i = 0; i < 8; ++i) {
        const double t = 15.0 * static_cast<double>(i);
        model.observe(t, 100.0 - 0.5 * t);
    }
    EXPECT_NEAR(model.slope(), -0.5, 1e-9);
    EXPECT_DOUBLE_EQ(model.last(), 100.0 - 0.5 * 105.0);
    EXPECT_NEAR(model.project(60.0), model.last() - 30.0, 1e-9);
}

TEST(TrendModel, ProjectionClampsAtZero)
{
    TrendModel model;
    for (int i = 0; i < 6; ++i)
        model.observe(10.0 * i, 50.0 - 10.0 * i);
    // Trend hits zero before the horizon: capacity cannot go negative.
    EXPECT_DOUBLE_EQ(model.project(1000.0), 0.0);
}

TEST(TrendModel, IdenticalStreamsFitBitIdenticalModels)
{
    // The determinism contract behind --jobs-invariant sweeps: a model
    // is a pure function of its observation stream, so two instances
    // fed the same (t, value) sequence agree bit for bit.
    TrendModelConfig config;
    config.window = 6;
    config.ewmaHalfLife = 45.0;
    TrendModel a(config);
    TrendModel b(config);
    uint64_t x = 0x9e3779b97f4a7c15ull; // splitmix-style scramble
    for (int i = 0; i < 200; ++i) {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        const double value =
            static_cast<double>(x % 10000ull) / 100.0;
        const double t = 5.0 * static_cast<double>(i);
        a.observe(t, value);
        b.observe(t, value);
        ASSERT_EQ(a.ewma(), b.ewma());
        ASSERT_EQ(a.slope(), b.slope());
        ASSERT_EQ(a.project(120.0), b.project(120.0));
    }
    EXPECT_EQ(a.sampleCount(), b.sampleCount());
    EXPECT_EQ(a.last(), b.last());
}

// --- Hysteresis gate -------------------------------------------------

TEST(Hysteresis, ExactlyAtEnterThresholdNeverArms)
{
    const HysteresisConfig config{0.25, 0.10, 2};
    HysteresisGate gate(config);
    for (int i = 0; i < 100; ++i) {
        gate.observe(config.enter); // exactly at, not strictly above
        ASSERT_FALSE(gate.armed());
        ASSERT_EQ(gate.streak(), 0);
    }
    EXPECT_EQ(gate.armCount(), 0u);
}

TEST(Hysteresis, ArmsOnStreakAndExactlyAtExitNeverClears)
{
    const HysteresisConfig config{0.25, 0.10, 3};
    HysteresisGate gate(config);
    EXPECT_FALSE(gate.observe(0.30));
    EXPECT_FALSE(gate.observe(0.30));
    EXPECT_TRUE(gate.observe(0.30)); // armTicks-th consecutive sample
    for (int i = 0; i < 100; ++i) {
        gate.observe(config.exit); // exactly at exit: state untouched
        ASSERT_TRUE(gate.armed());
    }
    EXPECT_FALSE(gate.observe(config.exit - 1e-9));
    EXPECT_EQ(gate.armCount(), 1u);
    EXPECT_EQ(gate.clearCount(), 1u);
}

TEST(Hysteresis, InterruptedStreakDoesNotArm)
{
    HysteresisGate gate(HysteresisConfig{0.25, 0.10, 3});
    gate.observe(0.30);
    gate.observe(0.30);
    gate.observe(0.20); // between exit and enter: streak resets
    gate.observe(0.30);
    gate.observe(0.30);
    EXPECT_FALSE(gate.armed());
    EXPECT_TRUE(gate.observe(0.30));
}

TEST(Hysteresis, BoundaryRidingSignalNeverFlaps)
{
    const HysteresisConfig config{0.25, 0.10, 2};
    HysteresisGate gate(config);
    // A signal riding exactly on either threshold changes nothing, no
    // matter how it alternates.
    for (int i = 0; i < 200; ++i) {
        gate.observe((i % 2) ? config.enter : config.exit);
        ASSERT_FALSE(gate.armed());
    }
    EXPECT_EQ(gate.armCount(), 0u);
    EXPECT_EQ(gate.clearCount(), 0u);
}

// --- Warm plan == cold plan ------------------------------------------

TEST(Forecast, WarmPlanIsBitIdenticalToColdPlanOnSeededEnvs)
{
    // The soundness property warm application rests on: a scheme that
    // just planned a *projection* (the forecaster's pre-staging shape)
    // must produce the byte-identical cold answer when asked to plan
    // the real post-failure state — scheme output is a pure function
    // of (apps, state). 50 seeded fuzz environments, both objectives.
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        const check::CheckCase c = check::generateCase(seed);
        const sim::ClusterState post = check::postFailureState(c);

        sim::ClusterState projection = post;
        const std::vector<sim::NodeId> healthy = post.healthyNodes();
        if (!healthy.empty())
            projection.failNode(healthy.front());

        for (const core::Objective objective :
             {core::Objective::Fair, core::Objective::Cost}) {
            core::PhoenixScheme staged(objective);
            (void)staged.apply(c.apps, projection); // warm-up on the
                                                    // projection
            const core::SchemeResult warm = staged.apply(c.apps, post);

            core::PhoenixScheme cold(objective);
            const core::SchemeResult reference =
                cold.apply(c.apps, post);

            ASSERT_TRUE(Forecaster::sameSchemeResult(warm, reference))
                << "seed " << seed << " objective "
                << (objective == core::Objective::Fair ? "Fair"
                                                       : "Cost");
            ASSERT_EQ(Forecaster::fingerprintState(post),
                      Forecaster::fingerprintState(post));
        }
    }
}

TEST(Forecast, FingerprintDistinguishesProjectionFromObserved)
{
    const check::CheckCase c = check::generateCase(7);
    const sim::ClusterState post = check::postFailureState(c);
    const std::vector<sim::NodeId> healthy = post.healthyNodes();
    ASSERT_FALSE(healthy.empty());
    sim::ClusterState projection = post;
    projection.failNode(healthy.front());
    // Stale detection is fingerprint inequality: a projection that did
    // not come true must not match the observed state.
    EXPECT_NE(Forecaster::fingerprintState(post),
              Forecaster::fingerprintState(projection));
    EXPECT_EQ(Forecaster::fingerprintApps(c.apps),
              Forecaster::fingerprintApps(c.apps));
}

// --- End-to-end through the recovery harness -------------------------

TEST(Forecast, PrecursorScenarioPrestagesAndActsBeforeTheFault)
{
    const RecoveryResult reactive =
        exp::runRecovery(decayZoneConfig(false));
    const RecoveryResult forecast =
        exp::runRecovery(decayZoneConfig(true));

    // Reactive pays a real recovery after the zone kill.
    EXPECT_GT(reactive.timeToCriticalRecovery, 0.0);
    EXPECT_EQ(reactive.warmReplans, 0u);
    EXPECT_EQ(reactive.proactiveReplans, 0u);

    // The forecast run pre-stages against the projected zone loss and
    // acts on the armed risk before the kill lands.
    EXPECT_GE(forecast.forecast.prestagedPlans, 1u);
    EXPECT_GE(forecast.warmReplans + forecast.proactiveReplans, 1u);
    ASSERT_GE(forecast.timeToCriticalRecovery, 0.0);
    EXPECT_LT(forecast.timeToCriticalRecovery,
              reactive.timeToCriticalRecovery);

    // Proaction must never cost correctness.
    EXPECT_EQ(forecast.invariantViolations, 0u);
    EXPECT_DOUBLE_EQ(forecast.finalAvailability, 1.0);
}

TEST(Forecast, RecoveryRunsAreDeterministicWithForecastOn)
{
    const RecoveryResult a = exp::runRecovery(decayZoneConfig(true));
    const RecoveryResult b = exp::runRecovery(decayZoneConfig(true));

    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (size_t i = 0; i < a.samples.size(); ++i) {
        ASSERT_EQ(a.samples[i].t, b.samples[i].t);
        ASSERT_EQ(a.samples[i].readyCapacity,
                  b.samples[i].readyCapacity);
        ASSERT_EQ(a.samples[i].availability,
                  b.samples[i].availability);
        ASSERT_EQ(a.samples[i].running, b.samples[i].running);
        ASSERT_EQ(a.samples[i].pending, b.samples[i].pending);
    }
    EXPECT_EQ(a.replans, b.replans);
    EXPECT_EQ(a.warmReplans, b.warmReplans);
    EXPECT_EQ(a.proactiveReplans, b.proactiveReplans);
    EXPECT_EQ(a.forecast.prestagedPlans, b.forecast.prestagedPlans);
    EXPECT_EQ(a.forecast.restagedPlans, b.forecast.restagedPlans);
    EXPECT_EQ(a.forecast.warmApplies, b.forecast.warmApplies);
    EXPECT_EQ(a.forecast.stalePlans, b.forecast.stalePlans);
    EXPECT_EQ(a.forecast.proactiveExecutions,
              b.forecast.proactiveExecutions);
    EXPECT_EQ(a.timeToCriticalRecovery, b.timeToCriticalRecovery);
    EXPECT_EQ(a.timeToFullRecovery, b.timeToFullRecovery);
}

TEST(Forecast, VerifiedWarmPlansMatchColdEndToEnd)
{
    // verifyWarmPlans re-derives every warm hit cold on a private
    // scheme and byte-compares before use; a divergence downgrades the
    // hit to a stale fallback. End to end the verified run must behave
    // exactly like the unverified one, with zero stale downgrades
    // caused by verification.
    RecoveryConfig verified = decayZoneConfig(true);
    verified.forecastConfig.verifyWarmPlans = true;
    const RecoveryResult checked = exp::runRecovery(verified);
    const RecoveryResult plain =
        exp::runRecovery(decayZoneConfig(true));

    EXPECT_EQ(checked.forecast.warmApplies,
              plain.forecast.warmApplies);
    EXPECT_EQ(checked.forecast.stalePlans, plain.forecast.stalePlans);
    EXPECT_EQ(checked.timeToCriticalRecovery,
              plain.timeToCriticalRecovery);
    EXPECT_EQ(checked.invariantViolations, 0u);
}

// --- Shared time-series derivation (recovery + soak) -----------------

TEST(Timeseries, SharedDerivationConventions)
{
    using exp::SeriesPoint;
    // Never dropped after the failure: 0.
    EXPECT_DOUBLE_EQ(exp::recoveryTimeSince(
                         {{10.0, true}, {20.0, true}, {30.0, true}},
                         5.0),
                     0.0);
    // Horizon ends still broken: -1.
    EXPECT_DOUBLE_EQ(exp::recoveryTimeSince(
                         {{10.0, true}, {20.0, false}, {30.0, false}},
                         5.0),
                     -1.0);
    // Recovered for good: first sample after the last bad one,
    // relative to the failure instant.
    EXPECT_DOUBLE_EQ(
        exp::recoveryTimeSince({{10.0, false},
                                {20.0, true},
                                {30.0, false},
                                {40.0, true},
                                {50.0, true}},
                               5.0),
        35.0);
    // No failure injected: 0 regardless of the series.
    EXPECT_DOUBLE_EQ(
        exp::recoveryTimeSince({{10.0, false}}, -1.0), 0.0);
}

TEST(Timeseries, AdapterMatchesPointForm)
{
    // The recovery harness calls the template adapter over its sample
    // type; the soak pushes SeriesPoints directly. Both forms must
    // derive the same number from the same series.
    struct Sample
    {
        double t;
        double availability;
    };
    const std::vector<Sample> samples = {{15.0, 1.0},  {30.0, 0.5},
                                         {45.0, 0.25}, {60.0, 1.0},
                                         {75.0, 1.0},  {90.0, 1.0}};
    std::vector<exp::SeriesPoint> points;
    for (const Sample &s : samples)
        points.push_back({s.t, s.availability >= 1.0 - 1e-9});

    const double failureAt = 20.0;
    const double viaAdapter = exp::recoveryTimeSince(
        samples, failureAt, [](const Sample &s) { return s.t; },
        [](const Sample &s) { return s.availability >= 1.0 - 1e-9; });
    EXPECT_DOUBLE_EQ(viaAdapter,
                     exp::recoveryTimeSince(points, failureAt));
    EXPECT_DOUBLE_EQ(viaAdapter, 40.0);
}

// --- Satellite regression: the sampling cadence stays configurable
// --- without moving the default.

TEST(Recovery, SamplePeriodDefaultUnchanged)
{
    EXPECT_DOUBLE_EQ(RecoveryConfig{}.samplePeriod, 15.0);
}
