/**
 * @file
 * Tests for the Alibaba-style workload generator, resource models,
 * coverage analysis and criticality tagging — including checks that the
 * synthesized statistics match what the paper reports for the real
 * trace (single-upstream fraction, call-graph sizes, coverage skew).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workloads/alibaba.h"
#include "workloads/coverage.h"
#include "workloads/resources.h"
#include "workloads/tagging.h"

using namespace phoenix;
using namespace phoenix::workloads;
using sim::MsId;

namespace {

AlibabaConfig
smallConfig()
{
    AlibabaConfig config;
    config.appCount = 8;
    config.sizeScale = 0.1; // 300 down to ~4 services
    return config;
}

} // namespace

TEST(Alibaba, PaperSizesSpanTheReportedRange)
{
    const auto sizes = AlibabaGenerator::paperSizes(18, 1.0);
    ASSERT_EQ(sizes.size(), 18u);
    EXPECT_EQ(sizes.front(), 3000u);
    EXPECT_LE(sizes.back(), 12u);
    EXPECT_TRUE(std::is_sorted(sizes.rbegin(), sizes.rend()));
}

TEST(Alibaba, GeneratesRequestedApps)
{
    const auto apps = AlibabaGenerator(smallConfig()).generate();
    ASSERT_EQ(apps.size(), 8u);
    for (const auto &generated : apps) {
        EXPECT_GE(generated.app.services.size(), 4u);
        EXPECT_TRUE(generated.app.hasDependencyGraph);
        EXPECT_TRUE(generated.app.dag.isAcyclic());
        EXPECT_FALSE(generated.callGraphs.empty());
        EXPECT_GT(generated.requestRate, 0.0);
    }
}

TEST(Alibaba, DeterministicForSeed)
{
    const auto a = AlibabaGenerator(smallConfig()).generate();
    const auto b = AlibabaGenerator(smallConfig()).generate();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].app.services.size(), b[i].app.services.size());
        EXPECT_EQ(a[i].app.dag.edgeCount(), b[i].app.dag.edgeCount());
        EXPECT_NEAR(a[i].requestRate, b[i].requestRate, 1e-9);
    }
}

TEST(Alibaba, SingleUpstreamFractionMatchesPaper)
{
    // The paper reports 74-82% of microservices invoked by a single
    // upstream; the generator targets 82% by default.
    AlibabaConfig config;
    config.appCount = 6;
    config.sizeScale = 0.3;
    const auto apps = AlibabaGenerator(config).generate();
    double total = 0.0;
    for (const auto &generated : apps)
        total += generated.app.dag.singleUpstreamFraction();
    const double mean = total / static_cast<double>(apps.size());
    EXPECT_GT(mean, 0.70);
    EXPECT_LT(mean, 0.92);
}

TEST(Alibaba, PopularitySkewTowardLargeApps)
{
    const auto apps = AlibabaGenerator(smallConfig()).generate();
    double top = 0.0;
    double total = 0.0;
    for (size_t i = 0; i < apps.size(); ++i) {
        total += apps[i].requestRate;
        if (i < 4)
            top += apps[i].requestRate;
    }
    // Top four applications serve most requests (§3.2).
    EXPECT_GT(top / total, 0.75);
}

TEST(Alibaba, CallGraphsAreConnectedSubsetsRootedAtEntry)
{
    const auto apps = AlibabaGenerator(smallConfig()).generate();
    for (const auto &generated : apps) {
        double weight = 0.0;
        for (const auto &tpl : generated.callGraphs) {
            weight += tpl.weight;
            ASSERT_FALSE(tpl.services.empty());
            // Entry microservice always participates.
            EXPECT_TRUE(std::find(tpl.services.begin(),
                                  tpl.services.end(),
                                  MsId{0}) != tpl.services.end());
            for (MsId m : tpl.services)
                EXPECT_LT(m, generated.app.services.size());
        }
        EXPECT_NEAR(weight, 1.0, 1e-6);
    }
}

TEST(Alibaba, MostCallGraphsAreSmall)
{
    AlibabaConfig config;
    config.appCount = 4;
    config.sizeScale = 1.0; // big apps
    const auto apps = AlibabaGenerator(config).generate();
    // Fig 17b: for the top apps most call graphs contain <10 services.
    const auto &top = apps[0];
    size_t small = 0;
    double small_weight = 0.0;
    for (const auto &tpl : top.callGraphs) {
        if (tpl.services.size() < 10) {
            ++small;
            small_weight += tpl.weight;
        }
    }
    EXPECT_GT(small_weight, 0.8);
    EXPECT_GT(small, top.callGraphs.size() / 2);
}

TEST(Alibaba, CallsPerMinuteConsistent)
{
    const auto apps = AlibabaGenerator(smallConfig()).generate();
    const auto &generated = apps[0];
    const auto cpm = callsPerMinute(generated);
    ASSERT_EQ(cpm.size(), generated.app.services.size());
    // Entry service carries all requests.
    const double per_minute = generated.requestRate / (24.0 * 60.0);
    EXPECT_NEAR(cpm[0], per_minute, per_minute * 1e-6);
    for (double c : cpm)
        EXPECT_GE(c, 0.0);
}

TEST(Resources, CpmModelScalesWithTraffic)
{
    auto apps = AlibabaGenerator(smallConfig()).generate();
    ResourceConfig config;
    config.model = ResourceModel::CallsPerMinute;
    assignResources(apps, config);
    for (const auto &generated : apps) {
        // Every container within the envelope, and each app's most
        // expensive service normalized to the top of it (cpm times a
        // per-service cost-per-call factor drives sizes, so the
        // hottest service is not necessarily the biggest).
        double biggest = 0.0;
        for (const auto &ms : generated.app.services) {
            EXPECT_GE(ms.cpu, config.minCpu - 1e-9);
            EXPECT_LE(ms.cpu, config.maxCpu + 1e-9);
            biggest = std::max(biggest, ms.cpu);
        }
        EXPECT_NEAR(biggest, config.maxCpu, 1e-6);
    }
}

TEST(Resources, LongTailedModelIsSkewed)
{
    auto apps = AlibabaGenerator(smallConfig()).generate();
    ResourceConfig config;
    config.model = ResourceModel::LongTailed;
    assignResources(apps, config);
    std::vector<double> sizes;
    for (const auto &generated : apps) {
        for (const auto &ms : generated.app.services)
            sizes.push_back(ms.cpu);
    }
    std::sort(sizes.begin(), sizes.end());
    const double median = sizes[sizes.size() / 2];
    const double p99 = sizes[sizes.size() * 99 / 100];
    // Heavy tail: p99 at least 5x the median.
    EXPECT_GT(p99, 5.0 * median);
}

TEST(Resources, ScaleTotalDemandHitsTarget)
{
    auto apps = AlibabaGenerator(smallConfig()).generate();
    assignResources(apps, ResourceConfig{});
    scaleTotalDemand(apps, 5000.0);
    double total = 0.0;
    for (const auto &generated : apps)
        total += generated.app.totalDemand();
    EXPECT_NEAR(total, 5000.0, 1e-6);
}

TEST(Coverage, CoveredFractionBasics)
{
    std::vector<CallGraphTemplate> templates{
        {{0, 1}, 0.6}, {{0, 2}, 0.3}, {{0, 1, 2, 3}, 0.1}};
    std::vector<bool> enabled{true, true, false, false};
    EXPECT_NEAR(coveredFraction(templates, enabled), 0.6, 1e-9);
    enabled[2] = true;
    EXPECT_NEAR(coveredFraction(templates, enabled), 0.9, 1e-9);
    enabled[3] = true;
    EXPECT_NEAR(coveredFraction(templates, enabled), 1.0, 1e-9);
}

TEST(Coverage, GreedyReachesTarget)
{
    std::vector<CallGraphTemplate> templates{
        {{0, 1}, 0.5}, {{0, 2}, 0.3}, {{0, 3, 4, 5}, 0.2}};
    const auto chosen = minServicesForCoverage(templates, 6, 0.8);
    std::vector<bool> enabled(6, false);
    for (MsId m : chosen)
        enabled[m] = true;
    EXPECT_GE(coveredFraction(templates, enabled), 0.8 - 1e-9);
    // Greedy should not need the expensive tail template.
    EXPECT_LE(chosen.size(), 3u);
}

TEST(Coverage, CurveIsMonotone)
{
    const auto apps = AlibabaGenerator(smallConfig()).generate();
    const auto curve = coverageCurve(apps[0].callGraphs,
                                     apps[0].app.services.size());
    ASSERT_GE(curve.size(), 2u);
    for (size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].fractionCovered,
                  curve[i - 1].fractionCovered - 1e-12);
        EXPECT_GE(curve[i].servicesEnabled,
                  curve[i - 1].servicesEnabled);
    }
    EXPECT_NEAR(curve.back().fractionCovered, 1.0, 1e-6);
}

TEST(Coverage, SmallFractionOfServicesCoversMostRequests)
{
    // Appendix G headline: large apps serve >80% of requests with a
    // few percent of microservices.
    AlibabaConfig config;
    config.appCount = 4;
    config.sizeScale = 1.0;
    const auto apps = AlibabaGenerator(config).generate();
    const auto &top = apps[0];
    const auto chosen =
        minServicesForCoverage(top.callGraphs,
                               top.app.services.size(), 0.8);
    EXPECT_LT(static_cast<double>(chosen.size()) /
                  static_cast<double>(top.app.services.size()),
              0.10);
}

TEST(Coverage, ExactMatchesOrBeatsGreedyOnSmallInstances)
{
    std::vector<CallGraphTemplate> templates{
        {{0, 1}, 0.35}, {{0, 2}, 0.35}, {{0, 1, 2}, 0.2},
        {{0, 3}, 0.1}};
    const auto greedy = minServicesForCoverage(templates, 4, 0.9);
    const auto exact = exactMinServicesForCoverage(templates, 4, 0.9);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(exact->size(), greedy.size());
    std::vector<bool> enabled(4, false);
    for (MsId m : *exact)
        enabled[m] = true;
    EXPECT_GE(coveredFraction(templates, enabled), 0.9 - 1e-9);
}

TEST(Tagging, Names)
{
    TaggingConfig config;
    config.scheme = TaggingScheme::ServiceLevel;
    config.percentile = 0.9;
    EXPECT_EQ(taggingName(config), "Service-Level-P90");
    config.scheme = TaggingScheme::FrequencyBased;
    config.percentile = 0.5;
    EXPECT_EQ(taggingName(config), "Freq-Based-P50");
    EXPECT_EQ(paperTaggingConfigs().size(), 4u);
}

class TaggingSchemes
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(TaggingSchemes, CriticalSetCoversTargetRequests)
{
    auto apps = AlibabaGenerator(smallConfig()).generate();
    TaggingConfig config;
    config.scheme = std::get<0>(GetParam()) == 0
                        ? TaggingScheme::ServiceLevel
                        : TaggingScheme::FrequencyBased;
    config.percentile = std::get<1>(GetParam());
    config.rareCriticalFraction = 0.0; // isolate the scheme itself
    assignCriticality(apps, config);

    for (const auto &generated : apps) {
        std::vector<bool> critical(generated.app.services.size(),
                                   false);
        size_t c1 = 0;
        for (const auto &ms : generated.app.services) {
            EXPECT_GE(ms.criticality, 1);
            EXPECT_LE(ms.criticality, config.levels + 1);
            if (ms.criticality == sim::kC1) {
                critical[ms.id] = true;
                ++c1;
            }
        }
        EXPECT_GT(c1, 0u);
        EXPECT_LT(c1, generated.app.services.size());
        EXPECT_GE(coveredFraction(generated.callGraphs, critical),
                  config.percentile - 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, TaggingSchemes,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0.5, 0.9)));

TEST(Tagging, FrequencyBasedNeedsFewerC1ThanServiceLevel)
{
    auto sl_apps = AlibabaGenerator(smallConfig()).generate();
    auto fb_apps = AlibabaGenerator(smallConfig()).generate();
    TaggingConfig sl;
    sl.scheme = TaggingScheme::ServiceLevel;
    sl.rareCriticalFraction = 0.0;
    TaggingConfig fb;
    fb.scheme = TaggingScheme::FrequencyBased;
    fb.rareCriticalFraction = 0.0;
    assignCriticality(sl_apps, sl);
    assignCriticality(fb_apps, fb);

    auto count_c1 = [](const std::vector<GeneratedApp> &apps) {
        size_t total = 0;
        for (const auto &generated : apps) {
            for (const auto &ms : generated.app.services) {
                if (ms.criticality == sim::kC1)
                    ++total;
            }
        }
        return total;
    };
    // The greedy min-set is by construction no larger than the union
    // of top templates.
    EXPECT_LE(count_c1(fb_apps), count_c1(sl_apps));
}
