/**
 * @file
 * Unit tests for the src/check subsystem itself: case serialization,
 * generator determinism and bounds, the oracle's fixed points, the
 * fault-injection knob, and the shrinker (the acceptance bar: an
 * injected fault shrinks to a repro of at most 8 nodes and 3
 * services).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "check/case.h"
#include "check/fuzzer.h"
#include "check/generator.h"
#include "check/oracle.h"
#include "check/shrink.h"
#include "util/rng.h"

using namespace phoenix;
using check::CaseStep;
using check::CheckCase;
using check::FuzzOptions;
using check::GeneratorOptions;
using check::OracleOptions;
using check::ShrinkOptions;

namespace {

/** A handmade case that keeps every node completely full. */
CheckCase
fullClusterCase(int nodes)
{
    CheckCase c;
    c.name = "handmade-full";
    c.nodeCapacities.assign(nodes, 4.0);
    for (int a = 0; a < nodes; ++a) {
        sim::Application app;
        app.id = a;
        app.name = "app" + std::to_string(a);
        app.pricePerUnit = 1.0;
        app.services.resize(2);
        for (sim::MsId m = 0; m < 2; ++m) {
            app.services[m].id = m;
            app.services[m].criticality = 1 + static_cast<int>(m);
            app.services[m].cpu = 2.0;
        }
        c.apps.push_back(app);
    }
    return c;
}

} // namespace

// --- Case serialization ------------------------------------------------

TEST(CaseJson, RoundTripsGeneratedCases)
{
    for (uint64_t seed : {1ull, 17ull, 923ull}) {
        const CheckCase original = check::generateCase(seed);
        std::string error;
        const auto parsed =
            CheckCase::fromJson(original.toJson(), &error);
        ASSERT_TRUE(parsed.has_value()) << error;

        EXPECT_EQ(parsed->name, original.name);
        EXPECT_EQ(parsed->seed, original.seed);
        EXPECT_EQ(parsed->lifecycle, original.lifecycle);
        EXPECT_EQ(parsed->nodeCapacities, original.nodeCapacities);
        ASSERT_EQ(parsed->apps.size(), original.apps.size());
        for (size_t a = 0; a < original.apps.size(); ++a) {
            const auto &pa = parsed->apps[a];
            const auto &oa = original.apps[a];
            EXPECT_EQ(pa.id, oa.id);
            EXPECT_EQ(pa.phoenixEnabled, oa.phoenixEnabled);
            EXPECT_DOUBLE_EQ(pa.pricePerUnit, oa.pricePerUnit);
            ASSERT_EQ(pa.services.size(), oa.services.size());
            for (size_t m = 0; m < oa.services.size(); ++m) {
                EXPECT_DOUBLE_EQ(pa.services[m].cpu,
                                 oa.services[m].cpu);
                EXPECT_EQ(pa.services[m].criticality,
                          oa.services[m].criticality);
                EXPECT_EQ(pa.services[m].replicas,
                          oa.services[m].replicas);
                EXPECT_EQ(pa.services[m].quorum,
                          oa.services[m].quorum);
            }
            EXPECT_EQ(pa.hasDependencyGraph, oa.hasDependencyGraph);
            if (oa.hasDependencyGraph) {
                ASSERT_EQ(pa.dag.nodeCount(), oa.dag.nodeCount());
                for (size_t u = 0; u < oa.dag.nodeCount(); ++u) {
                    for (size_t v = 0; v < oa.dag.nodeCount(); ++v) {
                        EXPECT_EQ(pa.dag.hasEdge(u, v),
                                  oa.dag.hasEdge(u, v));
                    }
                }
            }
        }
        ASSERT_EQ(parsed->steps.size(), original.steps.size());
        for (size_t s = 0; s < original.steps.size(); ++s) {
            EXPECT_EQ(parsed->steps[s].kind, original.steps[s].kind);
            EXPECT_DOUBLE_EQ(parsed->steps[s].at,
                             original.steps[s].at);
            EXPECT_EQ(parsed->steps[s].nodes,
                      original.steps[s].nodes);
            EXPECT_DOUBLE_EQ(parsed->steps[s].downtime,
                             original.steps[s].downtime);
        }

        // Serialization is a fixed point: toJson(fromJson(x)) == x.
        EXPECT_EQ(parsed->toJson(), original.toJson());
    }
}

TEST(CaseJson, RejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(CheckCase::fromJson("{", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(CheckCase::fromJson("[1,2]", &error).has_value());
    EXPECT_FALSE(CheckCase::fromJson("", &error).has_value());
}

// --- Generator ---------------------------------------------------------

TEST(Generator, IsDeterministic)
{
    for (uint64_t seed : {2ull, 77ull, 4096ull}) {
        const CheckCase a = check::generateCase(seed);
        const CheckCase b = check::generateCase(seed);
        EXPECT_EQ(a.toJson(), b.toJson());
    }
    EXPECT_NE(check::generateCase(2).toJson(),
              check::generateCase(3).toJson());
}

TEST(Generator, RespectsBoundsAndGrids)
{
    GeneratorOptions options;
    for (uint64_t seed = 1; seed <= 60; ++seed) {
        const CheckCase c = check::generateCase(seed, options);
        ASSERT_GE(c.nodeCapacities.size(),
                  static_cast<size_t>(options.minNodes));
        ASSERT_LE(c.nodeCapacities.size(),
                  static_cast<size_t>(options.maxNodes));
        ASSERT_GE(c.apps.size(), static_cast<size_t>(options.minApps));
        ASSERT_LE(c.apps.size(), static_cast<size_t>(options.maxApps));
        for (double capacity : c.nodeCapacities) {
            EXPECT_LE(capacity, options.maxNodeCapacity);
            // 1.0 grid keeps the scale-by-2 metamorphic check exact.
            EXPECT_DOUBLE_EQ(capacity, std::round(capacity));
        }
        for (const auto &app : c.apps) {
            EXPECT_LE(app.services.size(),
                      static_cast<size_t>(options.maxServicesPerApp));
            for (const auto &ms : app.services) {
                EXPECT_GT(ms.cpu, 0.0);
                EXPECT_LE(ms.cpu, options.maxServiceCpu);
                // 0.25 grid.
                EXPECT_DOUBLE_EQ(ms.cpu * 4.0,
                                 std::round(ms.cpu * 4.0));
            }
        }
        for (const auto &step : c.steps) {
            for (sim::NodeId n : step.nodes)
                EXPECT_LT(n, c.nodeCapacities.size());
        }
    }
}

// --- Oracle ------------------------------------------------------------

TEST(Oracle, PostFailureStateFollowsTheScript)
{
    CheckCase c = fullClusterCase(3);
    c.steps.push_back({10.0, CaseStep::Kind::Fail, {0}, 0.0});

    sim::ClusterState post = check::postFailureState(c);
    EXPECT_FALSE(post.isHealthy(0));
    EXPECT_TRUE(post.isHealthy(1));

    // A recover step nets the node back out.
    c.steps.push_back({20.0, CaseStep::Kind::Recover, {0}, 0.0});
    post = check::postFailureState(c);
    EXPECT_TRUE(post.isHealthy(0));

    // A flap whose downtime has passed also ends healthy.
    c.steps.clear();
    c.steps.push_back({10.0, CaseStep::Kind::Flap, {1}, 30.0});
    post = check::postFailureState(c);
    EXPECT_TRUE(post.isHealthy(1));
}

TEST(Oracle, GeneratedCasesPassWithoutLp)
{
    OracleOptions options;
    options.runLp = false;
    options.lifecycle = false;
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        const CheckCase c = check::generateCase(seed);
        const auto result = check::checkCase(c, options);
        for (const auto &violation : result.violations) {
            ADD_FAILURE() << "seed " << seed << ": "
                          << violation.property << " ["
                          << violation.scheme << "] "
                          << violation.detail;
        }
    }
}

TEST(Oracle, InjectedFaultFires)
{
    // Every node of the handmade case packs full, so asserting
    // used <= 0.5 * capacity must fail — this is the deliberately
    // wrong invariant the shrinker demo runs against.
    CheckCase c = fullClusterCase(4);
    OracleOptions options;
    options.runLp = false;
    options.metamorphic = false;
    options.lifecycle = false;
    EXPECT_TRUE(check::checkCase(c, options).ok());

    options.injectTightCapacityFraction = 0.5;
    const auto result = check::checkCase(c, options);
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.hasProperty("injected-tight-capacity"));
}

// --- Shrinker ----------------------------------------------------------

TEST(Shrinker, ShrinksInjectedFaultToATinyRepro)
{
    // Start from a deliberately bloated failing case and require the
    // shrinker to land inside the acceptance envelope: <= 8 nodes and
    // <= 3 services, still violating the same property.
    CheckCase c = fullClusterCase(8);
    c.steps.push_back({10.0, CaseStep::Kind::Fail, {7}, 0.0});

    OracleOptions oracle_options;
    oracle_options.runLp = false;
    oracle_options.metamorphic = false;
    oracle_options.lifecycle = false;
    oracle_options.injectTightCapacityFraction = 0.5;
    ASSERT_FALSE(check::checkCase(c, oracle_options).ok());

    const auto outcome = check::shrinkCase(c, oracle_options);
    EXPECT_GT(outcome.stepsApplied, 0u);
    EXPECT_LE(outcome.shrunk.nodeCapacities.size(), 8u);
    EXPECT_LE(outcome.shrunk.serviceCount(), 3u);
    ASSERT_FALSE(outcome.properties.empty());
    EXPECT_EQ(outcome.properties.front(), "injected-tight-capacity");

    // The shrunk case is a self-contained repro: it survives a JSON
    // round trip and still violates.
    std::string error;
    const auto parsed =
        CheckCase::fromJson(outcome.shrunk.toJson(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const auto replay = check::checkCase(*parsed, oracle_options);
    EXPECT_TRUE(replay.hasProperty("injected-tight-capacity"));
}

// --- Fuzzer loop -------------------------------------------------------

TEST(Fuzzer, RunIsDeterministicAndClean)
{
    FuzzOptions options;
    options.seed = 5;
    options.cases = 40;
    options.oracle.runLp = false;
    options.oracle.lifecycle = false;

    std::ostringstream log_a;
    std::ostringstream log_b;
    const auto a = check::runFuzz(options, log_a);
    const auto b = check::runFuzz(options, log_b);
    EXPECT_EQ(a.casesRun, 40u);
    EXPECT_EQ(a.failures, 0u);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.lpCostRuns, b.lpCostRuns);
    EXPECT_EQ(log_a.str(), log_b.str());
}

TEST(Fuzzer, InjectedFaultIsCaughtAndShrunk)
{
    FuzzOptions options;
    options.seed = 5;
    options.cases = 30;
    options.oracle.runLp = false;
    options.oracle.metamorphic = false;
    options.oracle.lifecycle = false;
    options.oracle.injectTightCapacityFraction = 0.05;

    std::ostringstream log;
    const auto stats = check::runFuzz(options, log);
    ASSERT_GT(stats.failures, 0u);
    const auto &failure = stats.failureList.front();
    EXPECT_EQ(failure.firstViolation.property,
              "injected-tight-capacity");
    EXPECT_FALSE(failure.shrunk.apps.empty());
    EXPECT_LE(failure.shrunk.serviceCount(),
              check::generateCase(failure.caseSeed).serviceCount());
    // cellSeed derivation makes the failing index re-runnable alone.
    EXPECT_EQ(failure.caseSeed,
              util::cellSeed(options.seed, failure.caseIndex));
}
