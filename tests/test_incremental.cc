/**
 * @file
 * Delta-bookkeeping tests for incremental replanning: a long-lived
 * PhoenixScheme with the incremental + sharded options enabled, fed by
 * KubeCluster's dirty-node tracking across realistic failure
 * histories, must produce output bit-identical to a from-scratch
 * scheme applied to the same observed state at every epoch.
 *
 * Three histories exercise the reconcile paths:
 *  - a kubelet flap inside the grace period (observed state never
 *    changes — the carried-over index must survive a no-op epoch);
 *  - a zone failing, partially recovering, then failing again
 *    (erase -> insert -> erase churn on the same nodes);
 *  - recovery of a node whose pods were re-homed elsewhere in the
 *    meantime (the node returns empty; its old index entries are
 *    stale on both key and membership).
 */

#include <gtest/gtest.h>

#include "core/schemes.h"
#include "kube/kube.h"

using namespace phoenix;
using namespace phoenix::core;
using namespace phoenix::kube;

namespace {

sim::Application
makeApp(const std::string &name, size_t services, double cpu,
        double price)
{
    sim::Application app;
    app.name = name;
    app.pricePerUnit = price;
    app.services.resize(services);
    for (sim::MsId m = 0; m < services; ++m) {
        app.services[m].id = m;
        app.services[m].cpu = cpu;
        app.services[m].criticality =
            1 + static_cast<int>(m % 5); // C1..C5 spread
    }
    return app;
}

/** A 12-node cluster with three apps of mixed size and price. */
struct Fixture
{
    sim::EventQueue events;
    KubeCluster cluster;

    Fixture() : cluster(events)
    {
        for (int n = 0; n < 12; ++n)
            cluster.addNode(16.0);
        cluster.addApplication(makeApp("a", 8, 2.0, 3.0));
        cluster.addApplication(makeApp("b", 6, 3.0, 1.0));
        cluster.addApplication(makeApp("c", 10, 1.5, 5.0));
        // Let the default scheduler place everything.
        events.runUntil(120.0);
    }
};

void
expectSameActions(const std::vector<Action> &got,
                  const std::vector<Action> &want, const char *when)
{
    ASSERT_EQ(got.size(), want.size()) << when;
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].kind, want[i].kind) << when << " action " << i;
        EXPECT_EQ(got[i].pod, want[i].pod) << when << " action " << i;
        EXPECT_EQ(got[i].from, want[i].from) << when << " action " << i;
        EXPECT_EQ(got[i].to, want[i].to) << when << " action " << i;
    }
}

/**
 * One controller epoch: drain the cluster's dirty-node hints into the
 * warm (incremental) scheme, apply it to the observed state, and
 * assert its outputs are bit-identical to a cold from-scratch scheme
 * on the same state.
 */
void
epochIdentity(PhoenixScheme &warm, KubeCluster &cluster,
              Objective objective, const char *when)
{
    warm.noteDirtyNodes(cluster.drainDirtyNodes());
    const sim::ClusterState state = cluster.observedState();
    const auto &apps = cluster.apps();

    const SchemeResult inc = warm.apply(apps, state);
    PhoenixScheme fresh(objective);
    const SchemeResult ref = fresh.apply(apps, state);

    ASSERT_EQ(inc.plan, ref.plan) << when;
    expectSameActions(inc.pack.actions, ref.pack.actions, when);
    EXPECT_EQ(inc.pack.state.assignment(), ref.pack.state.assignment())
        << when;
    EXPECT_EQ(inc.pack.placed, ref.pack.placed) << when;
    EXPECT_EQ(inc.pack.complete, ref.pack.complete) << when;
}

PhoenixScheme
makeWarm(Objective objective)
{
    PlannerOptions planner_opts;
    planner_opts.incremental = true;
    planner_opts.shardCount = 2;
    PackingOptions packing_opts;
    packing_opts.incremental = true;
    packing_opts.zoneShards = 3;
    return PhoenixScheme(objective, planner_opts, packing_opts);
}

} // namespace

TEST(Incremental, NodeFlapInsideGracePeriod)
{
    Fixture f;
    PhoenixScheme warm = makeWarm(Objective::Fair);
    epochIdentity(warm, f.cluster, Objective::Fair, "baseline");

    // Kubelet flaps but recovers before the 100 s grace period: the
    // node never goes NotReady and no pod moves, so the observed state
    // at the next epoch is unchanged — the pure cache-reuse path.
    f.cluster.stopKubelet(3);
    f.events.runUntil(f.events.now() + 40.0);
    f.cluster.startKubelet(3);
    f.events.runUntil(f.events.now() + 40.0);
    EXPECT_EQ(f.cluster.evictionEpisodes(3), 0u);
    epochIdentity(warm, f.cluster, Objective::Fair, "after flap");

    // And a genuine failure afterwards still reconciles correctly.
    f.cluster.stopKubelet(3);
    f.events.runUntil(f.events.now() + 150.0);
    epochIdentity(warm, f.cluster, Objective::Fair, "after real fail");
}

TEST(Incremental, ZoneFailPartialRecoverRefail)
{
    Fixture f;
    PhoenixScheme warm = makeWarm(Objective::Cost);
    epochIdentity(warm, f.cluster, Objective::Cost, "baseline");

    // "Zone" = nodes 0..3. Fail the whole zone.
    for (sim::NodeId n = 0; n <= 3; ++n)
        f.cluster.stopKubelet(n);
    f.events.runUntil(f.events.now() + 150.0);
    epochIdentity(warm, f.cluster, Objective::Cost, "zone down");

    // Partial recovery: half the zone comes back.
    f.cluster.startKubelet(0);
    f.cluster.startKubelet(1);
    f.events.runUntil(f.events.now() + 60.0);
    epochIdentity(warm, f.cluster, Objective::Cost, "partial recover");

    // Refail one of the recovered nodes.
    f.cluster.stopKubelet(1);
    f.events.runUntil(f.events.now() + 150.0);
    epochIdentity(warm, f.cluster, Objective::Cost, "refail");
}

TEST(Incremental, ConstrainedZoneFailRecoverDoesNotDrift)
{
    // Explicit zones + placement policies: a full zone failing and
    // recovering must not drift constrained placements between the
    // warm (incremental + sharded) scheme and a cold one — the
    // vacancy allocator rebuilds per epoch, but the capacity index it
    // filters is the carried-over incremental one.
    sim::EventQueue events;
    KubeCluster cluster(events);
    for (int n = 0; n < 12; ++n)
        cluster.addNode(16.0, static_cast<uint32_t>(n % 3));

    auto spread = makeApp("spread", 6, 2.0, 3.0);
    for (auto &ms : spread.services) {
        ms.replicas = 3;
        ms.quorum = 2;
        ms.minZoneSpread = 2;
        ms.pdbMaxUnavailable = 1;
    }
    cluster.addApplication(spread);

    auto grouped = makeApp("grouped", 4, 1.5, 1.5);
    sim::PlacementGroup group;
    group.id = 0;
    group.maxPerNode = 1;
    grouped.placementGroups.push_back(group);
    for (auto &ms : grouped.services)
        ms.antiAffinityGroup = 0;
    cluster.addApplication(grouped);

    cluster.addApplication(makeApp("free", 6, 1.0, 2.0));
    events.runUntil(120.0);

    PhoenixScheme warm = makeWarm(Objective::Cost);
    epochIdentity(warm, cluster, Objective::Cost, "baseline");

    // Zone 0 = nodes 0,3,6,9. Fail the whole failure domain.
    for (sim::NodeId n = 0; n < 12; n += 3)
        cluster.stopKubelet(n);
    events.runUntil(events.now() + 150.0);
    epochIdentity(warm, cluster, Objective::Cost, "zone down");

    // Let re-homing settle, then recover the zone.
    events.runUntil(events.now() + 120.0);
    epochIdentity(warm, cluster, Objective::Cost, "re-homed");
    for (sim::NodeId n = 0; n < 12; n += 3)
        cluster.startKubelet(n);
    events.runUntil(events.now() + 60.0);
    epochIdentity(warm, cluster, Objective::Cost, "zone recovered");
}

TEST(Incremental, RecoveryAfterPodsRehomed)
{
    Fixture f;
    PhoenixScheme warm = makeWarm(Objective::Fair);
    epochIdentity(warm, f.cluster, Objective::Fair, "baseline");

    // Fail a node and give the default scheduler time to re-home its
    // evicted pods onto the survivors.
    f.cluster.stopKubelet(5);
    f.events.runUntil(f.events.now() + 150.0);
    epochIdentity(warm, f.cluster, Objective::Fair, "node down");
    f.events.runUntil(f.events.now() + 120.0);
    epochIdentity(warm, f.cluster, Objective::Fair, "pods re-homed");

    // The node recovers empty: its remaining capacity is full again
    // while the re-homed pods keep their new homes.
    f.cluster.startKubelet(5);
    f.events.runUntil(f.events.now() + 60.0);
    epochIdentity(warm, f.cluster, Objective::Fair, "recovered empty");
}
