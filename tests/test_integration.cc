/**
 * @file
 * End-to-end integration: applications enter through the deployment
 * manifest (§5), survive a Phoenix controller crash via the
 * persistence store (§5 Fault Tolerance), run on the mini-Kubernetes
 * substrate through a failure/recovery cycle, and their per-level RTOs
 * (§3.1) are evaluated from the observed timeline.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/controller.h"
#include "core/rto.h"
#include "core/schemes.h"
#include "core/store.h"
#include "kube/kube.h"
#include "kube/manifest.h"
#include "sim/metrics.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::PodRef;

namespace {

const char *const kManifest = R"(application: shop
price: 2.0
phoenix: enabled
services:
  - name: front
    cpu: 2.0
    criticality: 1
  - name: checkout
    cpu: 2.0
    criticality: 1
    upstream: [front]
  - name: search
    cpu: 2.0
    criticality: 2
    upstream: [front]
  - name: recs
    cpu: 2.0
    criticality: 5
    upstream: [search]
---
application: blog
price: 1.0
phoenix: enabled
services:
  - name: nginx
    cpu: 2.0
    criticality: 1
  - name: render
    cpu: 2.0
    criticality: 2
    upstream: [nginx]
  - name: analytics
    cpu: 2.0
    criticality: 5
    upstream: [nginx]
)";

} // namespace

TEST(Integration, ManifestThroughStoreThroughControllerToRto)
{
    // 1. Ingest the manifest.
    std::string error;
    auto parsed = kube::parseManifest(kManifest, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_EQ(parsed->size(), 2u);

    // 2. Round-trip through the persistence store (the crash-restart
    // path: tags and DGs come back from storage, not memory).
    const auto restored =
        deserializeApps(serializeApps(*parsed), &error);
    ASSERT_TRUE(restored.has_value()) << error;

    // 3. Deploy on the mini-Kubernetes cluster with the controller.
    sim::EventQueue events;
    kube::KubeCluster cluster(events);
    for (int n = 0; n < 4; ++n)
        cluster.addNode(4.0); // 16 CPUs; demand 14
    for (const auto &app : *restored)
        cluster.addApplication(app);
    PhoenixController controller(
        events, cluster,
        std::make_unique<PhoenixScheme>(Objective::Fair));

    // 4. Observe the timeline into the RTO tracker.
    RtoTracker tracker(cluster.apps());
    for (double t = 15.0; t <= 1200.0; t += 15.0) {
        events.schedule(t, [&, t] {
            sim::ActiveSet active =
                sim::emptyActiveSet(cluster.apps());
            for (const PodRef &pod : cluster.runningPods())
                active[pod.app][pod.ms] = true;
            tracker.record(t, active);
        });
    }

    // 5. Fail half the cluster at t=300.
    events.schedule(300.0, [&] {
        cluster.stopKubelet(0);
        cluster.stopKubelet(1);
    });
    events.runUntil(1200.0);

    // Steady state held before the failure, and the C1 level of both
    // apps recovered afterwards within the paper's 4-minute envelope.
    ASSERT_GT(tracker.sampleCount(), 0u);
    std::map<sim::AppId, RtoPolicy> policies;
    policies[0].maxSeconds = {{1, 240.0}};
    policies[1].maxSeconds = {{1, 240.0}};
    const auto outcomes = tracker.evaluate(policies, 420.0);
    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto &outcome : outcomes) {
        EXPECT_FALSE(outcome.violated)
            << "app " << outcome.app << " level " << outcome.level
            << " recovery " << outcome.recoverySeconds;
    }

    // The C5 services are the degraded ones (8 CPUs cannot hold 14).
    sim::ActiveSet active = sim::emptyActiveSet(cluster.apps());
    for (const PodRef &pod : cluster.runningPods())
        active[pod.app][pod.ms] = true;
    EXPECT_FALSE(active[0][3]); // shop/recs
    EXPECT_FALSE(active[1][2]); // blog/analytics
    EXPECT_TRUE(active[0][0]);
    EXPECT_TRUE(active[0][1]);
    EXPECT_TRUE(active[1][0]);

    // Replans were recorded: initial placement + failure.
    EXPECT_GE(controller.history().size(), 2u);
}

TEST(Integration, ControllerCrashRestartResumesFromStore)
{
    // Phase 1: a controller persists its inputs, then "crashes".
    std::string error;
    auto apps = kube::parseManifest(kManifest, &error);
    ASSERT_TRUE(apps.has_value()) << error;
    const std::string path = "/tmp/phoenix_integration_store.txt";
    ASSERT_TRUE(saveAppsToFile(*apps, path));

    // Phase 2: a fresh controller on a fresh event loop loads the
    // store and manages a degraded cluster correctly.
    auto loaded = loadAppsFromFile(path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;

    sim::EventQueue events;
    kube::KubeCluster cluster(events);
    for (int n = 0; n < 4; ++n)
        cluster.addNode(4.0);
    for (const auto &app : *loaded)
        cluster.addApplication(app);
    cluster.stopKubelet(0); // restart lands on an already-sick cluster
    PhoenixController controller(
        events, cluster,
        std::make_unique<PhoenixScheme>(Objective::Fair));
    events.runUntil(600.0);

    sim::ActiveSet active = sim::emptyActiveSet(cluster.apps());
    for (const PodRef &pod : cluster.runningPods())
        active[pod.app][pod.ms] = true;
    // 12 healthy CPUs, 14 demanded: every C1/C2 runs, C5 degraded by
    // tag, exactly as the persisted criticalities dictate.
    EXPECT_NEAR(sim::criticalServiceAvailability(cluster.apps(),
                                                 active),
                1.0, 1e-9);
    std::remove(path.c_str());
}
