/**
 * @file
 * Tests for the extension features: the K8s PriorityClass preemption
 * baseline, the sampling load generator, and the weighted-fair
 * operator objective.
 */

#include <gtest/gtest.h>

#include "apps/loadgen.h"
#include "apps/overleaf.h"
#include "core/planner.h"
#include "core/preemption.h"
#include "sim/metrics.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::Application;
using sim::ClusterState;
using sim::MsId;
using sim::PodRef;

namespace {

Application
makeApp(sim::AppId id, const std::vector<int> &tags,
        const std::vector<double> &cpus)
{
    Application app;
    app.id = id;
    app.services.resize(tags.size());
    for (MsId m = 0; m < tags.size(); ++m) {
        app.services[m].id = m;
        app.services[m].criticality = tags[m];
        app.services[m].cpu = cpus[m];
    }
    return app;
}

} // namespace

TEST(Preemption, HighPriorityPreemptsLowPriority)
{
    // A C5 pod occupies the only node; a pending C1 pod must preempt
    // it.
    auto apps = std::vector<Application>{makeApp(0, {1, 5}, {3, 3})};
    ClusterState cluster;
    cluster.addNode(4.0);
    cluster.place(PodRef{0, 1}, 0, 3.0); // the C5 squatter

    KubePreemptionScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    const auto active = result.activeSet(apps);
    EXPECT_TRUE(active[0][0]);
    EXPECT_FALSE(active[0][1]);
    // Exactly one Delete (the victim) and one Restart.
    size_t deletes = 0;
    for (const auto &action : result.pack.actions)
        deletes += action.kind == ActionKind::Delete;
    EXPECT_EQ(deletes, 1u);
}

TEST(Preemption, NeverPreemptsEqualOrHigherPriority)
{
    // Node full of C1 pods; pending C1 pod cannot preempt peers.
    auto apps = std::vector<Application>{makeApp(0, {1, 1}, {4, 4})};
    ClusterState cluster;
    cluster.addNode(4.0);
    cluster.place(PodRef{0, 0}, 0, 4.0);

    KubePreemptionScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    EXPECT_TRUE(result.pack.state.isActive(PodRef{0, 0}));
    EXPECT_FALSE(result.pack.state.isActive(PodRef{0, 1}));
    EXPECT_FALSE(result.pack.complete);
}

TEST(Preemption, MinimizesVictimCount)
{
    // Node 0 holds one 4-unit C5; node 1 holds four 1-unit C5s. The
    // pending 4-unit C1 should evict the single big victim, not four
    // small ones.
    auto apps = std::vector<Application>{
        makeApp(0, {1, 5, 5, 5, 5, 5}, {4, 4, 1, 1, 1, 1})};
    ClusterState cluster;
    cluster.addNode(4.0);
    cluster.addNode(4.0);
    cluster.place(PodRef{0, 1}, 0, 4.0);
    for (MsId m = 2; m < 6; ++m)
        cluster.place(PodRef{0, m}, 1, 1.0);

    KubePreemptionScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    EXPECT_TRUE(result.pack.state.isActive(PodRef{0, 0}));
    EXPECT_FALSE(result.pack.state.isActive(PodRef{0, 1}));
    for (MsId m = 2; m < 6; ++m)
        EXPECT_TRUE(result.pack.state.isActive(PodRef{0, m}));
}

TEST(Preemption, NoCrossAppCoordination)
{
    // Both apps all-C1; preemption cannot make room, so whichever
    // sorts first wins — no fair split, the paper's §2 critique.
    auto apps = std::vector<Application>{
        makeApp(0, {1, 1}, {3, 3}), makeApp(1, {1, 1}, {3, 3})};
    ClusterState cluster;
    cluster.addNode(6.0);

    KubePreemptionScheme scheme;
    const auto usage = sim::perAppUsage(
        apps, scheme.apply(apps, cluster).activeSet(apps));
    EXPECT_NEAR(usage[0], 6.0, 1e-9);
    EXPECT_NEAR(usage[1], 0.0, 1e-9);
}

TEST(Preemption, WorseCriticalAvailabilityThanPhoenixUnderCrunch)
{
    // Mixed criticalities across two apps with capacity for half: the
    // coordinated Phoenix plan protects both apps' C1; preemption
    // (spread + node-local victims, no deletions of running C5s unless
    // something preempts them) strands capacity on non-critical pods.
    auto apps = std::vector<Application>{
        makeApp(0, {1, 3, 5, 5}, {2, 2, 2, 2}),
        makeApp(1, {1, 3, 5, 5}, {2, 2, 2, 2})};
    ClusterState cluster;
    for (int n = 0; n < 4; ++n)
        cluster.addNode(4.0);
    // Everything running, then half the nodes fail.
    PhoenixScheme bootstrap(Objective::Fair);
    ClusterState placed = bootstrap.apply(apps, cluster).pack.state;
    placed.failNode(0);
    placed.failNode(1);

    KubePreemptionScheme preemption;
    PhoenixScheme phoenix(Objective::Fair);
    const double preemption_avail = sim::criticalServiceAvailability(
        apps, preemption.apply(apps, placed).activeSet(apps));
    const double phoenix_avail = sim::criticalServiceAvailability(
        apps, phoenix.apply(apps, placed).activeSet(apps));
    EXPECT_GE(phoenix_avail, preemption_avail);
    EXPECT_NEAR(phoenix_avail, 1.0, 1e-9);
}

TEST(LoadGen, ServedCountsMatchOfferedWhenHealthy)
{
    const apps::ServiceApp sapp = apps::makeOverleaf(0);
    std::set<MsId> running;
    for (const auto &ms : sapp.app.services)
        running.insert(ms.id);

    apps::LoadGenConfig config;
    config.durationSec = 30.0;
    const auto stats = apps::runLoad(sapp, running, config);
    ASSERT_EQ(stats.size(), sapp.requests.size());
    for (size_t i = 0; i < stats.size(); ++i) {
        // Poisson mean = rate * duration; all offered are served.
        const double mean =
            sapp.requests[i].offeredRps * config.durationSec;
        EXPECT_NEAR(static_cast<double>(stats[i].offered), mean,
                    5.0 * std::sqrt(mean) + 5.0);
        EXPECT_EQ(stats[i].served, stats[i].offered);
        EXPECT_NEAR(stats[i].meanUtility, 1.0, 1e-9);
        EXPECT_GT(stats[i].p95Ms, 0.0);
        EXPECT_GE(stats[i].p99Ms, stats[i].p95Ms);
        EXPECT_GE(stats[i].p95Ms, stats[i].p50Ms);
    }
}

TEST(LoadGen, SampledP95TracksClosedFormModel)
{
    const apps::ServiceApp sapp = apps::makeOverleaf(0);
    std::set<MsId> running;
    for (const auto &ms : sapp.app.services)
        running.insert(ms.id);

    apps::LoadGenConfig config;
    config.durationSec = 120.0;
    const auto stats = apps::runLoad(sapp, running, config);
    const auto closed = apps::evaluateTraffic(sapp, running, 0.5);
    for (const auto &measured : stats) {
        for (const auto &model : closed) {
            if (model.request != measured.request)
                continue;
            // Sum-of-lognormals P95 is below the sum of P95s;
            // within 25% is the expected band.
            EXPECT_LT(measured.p95Ms, model.p95Ms * 1.05)
                << measured.request;
            EXPECT_GT(measured.p95Ms, model.p95Ms * 0.55)
                << measured.request;
        }
    }
}

TEST(LoadGen, PrunedServicesServeNothing)
{
    const apps::ServiceApp sapp = apps::makeOverleaf(0);
    std::set<MsId> running;
    for (const auto &ms : sapp.app.services) {
        if (ms.criticality == 1)
            running.insert(ms.id);
    }
    const auto stats = apps::runLoad(sapp, running, {});
    for (const auto &s : stats) {
        if (s.request == "edits") {
            EXPECT_GT(s.served, 0u);
        } else if (s.request == "spell_check" ||
                   s.request == "compile" || s.request == "chat") {
            EXPECT_EQ(s.served, 0u);
            EXPECT_LT(s.p95Ms, 0.0);
        }
    }
}

TEST(LoadGen, Deterministic)
{
    const apps::ServiceApp sapp = apps::makeOverleaf(0);
    std::set<MsId> running;
    for (const auto &ms : sapp.app.services)
        running.insert(ms.id);
    const auto a = apps::runLoad(sapp, running, {});
    const auto b = apps::runLoad(sapp, running, {});
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].offered, b[i].offered);
        EXPECT_NEAR(a[i].p95Ms, b[i].p95Ms, 1e-9);
    }
}

TEST(WeightedFair, WeightsSkewShares)
{
    // Two identical apps; app 0 weighted 3x. Capacity for half the
    // demand: app 0 should get ~3x the allocation.
    auto apps = std::vector<Application>{
        makeApp(0, {1, 1, 1, 1}, {2, 2, 2, 2}),
        makeApp(1, {1, 1, 1, 1}, {2, 2, 2, 2})};
    Planner planner;
    WeightedFairObjective objective({3.0, 1.0});
    const GlobalRank rank = planner.plan(apps, objective, 8.0);
    double usage0 = 0.0;
    double usage1 = 0.0;
    for (const auto &pod : rank) {
        if (pod.app == 0)
            usage0 += 2.0;
        else
            usage1 += 2.0;
    }
    EXPECT_NEAR(usage0, 6.0, 1e-9);
    EXPECT_NEAR(usage1, 2.0, 1e-9);
}

TEST(WeightedFair, UnitWeightsMatchPlainFair)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 1}, {2, 2}), makeApp(1, {1, 1}, {2, 2})};
    Planner planner;
    WeightedFairObjective weighted({1.0, 1.0});
    FairObjective plain;
    const GlobalRank a = planner.plan(apps, weighted, 4.0);
    const GlobalRank b = planner.plan(apps, plain, 4.0);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}
