/**
 * @file
 * Unit and property tests for the in-tree LP/MILP solver
 * (lp/simplex.h, lp/branch_bound.h, lp/waterfill.h).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "lp/branch_bound.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "lp/waterfill.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace phoenix::lp;

namespace {

Solution
solveLp(const Model &model)
{
    SimplexSolver solver(model);
    return solver.solve();
}

} // namespace

TEST(Simplex, SimpleMaximization)
{
    // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0
    Model m;
    VarId x = m.addVar(0, kInfinity, "x");
    VarId y = m.addVar(0, kInfinity, "y");
    m.addConstraint({{x, 1}, {y, 1}}, Relation::LessEq, 4);
    m.addConstraint({{x, 1}, {y, 3}}, Relation::LessEq, 6);
    m.setObjective({{x, 3}, {y, 2}}, true);

    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 12.0, 1e-6); // x=4, y=0
    EXPECT_NEAR(s.values[x], 4.0, 1e-6);
    EXPECT_NEAR(s.values[y], 0.0, 1e-6);
}

TEST(Simplex, Minimization)
{
    // min x + y s.t. x + 2y >= 4, 3x + y >= 6
    Model m;
    VarId x = m.addVar(0, kInfinity);
    VarId y = m.addVar(0, kInfinity);
    m.addConstraint({{x, 1}, {y, 2}}, Relation::GreaterEq, 4);
    m.addConstraint({{x, 3}, {y, 1}}, Relation::GreaterEq, 6);
    m.setObjective({{x, 1}, {y, 1}}, false);

    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    // Intersection at x = 8/5, y = 6/5, objective 14/5.
    EXPECT_NEAR(s.objective, 14.0 / 5.0, 1e-6);
}

TEST(Simplex, EqualityConstraint)
{
    // max x + 4y s.t. x + y = 3, 0 <= x, y <= 2
    Model m;
    VarId x = m.addVar(0, 2);
    VarId y = m.addVar(0, 2);
    m.addConstraint({{x, 1}, {y, 1}}, Relation::Equal, 3);
    m.setObjective({{x, 1}, {y, 4}}, true);

    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.values[y], 2.0, 1e-6);
    EXPECT_NEAR(s.values[x], 1.0, 1e-6);
    EXPECT_NEAR(s.objective, 9.0, 1e-6);
}

TEST(Simplex, UpperBoundsRequireBoundFlips)
{
    // max sum x_i with x_i <= 1 and a single coupling constraint.
    Model m;
    LinExpr obj, cap;
    for (int i = 0; i < 10; ++i) {
        VarId v = m.addVar(0, 1);
        obj.push_back({v, 1.0});
        cap.push_back({v, 1.0});
    }
    m.addConstraint(cap, Relation::LessEq, 7.5);
    m.setObjective(obj, true);

    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 7.5, 1e-6);
}

TEST(Simplex, Infeasible)
{
    Model m;
    VarId x = m.addVar(0, 1);
    m.addConstraint({{x, 1}}, Relation::GreaterEq, 2);
    m.setObjective({{x, 1}}, true);

    const Solution s = solveLp(m);
    EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(Simplex, InfeasibleEqualitySystem)
{
    Model m;
    VarId x = m.addVar(0, 10);
    VarId y = m.addVar(0, 10);
    m.addConstraint({{x, 1}, {y, 1}}, Relation::Equal, 5);
    m.addConstraint({{x, 1}, {y, 1}}, Relation::Equal, 7);
    m.setObjective({{x, 1}}, true);

    const Solution s = solveLp(m);
    EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(Simplex, Unbounded)
{
    Model m;
    VarId x = m.addVar(0, kInfinity);
    m.setObjective({{x, 1}}, true);
    m.addConstraint({{x, -1}}, Relation::LessEq, 0); // -x <= 0, no cap

    const Solution s = solveLp(m);
    EXPECT_EQ(s.status, SolveStatus::Unbounded);
}

TEST(Simplex, NegativeLowerBounds)
{
    // min x + y with x in [-5, 5], y in [-3, 3], x + y >= -4.
    Model m;
    VarId x = m.addVar(-5, 5);
    VarId y = m.addVar(-3, 3);
    m.addConstraint({{x, 1}, {y, 1}}, Relation::GreaterEq, -4);
    m.setObjective({{x, 1}, {y, 1}}, false);

    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, -4.0, 1e-6);
}

TEST(Simplex, DegenerateProblem)
{
    // Multiple redundant constraints through the optimum.
    Model m;
    VarId x = m.addVar(0, kInfinity);
    VarId y = m.addVar(0, kInfinity);
    m.addConstraint({{x, 1}, {y, 1}}, Relation::LessEq, 2);
    m.addConstraint({{x, 2}, {y, 2}}, Relation::LessEq, 4);
    m.addConstraint({{x, 1}}, Relation::LessEq, 2);
    m.addConstraint({{y, 1}}, Relation::LessEq, 2);
    m.setObjective({{x, 1}, {y, 1}}, true);

    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 2.0, 1e-6);
}

TEST(Simplex, SolutionSatisfiesModel)
{
    Model m;
    VarId a = m.addVar(0, 4);
    VarId b = m.addVar(1, 6);
    VarId c = m.addVar(0, 3);
    m.addConstraint({{a, 2}, {b, 1}, {c, 3}}, Relation::LessEq, 14);
    m.addConstraint({{a, 1}, {b, 2}}, Relation::GreaterEq, 4);
    m.addConstraint({{b, 1}, {c, 1}}, Relation::Equal, 5);
    m.setObjective({{a, 5}, {b, 4}, {c, 3}}, true);

    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_TRUE(m.isFeasible(s.values, false));
}

TEST(Milp, Knapsack)
{
    // Classic 0/1 knapsack: values 60,100,120 weights 10,20,30 cap 50.
    Model m;
    VarId a = m.addBinaryVar();
    VarId b = m.addBinaryVar();
    VarId c = m.addBinaryVar();
    m.addConstraint({{a, 10}, {b, 20}, {c, 30}}, Relation::LessEq, 50);
    m.setObjective({{a, 60}, {b, 100}, {c, 120}}, true);

    const Solution s = solveMilp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 220.0, 1e-6);
    EXPECT_NEAR(s.values[a], 0.0, 1e-6);
}

TEST(Milp, IntegerRounding)
{
    // max x s.t. 2x <= 7, x integer -> x = 3 (LP gives 3.5).
    Model m;
    VarId x = m.addIntVar(0, 100);
    m.addConstraint({{x, 2}}, Relation::LessEq, 7);
    m.setObjective({{x, 1}}, true);

    const Solution s = solveMilp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 3.0, 1e-6);
}

TEST(Milp, InfeasibleInteger)
{
    // 0.4 <= x <= 0.6 with x integer has no solution.
    Model m;
    VarId x = m.addVar(0, 1);
    // Mark integer by using a binary and constraining fractionally.
    Model m2;
    VarId y = m2.addBinaryVar();
    m2.addConstraint({{y, 1}}, Relation::GreaterEq, 0.4);
    m2.addConstraint({{y, 1}}, Relation::LessEq, 0.6);
    m2.setObjective({{y, 1}}, true);
    (void)x;

    const Solution s = solveMilp(m2);
    EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(Milp, MixedIntegerContinuous)
{
    // max 2x + 3y, x integer in [0,4], y continuous in [0, 2.5],
    // x + y <= 5.2
    Model m;
    VarId x = m.addIntVar(0, 4);
    VarId y = m.addVar(0, 2.5);
    m.addConstraint({{x, 1}, {y, 1}}, Relation::LessEq, 5.2);
    m.setObjective({{x, 2}, {y, 3}}, true);

    const Solution s = solveMilp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    // y at its bound 2.5, x = floor(5.2 - 2.5) = 2 -> wait, x can be
    // up to 2.7 -> 2; obj = 4 + 7.5 = 11.5. Alternative x=3, y=2.2:
    // obj = 6 + 6.6 = 12.6 (better). x=4, y=1.2: 8+3.6=11.6.
    EXPECT_NEAR(s.objective, 12.6, 1e-6);
}

/** Brute-force reference for small binary programs. */
namespace {

double
bruteForceBest(const Model &m)
{
    const size_t n = m.varCount();
    double best = -std::numeric_limits<double>::infinity();
    std::vector<double> point(n, 0.0);
    for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
        for (size_t j = 0; j < n; ++j)
            point[j] = (mask >> j) & 1 ? 1.0 : 0.0;
        if (!m.isFeasible(point, true))
            continue;
        const double value = m.objectiveValue(point);
        const double signed_value = m.maximize() ? value : -value;
        if (signed_value > best)
            best = signed_value;
    }
    return m.maximize() ? best : -best;
}

} // namespace

class MilpRandomized : public ::testing::TestWithParam<int>
{
};

TEST_P(MilpRandomized, MatchesBruteForce)
{
    phoenix::util::Rng rng(GetParam() * 7919 + 13);
    const int n = static_cast<int>(rng.uniformInt(3, 10));
    const int rows = static_cast<int>(rng.uniformInt(1, 5));

    Model m;
    LinExpr obj;
    for (int j = 0; j < n; ++j) {
        VarId v = m.addBinaryVar();
        obj.push_back({v, std::round(rng.uniform(-10, 20))});
    }
    for (int r = 0; r < rows; ++r) {
        LinExpr expr;
        double weight_sum = 0.0;
        for (int j = 0; j < n; ++j) {
            if (rng.bernoulli(0.7)) {
                const double w = std::round(rng.uniform(1, 9));
                expr.push_back({j, w});
                weight_sum += w;
            }
        }
        if (expr.empty())
            continue;
        const Relation rel =
            rng.bernoulli(0.7) ? Relation::LessEq : Relation::GreaterEq;
        const double rhs = std::round(rng.uniform(0, weight_sum));
        m.addConstraint(expr, rel, rhs);
    }
    m.setObjective(obj, true);

    const double expected = bruteForceBest(m);
    const Solution s = solveMilp(m);
    if (!std::isfinite(expected)) {
        EXPECT_EQ(s.status, SolveStatus::Infeasible);
    } else {
        ASSERT_TRUE(s.hasSolution())
            << "solver failed on seed " << GetParam();
        EXPECT_NEAR(s.objective, expected, 1e-5)
            << "seed " << GetParam();
        EXPECT_TRUE(m.isFeasible(s.values, true));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpRandomized, ::testing::Range(0, 40));

class LpRandomFeasibility : public ::testing::TestWithParam<int>
{
};

TEST_P(LpRandomFeasibility, OptimaAreFeasibleAndBeatInteriorPoints)
{
    phoenix::util::Rng rng(GetParam() * 104729 + 7);
    const int n = static_cast<int>(rng.uniformInt(2, 12));
    const int rows = static_cast<int>(rng.uniformInt(1, 8));

    Model m;
    LinExpr obj;
    for (int j = 0; j < n; ++j) {
        VarId v = m.addVar(0, rng.uniform(0.5, 10));
        obj.push_back({v, rng.uniform(-5, 10)});
    }
    for (int r = 0; r < rows; ++r) {
        LinExpr expr;
        for (int j = 0; j < n; ++j) {
            if (rng.bernoulli(0.6))
                expr.push_back({j, rng.uniform(0.1, 5)});
        }
        if (expr.empty())
            continue;
        m.addConstraint(expr, Relation::LessEq, rng.uniform(1, 30));
    }
    m.setObjective(obj, true);

    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_TRUE(m.isFeasible(s.values, false));

    // The origin is always feasible here; optimum must be >= 0 ... and
    // >= the objective at any random feasible point we can construct by
    // scaling the optimum down.
    EXPECT_GE(s.objective, -1e-9);
    std::vector<double> scaled = s.values;
    for (auto &v : scaled)
        v *= 0.5;
    EXPECT_GE(s.objective, m.objectiveValue(scaled) - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomFeasibility,
                         ::testing::Range(0, 25));

TEST(WaterFill, EqualSplitWhenDemandsExceedShare)
{
    const auto share = waterFill({50, 50, 50}, 90);
    ASSERT_EQ(share.size(), 3u);
    EXPECT_NEAR(share[0], 30, 1e-9);
    EXPECT_NEAR(share[1], 30, 1e-9);
    EXPECT_NEAR(share[2], 30, 1e-9);
}

TEST(WaterFill, ExcessRedistributed)
{
    // Paper's example shape: demands 10, 50, 90 with 100 units.
    const auto share = waterFill({10, 50, 90}, 100);
    EXPECT_NEAR(share[0], 10, 1e-9);
    EXPECT_NEAR(share[1], 45, 1e-9);
    EXPECT_NEAR(share[2], 45, 1e-9);
}

TEST(WaterFill, CapacityExceedsDemand)
{
    const auto share = waterFill({5, 10, 15}, 100);
    EXPECT_NEAR(share[0], 5, 1e-9);
    EXPECT_NEAR(share[1], 10, 1e-9);
    EXPECT_NEAR(share[2], 15, 1e-9);
}

TEST(WaterFill, EmptyAndZero)
{
    EXPECT_TRUE(waterFill({}, 10).empty());
    const auto zero = waterFill({5, 5}, 0);
    EXPECT_NEAR(zero[0], 0, 1e-9);
    EXPECT_NEAR(zero[1], 0, 1e-9);
}

class WaterFillProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(WaterFillProperty, SharesAreMaxMinFair)
{
    phoenix::util::Rng rng(GetParam() * 31 + 1);
    const int n = static_cast<int>(rng.uniformInt(1, 20));
    std::vector<double> demands;
    for (int i = 0; i < n; ++i)
        demands.push_back(rng.uniform(0, 100));
    const double capacity = rng.uniform(0, 150.0 * n / 2);

    const auto share = waterFill(demands, capacity);
    double total = 0.0;
    double min_unsat = std::numeric_limits<double>::infinity();
    double max_unsat = 0.0;
    for (int i = 0; i < n; ++i) {
        EXPECT_GE(share[i], -1e-9);
        EXPECT_LE(share[i], demands[i] + 1e-9);
        total += share[i];
        if (share[i] < demands[i] - 1e-6) {
            min_unsat = std::min(min_unsat, share[i]);
            max_unsat = std::max(max_unsat, share[i]);
        }
    }
    const double expected_total =
        std::min(capacity, phoenix::util::sum(demands));
    EXPECT_NEAR(total, expected_total, 1e-6);
    // Max-min property: all unsaturated applications sit at the same
    // water level.
    if (std::isfinite(min_unsat)) {
        EXPECT_NEAR(min_unsat, max_unsat, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterFillProperty, ::testing::Range(0, 30));
