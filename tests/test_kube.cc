/**
 * @file
 * Tests for the mini-Kubernetes substrate: pod lifecycle, default
 * scheduler behaviour, kubelet-failure detection via missed heartbeats,
 * and the agent verbs (delete / migrate / restart).
 */

#include <gtest/gtest.h>

#include "kube/kube.h"

using namespace phoenix;
using namespace phoenix::kube;
using sim::PodRef;

namespace {

sim::Application
simpleApp(size_t services, double cpu)
{
    sim::Application app;
    app.name = "app";
    app.services.resize(services);
    for (sim::MsId m = 0; m < services; ++m) {
        app.services[m].id = m;
        app.services[m].cpu = cpu;
        app.services[m].criticality = 1;
    }
    return app;
}

} // namespace

TEST(Kube, PodsScheduleAndStart)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    cluster.addNode(8.0);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(3, 2.0));

    events.runUntil(5.0);
    // Scheduler has bound the pods; they are Starting, not Running.
    EXPECT_EQ(cluster.runningPods().size(), 0u);
    events.runUntil(120.0);
    EXPECT_EQ(cluster.runningPods().size(), 3u);
    EXPECT_EQ(cluster.pendingCount(), 0u);
}

TEST(Kube, SpreadPlacementBalancesNodes)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    cluster.addNode(8.0);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(4, 2.0));
    events.runUntil(120.0);

    const auto state = cluster.observedState();
    EXPECT_NEAR(state.used(0), 4.0, 1e-9);
    EXPECT_NEAR(state.used(1), 4.0, 1e-9);
}

TEST(Kube, OverCommittedPodsStayPending)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    cluster.addNode(4.0);
    cluster.addApplication(simpleApp(3, 2.0));
    events.runUntil(120.0);
    EXPECT_EQ(cluster.runningPods().size(), 2u);
    EXPECT_EQ(cluster.pendingCount(), 1u);
}

TEST(Kube, KubeletStopTriggersNotReadyAfterGrace)
{
    sim::EventQueue events;
    KubeConfig config;
    config.nodeGracePeriod = 100.0;
    KubeCluster cluster(events, config);
    const auto n0 = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 2.0));
    events.runUntil(120.0);
    ASSERT_EQ(cluster.runningPods().size(), 2u);

    cluster.stopKubelet(n0);
    const double t_stop = events.now();
    events.runUntil(t_stop + 50.0);
    EXPECT_TRUE(cluster.isReady(n0)); // within grace

    events.runUntil(t_stop + 130.0);
    EXPECT_FALSE(cluster.isReady(n0));
    EXPECT_NEAR(cluster.readyCapacity(), 0.0, 1e-9);
    // Pods evicted back to Pending, nowhere to go.
    EXPECT_EQ(cluster.runningPods().size(), 0u);
    EXPECT_EQ(cluster.pendingCount(), 2u);
}

TEST(Kube, KubeletRestartRecoversNodeAndPods)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    const auto n0 = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 2.0));
    events.runUntil(120.0);

    cluster.stopKubelet(n0);
    events.runUntil(events.now() + 150.0);
    ASSERT_FALSE(cluster.isReady(n0));

    cluster.startKubelet(n0);
    events.runUntil(events.now() + 30.0);
    EXPECT_TRUE(cluster.isReady(n0));
    // Default scheduler re-places and pods restart.
    events.runUntil(events.now() + 120.0);
    EXPECT_EQ(cluster.runningPods().size(), 2u);
}

TEST(Kube, DeleteDrainsGracefully)
{
    sim::EventQueue events;
    KubeConfig config;
    config.podTerminationSeconds = 10.0;
    KubeCluster cluster(events, config);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 2.0));
    events.runUntil(120.0);

    const PodRef ref{0, 1};
    cluster.deletePod(ref);
    EXPECT_EQ(cluster.pod(ref)->phase, PodPhase::Terminating);
    // Still occupying capacity during drain.
    EXPECT_NEAR(cluster.observedState().used(0), 4.0, 1e-9);

    events.runUntil(events.now() + 15.0);
    EXPECT_NE(cluster.pod(ref)->phase, PodPhase::Terminating);
    EXPECT_NEAR(cluster.observedState().used(0), 2.0, 1e-9);
    // Scaled down: the scheduler must not bring it back.
    events.runUntil(events.now() + 60.0);
    EXPECT_EQ(cluster.runningPods().count(ref), 0u);
}

TEST(Kube, StartPodAfterDeleteRevives)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(1, 2.0));
    events.runUntil(120.0);

    cluster.deletePod(PodRef{0, 0});
    events.runUntil(events.now() + 30.0);
    ASSERT_EQ(cluster.runningPods().size(), 0u);

    cluster.startPod(PodRef{0, 0});
    events.runUntil(events.now() + 120.0);
    EXPECT_EQ(cluster.runningPods().size(), 1u);
}

TEST(Kube, PinnedPlacementHonoursTarget)
{
    sim::EventQueue events;
    KubeConfig config;
    config.enableDefaultScheduler = false; // only pinned placement
    KubeCluster cluster(events, config);
    cluster.addNode(8.0);
    const auto n1 = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(1, 2.0));
    events.runUntil(60.0);
    EXPECT_EQ(cluster.runningPods().size(), 0u); // nothing schedules

    cluster.startPod(PodRef{0, 0}, n1);
    events.runUntil(events.now() + 120.0);
    ASSERT_EQ(cluster.runningPods().size(), 1u);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->node, n1);
}

TEST(Kube, MigrationMovesRunningPodWithoutDowntime)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    cluster.addNode(8.0);
    const auto n1 = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(1, 2.0));
    events.runUntil(120.0);
    const auto from = cluster.pod(PodRef{0, 0})->node;

    cluster.migratePod(PodRef{0, 0}, from == n1 ? 0 : n1);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->phase, PodPhase::Running);
    EXPECT_NE(cluster.pod(PodRef{0, 0})->node, from);
}

// ---- migratePod regressions (target validation + startup clock) ----

namespace {

/** Config with the invariant checker on regardless of build type. */
KubeConfig
checkedConfig()
{
    KubeConfig config;
    config.validateInvariants = true;
    return config;
}

} // namespace

TEST(Kube, MigrateToFullNodeIsRejected)
{
    sim::EventQueue events;
    KubeCluster cluster(events, checkedConfig());
    const auto n0 = cluster.addNode(8.0);
    const auto n1 = cluster.addNode(4.0);
    // 6 CPU lands on n0 (spread prefers the bigger node), 3 CPU on n1.
    sim::Application app = simpleApp(2, 0.0);
    app.services[0].cpu = 6.0;
    app.services[1].cpu = 3.0;
    cluster.addApplication(app);
    events.runUntil(120.0);
    ASSERT_EQ(cluster.pod(PodRef{0, 0})->node, n0);
    ASSERT_EQ(cluster.pod(PodRef{0, 1})->node, n1);

    // n1 has 1 CPU free: moving the 6-CPU pod there must be refused,
    // not silently overcommit the node.
    cluster.migratePod(PodRef{0, 0}, n1);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->node, n0);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->phase, PodPhase::Running);
    EXPECT_LE(cluster.observedState().used(n1), 4.0 + 1e-9);
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

TEST(Kube, MigrateToNotReadyNodeIsRejected)
{
    sim::EventQueue events;
    KubeCluster cluster(events, checkedConfig());
    const auto n0 = cluster.addNode(8.0);
    const auto n1 = cluster.addNode(8.0);
    sim::Application app = simpleApp(1, 2.0);
    cluster.addApplication(app);
    events.runUntil(120.0);
    const auto home = cluster.pod(PodRef{0, 0})->node;
    const auto other = home == n0 ? n1 : n0;

    cluster.stopKubelet(other);
    events.runUntil(events.now() + 150.0); // grace expires
    ASSERT_FALSE(cluster.isReady(other));

    cluster.migratePod(PodRef{0, 0}, other);
    // The pod must not land on a NotReady node; the pin is kept so a
    // later replan (or the node coming back) can honour it.
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->node, home);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->phase, PodPhase::Running);
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

TEST(Kube, MigrateWhileStartingRestartsTheClock)
{
    sim::EventQueue events;
    KubeConfig config = checkedConfig();
    config.podStartupMin = 20.0;
    config.podStartupMax = 20.0; // deterministic startup
    config.enableDefaultScheduler = false;
    KubeCluster cluster(events, config);
    const auto n0 = cluster.addNode(8.0);
    const auto n1 = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(1, 2.0));

    events.runUntil(1.0);
    cluster.startPod(PodRef{0, 0}, n0); // binds at the t=5 tick
    events.runUntil(12.0);
    ASSERT_EQ(cluster.pod(PodRef{0, 0})->phase, PodPhase::Starting);

    // Mid-startup move: the old start-completion timer (armed for
    // t=25) must not finish the pod on the new node for free.
    cluster.migratePod(PodRef{0, 0}, n1);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->node, n1);
    events.runUntil(27.0);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->phase, PodPhase::Starting);
    // The restarted clock (t=12+20=32) completes on the target.
    events.runUntil(40.0);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->phase, PodPhase::Running);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->node, n1);
    // Capacity was never double-counted across the two nodes.
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

// ---- evictPodsOn regression (graceful drain survives a failure) ----

TEST(Kube, DeleteThenNodeFailureKeepsTheDrain)
{
    sim::EventQueue events;
    KubeConfig config = checkedConfig();
    config.nodeGracePeriod = 50.0;
    config.podTerminationSeconds = 200.0; // drain outlives the grace
    KubeCluster cluster(events, config);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 2.0));
    events.runUntil(120.0);
    ASSERT_EQ(cluster.runningPods().size(), 2u);

    const PodRef victim{0, 0};
    cluster.deletePod(victim);
    ASSERT_EQ(cluster.pod(victim)->phase, PodPhase::Terminating);
    const double drain_done = events.now() + 200.0;

    // Node fails mid-drain; the eviction sweep lands ~50-60 s later.
    cluster.stopKubelet(0);
    events.runUntil(events.now() + 80.0);
    ASSERT_EQ(cluster.evictionEpisodes(0), 1u);
    // The Running pod was evicted to Pending; the Terminating pod is
    // still draining — eviction must not cut the drain short.
    EXPECT_EQ(cluster.pod(PodRef{0, 1})->phase, PodPhase::Pending);
    EXPECT_EQ(cluster.pod(victim)->phase, PodPhase::Terminating);

    // The drain completes on schedule and, being scaled down, the pod
    // parks in Pending without rescheduling.
    events.runUntil(drain_done + 10.0);
    EXPECT_EQ(cluster.pod(victim)->phase, PodPhase::Pending);
    EXPECT_TRUE(cluster.pod(victim)->scaledDown);
    events.runUntil(events.now() + 60.0);
    EXPECT_EQ(cluster.runningPods().count(victim), 0u);
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

TEST(Kube, ObservedStateReflectsFailuresAndPlacement)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    const auto n0 = cluster.addNode(8.0);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 3.0));
    events.runUntil(120.0);

    cluster.stopKubelet(n0);
    events.runUntil(events.now() + 150.0);

    const auto state = cluster.observedState();
    EXPECT_FALSE(state.isHealthy(n0));
    EXPECT_TRUE(state.isHealthy(1));
    EXPECT_NEAR(state.healthyCapacity(), 8.0, 1e-9);
    for (const auto &[pod, node] : state.assignment()) {
        (void)pod;
        EXPECT_EQ(node, 1u);
    }
}

// ---------------------------------------------------------------------
// NotReady boundary + extended fault taxonomy semantics.
// ---------------------------------------------------------------------

TEST(Kube, HeartbeatAgeExactlyAtGraceStaysReady)
{
    // Satellite regression: a heartbeat whose age is *exactly*
    // nodeGracePeriod must still count as fresh (<=, not <). With the
    // kubelet stopped right after addNode (last heartbeat at t=0), the
    // controller tick at t=100 computes age == 100 and must keep the
    // node Ready; the tick at t=110 crosses the boundary. A flipped
    // comparison marks the node NotReady one full tick early and this
    // test fails.
    sim::EventQueue events;
    KubeConfig config;
    config.validateInvariants = true;
    KubeCluster cluster(events, config);
    const auto node = cluster.addNode(8.0);
    cluster.stopKubelet(node);

    events.runUntil(105.0);
    EXPECT_TRUE(cluster.isReady(node));
    events.runUntil(115.0);
    EXPECT_FALSE(cluster.isReady(node));
}

TEST(Kube, SkewAtGraceMinusHeartbeatPinsTheBoundary)
{
    // Clock skew of -(grace - heartbeatPeriod) = -90 puts *every* age
    // the controller computes exactly on the boundary: heartbeats land
    // at t and stamp t-90; the next tick at t+10 sees age 100. Under
    // the pinned <= comparison the node stays Ready forever; under the
    // flipped one it permanently flaps NotReady.
    sim::EventQueue events;
    KubeConfig config;
    config.validateInvariants = true;
    KubeCluster cluster(events, config);
    const auto node = cluster.addNode(8.0);
    cluster.setClockSkew(node, -90.0);
    cluster.addApplication(simpleApp(2, 2.0));

    events.runUntil(500.0);
    EXPECT_TRUE(cluster.isReady(node));
    EXPECT_EQ(cluster.runningPods().size(), 2u);
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

TEST(Kube, PartitionSuppressesHeartbeatsUntilHealed)
{
    sim::EventQueue events;
    KubeConfig config;
    config.validateInvariants = true;
    KubeCluster cluster(events, config);
    const auto a = cluster.addNode(8.0);
    const auto b = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 2.0));
    events.runUntil(200.0);
    ASSERT_EQ(cluster.runningPods().size(), 2u);

    // Partition at 200 (last stamped heartbeat 200): ages cross the
    // grace boundary at the t=310 tick (age 110).
    cluster.partitionNode(a);
    events.runUntil(305.0);
    EXPECT_TRUE(cluster.isReady(a));
    events.runUntil(315.0);
    EXPECT_FALSE(cluster.isReady(a));
    EXPECT_TRUE(cluster.isPartitioned(a));
    // The control plane evicted node a's pods; they reschedule onto b.
    events.runUntil(500.0);
    for (const PodRef &pod : cluster.runningPods())
        EXPECT_EQ(cluster.observedState().nodeOf(pod), b);

    // Heal: no artificial heartbeat bump — readiness returns only once
    // the next *natural* heartbeat lands and the controller ticks.
    cluster.healPartition(a);
    EXPECT_FALSE(cluster.isReady(a));
    events.runUntil(530.0);
    EXPECT_TRUE(cluster.isReady(a));
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

TEST(Kube, DegradedNodeShrinksCapacityAndNeverEvicts)
{
    sim::EventQueue events;
    KubeConfig config;
    config.validateInvariants = true;
    KubeCluster cluster(events, config);
    const auto node = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 3.0));
    events.runUntil(120.0);
    ASSERT_EQ(cluster.runningPods().size(), 2u);
    EXPECT_DOUBLE_EQ(cluster.readyCapacity(), 8.0);

    // Degrade to half capacity: schedulable capacity shrinks below
    // current usage, but degradation is slow-not-dead — nothing is
    // evicted.
    cluster.degradeNode(node, 0.5);
    EXPECT_DOUBLE_EQ(cluster.effectiveCapacity(node), 4.0);
    EXPECT_DOUBLE_EQ(cluster.readyCapacity(), 4.0);
    EXPECT_EQ(cluster.runningPods().size(), 2u);

    // No room for new work while degraded.
    cluster.addApplication(simpleApp(1, 1.0));
    events.runUntil(240.0);
    EXPECT_EQ(cluster.pendingCount(), 1u);

    // The observed surface stays representable: a degraded node with
    // pods beyond its effective capacity reports max(effective, used).
    EXPECT_DOUBLE_EQ(cluster.observedState().node(node).capacity, 6.0);

    cluster.degradeNode(node, 1.0);
    events.runUntil(400.0);
    EXPECT_EQ(cluster.pendingCount(), 0u);
    EXPECT_EQ(cluster.runningPods().size(), 3u);
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

TEST(Kube, ApiOutageFreezesObservationWhileClusterEvolves)
{
    sim::EventQueue events;
    KubeConfig config;
    config.validateInvariants = true;
    KubeCluster cluster(events, config);
    cluster.addNode(8.0);
    const auto b = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 2.0));
    events.runUntil(200.0);

    cluster.beginApiOutage();
    const uint64_t frozen = cluster.observedReadyFingerprint();
    cluster.stopKubelet(b);
    events.runUntil(400.0); // well past the grace period

    // Live truth moved; the observed surface did not.
    EXPECT_FALSE(cluster.isReady(b));
    EXPECT_DOUBLE_EQ(cluster.readyCapacity(), 8.0);
    EXPECT_DOUBLE_EQ(cluster.observedReadyCapacity(), 16.0);
    EXPECT_EQ(cluster.observedReadyFingerprint(), frozen);
    EXPECT_TRUE(cluster.observedState().isHealthy(b));
    EXPECT_FALSE(cluster.liveState().isHealthy(b));

    // Thaw: observation converges to live truth immediately.
    cluster.endApiOutage();
    EXPECT_DOUBLE_EQ(cluster.observedReadyCapacity(), 8.0);
    EXPECT_FALSE(cluster.observedState().isHealthy(b));
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

TEST(Kube, PositiveSkewMasksAKubeletDeath)
{
    // Fresh-from-the-future heartbeats: with skew +300 the last
    // heartbeat before the kubelet dies is stamped ~t+300, so the node
    // controller keeps the node Ready long past the real death — the
    // hazard class the chaos soak's clock-skew waves exercise.
    sim::EventQueue events;
    KubeConfig config;
    config.validateInvariants = true;
    KubeCluster cluster(events, config);
    const auto node = cluster.addNode(8.0);
    cluster.setClockSkew(node, 300.0);
    events.runUntil(12.0); // one skewed heartbeat (stamped ~310)
    cluster.stopKubelet(node);

    events.runUntil(400.0);
    EXPECT_TRUE(cluster.isReady(node)); // masked
    events.runUntil(420.0);
    EXPECT_FALSE(cluster.isReady(node)); // finally past 310 + grace
}
