/**
 * @file
 * Tests for the mini-Kubernetes substrate: pod lifecycle, default
 * scheduler behaviour, kubelet-failure detection via missed heartbeats,
 * and the agent verbs (delete / migrate / restart).
 */

#include <gtest/gtest.h>

#include "kube/kube.h"

using namespace phoenix;
using namespace phoenix::kube;
using sim::PodRef;

namespace {

sim::Application
simpleApp(size_t services, double cpu)
{
    sim::Application app;
    app.name = "app";
    app.services.resize(services);
    for (sim::MsId m = 0; m < services; ++m) {
        app.services[m].id = m;
        app.services[m].cpu = cpu;
        app.services[m].criticality = 1;
    }
    return app;
}

} // namespace

TEST(Kube, PodsScheduleAndStart)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    cluster.addNode(8.0);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(3, 2.0));

    events.runUntil(5.0);
    // Scheduler has bound the pods; they are Starting, not Running.
    EXPECT_EQ(cluster.runningPods().size(), 0u);
    events.runUntil(120.0);
    EXPECT_EQ(cluster.runningPods().size(), 3u);
    EXPECT_EQ(cluster.pendingCount(), 0u);
}

TEST(Kube, SpreadPlacementBalancesNodes)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    cluster.addNode(8.0);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(4, 2.0));
    events.runUntil(120.0);

    const auto state = cluster.observedState();
    EXPECT_NEAR(state.used(0), 4.0, 1e-9);
    EXPECT_NEAR(state.used(1), 4.0, 1e-9);
}

TEST(Kube, OverCommittedPodsStayPending)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    cluster.addNode(4.0);
    cluster.addApplication(simpleApp(3, 2.0));
    events.runUntil(120.0);
    EXPECT_EQ(cluster.runningPods().size(), 2u);
    EXPECT_EQ(cluster.pendingCount(), 1u);
}

TEST(Kube, KubeletStopTriggersNotReadyAfterGrace)
{
    sim::EventQueue events;
    KubeConfig config;
    config.nodeGracePeriod = 100.0;
    KubeCluster cluster(events, config);
    const auto n0 = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 2.0));
    events.runUntil(120.0);
    ASSERT_EQ(cluster.runningPods().size(), 2u);

    cluster.stopKubelet(n0);
    const double t_stop = events.now();
    events.runUntil(t_stop + 50.0);
    EXPECT_TRUE(cluster.isReady(n0)); // within grace

    events.runUntil(t_stop + 130.0);
    EXPECT_FALSE(cluster.isReady(n0));
    EXPECT_NEAR(cluster.readyCapacity(), 0.0, 1e-9);
    // Pods evicted back to Pending, nowhere to go.
    EXPECT_EQ(cluster.runningPods().size(), 0u);
    EXPECT_EQ(cluster.pendingCount(), 2u);
}

TEST(Kube, KubeletRestartRecoversNodeAndPods)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    const auto n0 = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 2.0));
    events.runUntil(120.0);

    cluster.stopKubelet(n0);
    events.runUntil(events.now() + 150.0);
    ASSERT_FALSE(cluster.isReady(n0));

    cluster.startKubelet(n0);
    events.runUntil(events.now() + 30.0);
    EXPECT_TRUE(cluster.isReady(n0));
    // Default scheduler re-places and pods restart.
    events.runUntil(events.now() + 120.0);
    EXPECT_EQ(cluster.runningPods().size(), 2u);
}

TEST(Kube, DeleteDrainsGracefully)
{
    sim::EventQueue events;
    KubeConfig config;
    config.podTerminationSeconds = 10.0;
    KubeCluster cluster(events, config);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 2.0));
    events.runUntil(120.0);

    const PodRef ref{0, 1};
    cluster.deletePod(ref);
    EXPECT_EQ(cluster.pod(ref)->phase, PodPhase::Terminating);
    // Still occupying capacity during drain.
    EXPECT_NEAR(cluster.observedState().used(0), 4.0, 1e-9);

    events.runUntil(events.now() + 15.0);
    EXPECT_NE(cluster.pod(ref)->phase, PodPhase::Terminating);
    EXPECT_NEAR(cluster.observedState().used(0), 2.0, 1e-9);
    // Scaled down: the scheduler must not bring it back.
    events.runUntil(events.now() + 60.0);
    EXPECT_EQ(cluster.runningPods().count(ref), 0u);
}

TEST(Kube, StartPodAfterDeleteRevives)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(1, 2.0));
    events.runUntil(120.0);

    cluster.deletePod(PodRef{0, 0});
    events.runUntil(events.now() + 30.0);
    ASSERT_EQ(cluster.runningPods().size(), 0u);

    cluster.startPod(PodRef{0, 0});
    events.runUntil(events.now() + 120.0);
    EXPECT_EQ(cluster.runningPods().size(), 1u);
}

TEST(Kube, PinnedPlacementHonoursTarget)
{
    sim::EventQueue events;
    KubeConfig config;
    config.enableDefaultScheduler = false; // only pinned placement
    KubeCluster cluster(events, config);
    cluster.addNode(8.0);
    const auto n1 = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(1, 2.0));
    events.runUntil(60.0);
    EXPECT_EQ(cluster.runningPods().size(), 0u); // nothing schedules

    cluster.startPod(PodRef{0, 0}, n1);
    events.runUntil(events.now() + 120.0);
    ASSERT_EQ(cluster.runningPods().size(), 1u);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->node, n1);
}

TEST(Kube, MigrationMovesRunningPodWithoutDowntime)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    cluster.addNode(8.0);
    const auto n1 = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(1, 2.0));
    events.runUntil(120.0);
    const auto from = cluster.pod(PodRef{0, 0})->node;

    cluster.migratePod(PodRef{0, 0}, from == n1 ? 0 : n1);
    EXPECT_EQ(cluster.pod(PodRef{0, 0})->phase, PodPhase::Running);
    EXPECT_NE(cluster.pod(PodRef{0, 0})->node, from);
}

TEST(Kube, ObservedStateReflectsFailuresAndPlacement)
{
    sim::EventQueue events;
    KubeCluster cluster(events);
    const auto n0 = cluster.addNode(8.0);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(2, 3.0));
    events.runUntil(120.0);

    cluster.stopKubelet(n0);
    events.runUntil(events.now() + 150.0);

    const auto state = cluster.observedState();
    EXPECT_FALSE(state.isHealthy(n0));
    EXPECT_TRUE(state.isHealthy(1));
    EXPECT_NEAR(state.healthyCapacity(), 8.0, 1e-9);
    for (const auto &[pod, node] : state.assignment()) {
        (void)pod;
        EXPECT_EQ(node, 1u);
    }
}
