/**
 * @file
 * Tests for the src/obs observability subsystem: concurrent registry
 * hammering under the exp pool (the TSan tree exercises this via
 * scripts/sanitize.sh), the LogHistogram sketch-vs-exact quantile
 * error bound, per-thread delta capture, zero-cost-when-disabled
 * behaviour, and trace determinism across pool sizes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "exp/pool.h"
#include "obs/obs.h"
#include "util/stats.h"

using namespace phoenix;
using namespace phoenix::obs;

namespace {

/** Enable metrics + tracing for one test, restoring the disabled
 * default on exit so unrelated tests stay unperturbed. */
struct ObsScope
{
    ObsScope()
    {
        Registry::global().reset();
        Tracer::global().clear();
        setMetricsEnabled(true);
        setTraceEnabled(true);
    }
    ~ObsScope()
    {
        setMetricsEnabled(false);
        setTraceEnabled(false);
        Registry::global().reset();
        Tracer::global().clear();
    }
};

/** Exact nearest-rank percentile: the ceil(q/100 * n)-th smallest. */
double
nearestRank(std::vector<double> sample, double q)
{
    std::sort(sample.begin(), sample.end());
    const double n = static_cast<double>(sample.size());
    size_t rank = static_cast<size_t>(std::ceil(q / 100.0 * n));
    rank = std::clamp<size_t>(rank, 1, sample.size());
    return sample[rank - 1];
}

} // namespace

TEST(Obs, CounterGaugeBasics)
{
    ObsScope scope;
    auto &registry = Registry::global();

    Counter &c = registry.counter("test.basic");
    c.inc();
    c.add(9);
    EXPECT_EQ(c.value(), 10u);
    EXPECT_EQ(&c, &registry.counter("test.basic"));

    Counter &labeled = registry.counter("test.family", "kind", "a");
    labeled.add(3);
    EXPECT_EQ(registry.counter("test.family{kind=a}").value(), 3u);
    EXPECT_EQ(Registry::labeled("f", "k", "v"), "f{k=v}");

    Gauge &g = registry.gauge("test.gauge");
    g.set(4.0);
    g.add(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 5.5);

    registry.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Obs, DisabledMetricsAreNoops)
{
    Registry::global().reset();
    ASSERT_FALSE(metricsEnabled());
    ASSERT_FALSE(traceEnabled());

    Counter &c = Registry::global().counter("test.disabled");
    c.add(5);
    EXPECT_EQ(c.value(), 0u);

    LogHistogram &h = Registry::global().histogram("test.disabled_h");
    h.observe(1.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), util::kNoSample);

    const size_t before = Tracer::global().size();
    Tracer::global().instant("test", "noop", 1.0);
    EXPECT_EQ(Tracer::global().size(), before);
}

// Many pool threads hammering the same counters and histogram: merged
// totals must come out exact regardless of interleaving. This is the
// test the TSan configuration of scripts/sanitize.sh leans on.
TEST(Obs, ConcurrentRegistryHammer)
{
    ObsScope scope;
    auto &registry = Registry::global();
    Counter &hits = registry.counter("hammer.hits");
    Counter &batches = registry.counter("hammer.batches");
    LogHistogram &lat = registry.histogram("hammer.latency");

    constexpr size_t kTasks = 512;
    constexpr uint64_t kPerTask = 200;
    exp::parallelFor(8, kTasks, [&](size_t i) {
        for (uint64_t k = 0; k < kPerTask; ++k) {
            hits.inc();
            lat.observe(1e-3 * static_cast<double>((i + k) % 97 + 1));
        }
        batches.add(1);
    });

    EXPECT_EQ(hits.value(), kTasks * kPerTask);
    EXPECT_EQ(batches.value(), kTasks);
    EXPECT_EQ(lat.count(), kTasks * kPerTask);
    // Every observation was positive and well inside the tracked
    // range, so no underflow and a positive median.
    EXPECT_GT(lat.percentile(50.0), 0.0);
}

TEST(Obs, SketchErrorBound)
{
    ObsScope scope;
    LogHistogram &h = Registry::global().histogram("bound.h");

    // Log-uniform magnitudes across ~9 decades plus heavy duplicates,
    // from a fixed-seed engine mapped by hand (no std distributions,
    // whose outputs vary across standard libraries).
    std::mt19937_64 rng(20260806);
    std::vector<double> sample;
    for (int i = 0; i < 20000; ++i) {
        const double u =
            static_cast<double>(rng() >> 11) / 9007199254740992.0;
        const double v = std::exp(std::log(1e-6) +
                                  u * (std::log(5e3) - std::log(1e-6)));
        sample.push_back(v);
        h.observe(v);
    }

    for (double q : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
        const double exact = nearestRank(sample, q);
        const double approx = h.percentile(q);
        ASSERT_GT(exact, 0.0);
        EXPECT_LE(std::abs(approx - exact),
                  LogHistogram::kRelativeErrorBound * exact)
            << "q=" << q << " exact=" << exact << " approx=" << approx;
    }

    // The same bound holds pointwise for the bucket mapping itself.
    for (double v :
         {1e-6, 3.7e-4, 0.02, 1.0, 17.5, 999.0, 5e3, 1.7e9}) {
        const double mid =
            LogHistogram::bucketMidpoint(LogHistogram::bucketIndex(v));
        EXPECT_LE(std::abs(mid - v),
                  LogHistogram::kRelativeErrorBound * v)
            << "v=" << v << " mid=" << mid;
    }
}

TEST(Obs, SketchUnderflowAndClamps)
{
    ObsScope scope;
    LogHistogram &h = Registry::global().histogram("under.h");

    EXPECT_DOUBLE_EQ(h.percentile(50.0), util::kNoSample);

    h.observe(0.0);
    h.observe(-3.5);
    h.observe(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 3u);
    // All-underflow populations report the underflow representative 0.
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);

    // q clamps to [0, 100].
    h.observe(2.0);
    EXPECT_DOUBLE_EQ(h.percentile(-40.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(400.0), h.percentile(100.0));
}

TEST(Obs, ThreadMetricDeltaNonzeroOnly)
{
    ObsScope scope;
    auto &registry = Registry::global();
    Counter &mine = registry.counter("delta.mine");
    Counter &untouched = registry.counter("delta.untouched");
    LogHistogram &h = registry.histogram("delta.h");
    mine.add(7); // pre-existing count the delta must exclude
    untouched.add(2);

    ThreadMetricDelta delta;
    mine.add(5);
    h.observe(1.0);
    h.observe(2.0);
    const auto out = delta.finish();

    // Only metrics this thread touched inside the window appear, so
    // the key set is deterministic across pool schedules.
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].first, "delta.h.count");
    EXPECT_DOUBLE_EQ(out[0].second, 2.0);
    EXPECT_EQ(out[1].first, "delta.mine");
    EXPECT_DOUBLE_EQ(out[1].second, 5.0);
}

TEST(Obs, TraceRingDropsNewestAndCounts)
{
    ObsScope scope;
    Tracer &tracer = Tracer::global();
    tracer.clear();
    tracer.setTrackCapacity(4);
    setCurrentTrack(0);
    for (int i = 0; i < 10; ++i)
        tracer.instant("test", "tick", static_cast<double>(i));
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);

    // Retained events are the *earliest* ones: the export carries ts
    // 0..3 (microseconds 0..3e6) but not ts 4.
    std::ostringstream os;
    tracer.exportChromeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"ts\":3000000"), std::string::npos);
    EXPECT_EQ(json.find("\"ts\":4000000"), std::string::npos);
    tracer.clear();
    tracer.setTrackCapacity(size_t{1} << 15);
}

TEST(Obs, ExportChromeJsonShape)
{
    ObsScope scope;
    Tracer &tracer = Tracer::global();
    setCurrentTrack(3);
    tracer.nameTrack(3, "cell/three");
    tracer.complete("cat", "span", 1.0, 0.5,
                    TraceArg{"weight", 2.25});
    tracer.instant("cat", "mark", 1.25);
    tracer.asyncBegin("cat", "flow", 42, 1.0);
    tracer.asyncEnd("cat", "flow", 42, 2.0);

    std::ostringstream os;
    tracer.exportChromeJson(os);
    const std::string json = os.str();
    EXPECT_EQ(
        json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
        0u);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"thread_name\""),
              std::string::npos);
    EXPECT_NE(json.find("cell/three"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);
    // Canonical export excludes wall time entirely.
    EXPECT_EQ(json.find("wall_s"), std::string::npos);
    EXPECT_EQ(json, tracer.canonicalString());
}

// The acceptance property, in miniature: identical per-track sim-time
// events recorded under different pool sizes must export byte-equal.
TEST(Obs, TraceDeterministicAcrossJobs)
{
    ObsScope scope;
    Tracer &tracer = Tracer::global();

    constexpr size_t kCells = 24;
    auto runSweep = [&](int jobs) {
        tracer.clear();
        exp::parallelFor(jobs, kCells, [&](size_t i) {
            setCurrentTrack(static_cast<uint32_t>(i));
            tracer.nameTrack(static_cast<uint32_t>(i),
                             "cell-" + std::to_string(i));
            const double base = static_cast<double>(i);
            tracer.asyncBegin("sweep", "cell", i, base);
            for (int k = 0; k < 8; ++k) {
                tracer.instant(
                    "sweep", "step", base + 0.1 * k,
                    TraceArg{"k", static_cast<double>(k)});
            }
            tracer.complete("sweep", "work", base + 0.2, 0.35,
                            TraceArg{"cell",
                                     static_cast<double>(i)});
            tracer.asyncEnd("sweep", "cell", i, base + 1.0);
        });
        return tracer.canonicalString();
    };

    const std::string serial = runSweep(1);
    const std::string par4 = runSweep(4);
    const std::string par16 = runSweep(16);
    EXPECT_EQ(serial, par4);
    EXPECT_EQ(serial, par16);
    EXPECT_GT(serial.size(), 2u);
}
