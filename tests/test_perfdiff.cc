/**
 * @file
 * Unit tests for the perfdiff core (tools/perfdiff_lib): report JSON
 * parsing into cells, per-cell speedup math, worst-cell tracking, and
 * the --require-speedup CLI exit semantics (0 pass / 1 miss / 2 usage
 * or input error).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "perfdiff_lib.h"

using namespace phoenix;
using tools::PerfDiffResult;
using util::JsonValue;

namespace {

/** A minimal exp::Report document with one section and two cells. */
std::string
report(double plan_a, double pack_a, double plan_b, double pack_b,
       double pushes = 100.0, double child_sort = 0.0)
{
    std::ostringstream os;
    os << "{\"sections\": [{\"name\": \"sweep\", \"sweep\": ["
       << "{\"scheme\": \"PhoenixCost\", \"failure_rate\": 0.1, "
       << "\"plan_seconds\": {\"mean\": " << plan_a << "}, "
       << "\"pack_seconds\": {\"mean\": " << pack_a << "}, "
       << "\"ops_heap_pushes\": {\"mean\": " << pushes << "}, "
       << "\"ops_best_fit_probes\": {\"mean\": 50}, "
       << "\"ops_child_sort_elems\": {\"mean\": " << child_sort
       << "}},"
       << "{\"scheme\": \"PhoenixFair\", \"failure_rate\": 0.5, "
       << "\"plan_seconds\": {\"mean\": " << plan_b << "}, "
       << "\"pack_seconds\": {\"mean\": " << pack_b << "}, "
       << "\"ops_heap_pushes\": {\"mean\": " << pushes << "}, "
       << "\"ops_best_fit_probes\": {\"mean\": 50}, "
       << "\"ops_child_sort_elems\": {\"mean\": " << child_sort
       << "}}]}]}";
    return os.str();
}

JsonValue
parsed(const std::string &text)
{
    JsonValue value;
    EXPECT_TRUE(util::parseJson(text, value));
    return value;
}

/** RAII temp file under the build tree's cwd. */
class TempFile
{
  public:
    TempFile(const std::string &name, const std::string &content)
        : path_("perfdiff_test_" + name)
    {
        std::ofstream out(path_);
        out << content;
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(PerfDiff, CollectsCellsKeyedBySectionSchemeRate)
{
    const JsonValue root = parsed(report(0.2, 0.1, 0.4, 0.2));
    const auto cells = tools::collectPerfCells(root);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].first, "sweep/PhoenixCost@0.1");
    EXPECT_EQ(cells[1].first, "sweep/PhoenixFair@0.5");
    EXPECT_DOUBLE_EQ(cells[0].second.planSeconds, 0.2);
    EXPECT_DOUBLE_EQ(cells[0].second.packSeconds, 0.1);
    EXPECT_DOUBLE_EQ(cells[0].second.total(), 0.3);
    EXPECT_DOUBLE_EQ(cells[0].second.heapPushes, 100.0);

    // Malformed shapes degrade to no cells, not a crash.
    EXPECT_TRUE(tools::collectPerfCells(parsed("{}")).empty());
    EXPECT_TRUE(
        tools::collectPerfCells(parsed("{\"sections\": [{}]}")).empty());
}

TEST(PerfDiff, SpeedupIsBaselineOverFreshPerCell)
{
    // Cell 1: 0.3s -> 0.1s = 3x. Cell 2: 0.6s -> 0.3s = 2x.
    const JsonValue baseline = parsed(report(0.2, 0.1, 0.4, 0.2));
    const JsonValue fresh = parsed(report(0.05, 0.05, 0.1, 0.2));
    const PerfDiffResult result =
        tools::diffPerfReports(baseline, fresh);
    ASSERT_EQ(result.rows.size(), 2u);
    EXPECT_NEAR(result.rows[0].speedup, 3.0, 1e-9);
    EXPECT_NEAR(result.rows[1].speedup, 2.0, 1e-9);
    EXPECT_EQ(result.worstCell, "sweep/PhoenixFair@0.5");
    EXPECT_NEAR(result.worstSpeedup, 2.0, 1e-9);
    EXPECT_TRUE(result.met); // no requirement given
}

TEST(PerfDiff, RequirementComparesEverySharedCell)
{
    const JsonValue baseline = parsed(report(0.2, 0.1, 0.4, 0.2));
    const JsonValue fresh = parsed(report(0.05, 0.05, 0.1, 0.2));
    EXPECT_TRUE(tools::diffPerfReports(baseline, fresh, 1.5).met);
    // 2.5x requirement: the 2x cell misses even though the other is 3x.
    EXPECT_FALSE(tools::diffPerfReports(baseline, fresh, 2.5).met);
}

TEST(PerfDiff, OpsRegressionBoundIsMachineIndependent)
{
    // Identical op counters: ratio 1.0, any bound passes (wall time
    // regressed 2x, which the ops bound deliberately ignores).
    const JsonValue baseline = parsed(report(0.1, 0.1, 0.1, 0.1));
    const JsonValue slower = parsed(report(0.2, 0.2, 0.2, 0.2));
    {
        const PerfDiffResult result =
            tools::diffPerfReports(baseline, slower, 0.0, 0.0);
        EXPECT_TRUE(result.opsMet);
        EXPECT_NEAR(result.worstOpsRatio, 1.0, 1e-9);
    }

    // 100+50 -> 130+50 ops = +20%: inside a 25% bound, outside 5%.
    const JsonValue more_ops =
        parsed(report(0.1, 0.1, 0.1, 0.1, 130.0));
    EXPECT_TRUE(
        tools::diffPerfReports(baseline, more_ops, 0.0, 0.25).opsMet);
    {
        const PerfDiffResult result =
            tools::diffPerfReports(baseline, more_ops, 0.0, 0.05);
        EXPECT_FALSE(result.opsMet);
        EXPECT_NEAR(result.worstOpsRatio, 180.0 / 150.0, 1e-9);
    }
    // Negative bound disables the check entirely.
    EXPECT_TRUE(
        tools::diffPerfReports(baseline, more_ops, 0.0, -1.0).opsMet);
}

TEST(PerfDiff, OpsRegressionCliExitCodes)
{
    const TempFile baseline("ops_base.json",
                            report(0.1, 0.1, 0.1, 0.1));
    const TempFile more_ops("ops_new.json",
                            report(0.1, 0.1, 0.1, 0.1, 130.0));
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(tools::runPerfDiff({baseline.path(), more_ops.path(),
                                  "--max-ops-regression", "0.25"},
                                 out, err),
              0);
    EXPECT_NE(out.str().find("ops bound"), std::string::npos);
    EXPECT_NE(out.str().find("PASS"), std::string::npos);
    EXPECT_EQ(tools::runPerfDiff({baseline.path(), more_ops.path(),
                                  "--max-ops-regression", "0.05"},
                                 out, err),
              1);
    EXPECT_NE(out.str().find("FAIL"), std::string::npos);
}

TEST(PerfDiff, DisjointReportsShareNoCells)
{
    const JsonValue baseline = parsed(report(0.2, 0.1, 0.4, 0.2));
    JsonValue other = parsed(
        "{\"sections\": [{\"name\": \"elsewhere\", \"sweep\": ["
        "{\"scheme\": \"PhoenixCost\", \"failure_rate\": 0.1, "
        "\"plan_seconds\": {\"mean\": 1}, "
        "\"pack_seconds\": {\"mean\": 1}}]}]}");
    const PerfDiffResult result =
        tools::diffPerfReports(baseline, other, 2.0);
    EXPECT_TRUE(result.rows.empty());
    EXPECT_TRUE(result.met) << "no shared cells means nothing missed";
    // Fully disjoint reports surface every cell as added or removed.
    ASSERT_EQ(result.added.size(), 1u);
    EXPECT_EQ(result.added[0], "elsewhere/PhoenixCost@0.1");
    ASSERT_EQ(result.removed.size(), 2u);
    EXPECT_EQ(result.removed[0], "sweep/PhoenixCost@0.1");
    EXPECT_EQ(result.removed[1], "sweep/PhoenixFair@0.5");
}

TEST(PerfDiff, AddedAndRemovedCellsAreReportedNotFatal)
{
    // Baseline has cells A+B; fresh has B+C: A removed, C added, B
    // shared. A grown bench (new sizes/schemes) must diff cleanly
    // against an older baseline.
    const JsonValue baseline = parsed(report(0.2, 0.1, 0.4, 0.2));
    JsonValue fresh = parsed(
        "{\"sections\": [{\"name\": \"sweep\", \"sweep\": ["
        "{\"scheme\": \"PhoenixFair\", \"failure_rate\": 0.5, "
        "\"plan_seconds\": {\"mean\": 0.1}, "
        "\"pack_seconds\": {\"mean\": 0.1}, "
        "\"ops_heap_pushes\": {\"mean\": 100}, "
        "\"ops_best_fit_probes\": {\"mean\": 50}, "
        "\"ops_child_sort_elems\": {\"mean\": 0}},"
        "{\"scheme\": \"PhoenixFair-sharded\", \"failure_rate\": 0.5, "
        "\"plan_seconds\": {\"mean\": 0.1}, "
        "\"pack_seconds\": {\"mean\": 0.1}, "
        "\"ops_heap_pushes\": {\"mean\": 100}, "
        "\"ops_best_fit_probes\": {\"mean\": 50}, "
        "\"ops_child_sort_elems\": {\"mean\": 0}}]}]}");
    const PerfDiffResult result =
        tools::diffPerfReports(baseline, fresh, 2.0);
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.rows[0].cell, "sweep/PhoenixFair@0.5");
    ASSERT_EQ(result.added.size(), 1u);
    EXPECT_EQ(result.added[0], "sweep/PhoenixFair-sharded@0.5");
    ASSERT_EQ(result.removed.size(), 1u);
    EXPECT_EQ(result.removed[0], "sweep/PhoenixCost@0.1");
    // Only the shared cell counts against --require-speedup: 0.6s ->
    // 0.2s = 3x meets 2x even though the added/removed cells have no
    // counterpart to compare.
    EXPECT_TRUE(result.met);

    // CLI: exit 0, table for the shared cell, one line per one-sided
    // cell. Exit 2 is reserved for zero overlap AND zero churn.
    const TempFile base_file("churn_base.json",
                             report(0.2, 0.1, 0.4, 0.2));
    const TempFile fresh_file(
        "churn_new.json",
        "{\"sections\": [{\"name\": \"sweep\", \"sweep\": ["
        "{\"scheme\": \"PhoenixFair\", \"failure_rate\": 0.5, "
        "\"plan_seconds\": {\"mean\": 0.1}, "
        "\"pack_seconds\": {\"mean\": 0.1}, "
        "\"ops_heap_pushes\": {\"mean\": 100}, "
        "\"ops_best_fit_probes\": {\"mean\": 50}, "
        "\"ops_child_sort_elems\": {\"mean\": 0}},"
        "{\"scheme\": \"PhoenixFair-sharded\", \"failure_rate\": 0.5, "
        "\"plan_seconds\": {\"mean\": 0.1}, "
        "\"pack_seconds\": {\"mean\": 0.1}, "
        "\"ops_heap_pushes\": {\"mean\": 100}, "
        "\"ops_best_fit_probes\": {\"mean\": 50}, "
        "\"ops_child_sort_elems\": {\"mean\": 0}}]}]}");
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(
        tools::runPerfDiff({base_file.path(), fresh_file.path()}, out,
                           err),
        0);
    EXPECT_NE(
        out.str().find("added cell: sweep/PhoenixFair-sharded@0.5"),
        std::string::npos);
    EXPECT_NE(out.str().find("removed cell: sweep/PhoenixCost@0.1"),
              std::string::npos);
    EXPECT_NE(out.str().find("worst cell"), std::string::npos);
}

TEST(PerfDiff, CliExitCodes)
{
    const TempFile baseline("base.json", report(0.2, 0.1, 0.4, 0.2));
    const TempFile fresh("new.json", report(0.05, 0.05, 0.1, 0.2));
    std::ostringstream out;
    std::ostringstream err;

    // Plain diff: exit 0 and a table mentioning both cells.
    EXPECT_EQ(tools::runPerfDiff({baseline.path(), fresh.path()}, out,
                                 err),
              0);
    EXPECT_NE(out.str().find("sweep/PhoenixCost@0.1"),
              std::string::npos);
    EXPECT_NE(out.str().find("worst cell"), std::string::npos);

    // Requirement met -> 0, missed -> 1.
    EXPECT_EQ(tools::runPerfDiff({baseline.path(), fresh.path(),
                                  "--require-speedup", "1.5"},
                                 out, err),
              0);
    EXPECT_EQ(tools::runPerfDiff({baseline.path(), fresh.path(),
                                  "--require-speedup", "2.5"},
                                 out, err),
              1);

    // Usage and input errors -> 2.
    EXPECT_EQ(tools::runPerfDiff({baseline.path()}, out, err), 2);
    EXPECT_EQ(tools::runPerfDiff({baseline.path(), "no-such-file.json"},
                                 out, err),
              2);
    const TempFile garbage("garbage.json", "not json");
    EXPECT_EQ(
        tools::runPerfDiff({baseline.path(), garbage.path()}, out, err),
        2);

    // --help prints usage and exits 0.
    std::ostringstream help;
    EXPECT_EQ(tools::runPerfDiff({"--help"}, help, err), 0);
    EXPECT_NE(help.str().find("usage"), std::string::npos);
}
