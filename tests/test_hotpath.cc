/**
 * @file
 * Hot-path allocation tests: the PlanScratch/indexed-heap/BucketedKv
 * claim is "zero allocation in steady state", and this binary installs
 * the util/alloc_counter operator-new hook to assert it as a number.
 * Keep these in their own binary — the hook counts every allocation in
 * the process, so it must not be linked into unrelated suites.
 */

#include <gtest/gtest.h>

#include "adaptlab/environment.h"
#include "core/packing.h"
#include "core/planner.h"
#include "core/schemes.h"
#include "sim/failure.h"
#include "util/alloc_counter.h"
#include "util/rng.h"

PHOENIX_INSTALL_ALLOC_COUNTER();

using namespace phoenix;
using namespace phoenix::core;

namespace {

adaptlab::Environment
mediumEnvironment()
{
    adaptlab::EnvironmentConfig config;
    config.nodeCount = 120;
    config.nodeCapacity = 32.0;
    config.demandFraction = 0.8;
    config.seed = 2024;
    config.alibaba.appCount = 8;
    config.alibaba.sizeScale = 0.05;
    config.resources.maxCpu = 16.0;
    return adaptlab::buildEnvironment(config);
}

} // namespace

TEST(HotPath, SteadyStatePlanAllocatesNothing)
{
    if (!util::allocCounterActive())
        GTEST_SKIP() << "alloc counter not installed (sanitizer build)";

    const adaptlab::Environment env = mediumEnvironment();
    const double capacity = env.cluster.healthyCapacity();

    Planner planner;
    // CostObjective::begin is stateless; FairObjective's water-fill
    // legitimately builds its share table per plan, so the zero-alloc
    // claim is asserted on the cost path.
    CostObjective cost;
    GlobalRank out;
    // Warm-up grows every scratch buffer to the workload's size.
    planner.planInto(env.apps, cost, capacity, out);

    const uint64_t steady = util::allocationsDuring(
        [&] { planner.planInto(env.apps, cost, capacity, out); });
    EXPECT_EQ(steady, 0u) << "planInto allocated on a warm scratch";
}

TEST(HotPath, FlatPackerAllocatesFarLessThanReference)
{
    if (!util::allocCounterActive())
        GTEST_SKIP() << "alloc counter not installed (sanitizer build)";

    const adaptlab::Environment env = mediumEnvironment();
    sim::ClusterState failed = env.cluster;
    sim::FailureInjector injector{util::Rng(99)};
    injector.failCapacityFraction(failed, 0.4);

    Planner planner;
    FairObjective fair;
    const GlobalRank ranked =
        planner.plan(env.apps, fair, failed.healthyCapacity());

    PackingOptions flat_options;
    PackingOptions ref_options;
    ref_options.referenceImpl = true;
    const PackingScheduler flat(flat_options);
    const PackingScheduler reference(ref_options);

    // Warm both scratch arenas, then compare steady-state passes.
    (void)flat.pack(env.apps, failed, ranked);
    (void)reference.pack(env.apps, failed, ranked);

    PackResult flat_result;
    PackResult ref_result;
    const uint64_t flat_allocs = util::allocationsDuring(
        [&] { flat_result = flat.pack(env.apps, failed, ranked); });
    const uint64_t ref_allocs = util::allocationsDuring([&] {
        ref_result = reference.pack(env.apps, failed, ranked);
    });
    // Both implementations pay the same unavoidable output cost: the
    // scratch ClusterState copy that becomes result.state (plus the
    // action vector). Subtract it so the comparison isolates the
    // bookkeeping allocations the flat packer is supposed to remove.
    const uint64_t copy_cost = util::allocationsDuring([&] {
        sim::ClusterState scratch = failed;
        (void)scratch;
    });

    // Identical packing decisions...
    EXPECT_EQ(flat_result.placed, ref_result.placed);
    EXPECT_EQ(flat_result.state.assignment(),
              ref_result.state.assignment());
    // ...but beyond the shared result copy the flat bookkeeping keeps
    // its indexes in the recycled scratch arena, while the reference
    // books rebuild map/set/multiset nodes every pass — so its
    // bookkeeping allocations must exceed the flat ones by a wide
    // margin.
    ASSERT_GE(flat_allocs, copy_cost);
    ASSERT_GE(ref_allocs, copy_cost);
    const uint64_t flat_book = flat_allocs - copy_cost;
    const uint64_t ref_book = ref_allocs - copy_cost;
    EXPECT_LT(flat_book * 2, ref_book)
        << "flat=" << flat_allocs << " reference=" << ref_allocs
        << " shared-copy=" << copy_cost;
}

TEST(HotPath, LongLivedSchemeReachesAllocationFloor)
{
    if (!util::allocCounterActive())
        GTEST_SKIP() << "alloc counter not installed (sanitizer build)";

    const adaptlab::Environment env = mediumEnvironment();
    sim::ClusterState failed = env.cluster;
    sim::FailureInjector injector{util::Rng(7)};
    injector.failCapacityFraction(failed, 0.3);

    // One controller epoch after another on the same scheme instance:
    // after the first apply, allocations per epoch must settle to a
    // constant (the unavoidable result/state copies), i.e. epoch 3
    // costs no more than epoch 2 — the scratch arenas stopped growing.
    PhoenixScheme scheme(Objective::Fair);
    (void)scheme.apply(env.apps, failed);
    const uint64_t second = util::allocationsDuring(
        [&] { (void)scheme.apply(env.apps, failed); });
    const uint64_t third = util::allocationsDuring(
        [&] { (void)scheme.apply(env.apps, failed); });
    EXPECT_LE(third, second);
    EXPECT_GT(second, 0u); // the result copies are real allocations
}
