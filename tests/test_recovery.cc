/**
 * @file
 * Tests for the end-to-end recovery harness: time-series sampling,
 * ttcr/ttfr derivation, and the Fig 6 storyline — Phoenix restores
 * every critical service well before capacity returns while the
 * Default baseline has to wait for the nodes to come back. The kube
 * invariant checker is force-enabled inside runRecovery; every test
 * asserts it saw nothing.
 */

#include <gtest/gtest.h>

#include "exp/recovery.h"

using namespace phoenix;
using exp::RecoveryConfig;
using exp::RecoveryResult;
using exp::RecoveryScheme;

namespace {

/** The bench's headline scenario: half the capacity fails at t=600,
 * nodes return one by one from t=1500. */
RecoveryConfig
cap50Config(RecoveryScheme scheme)
{
    RecoveryConfig config;
    config.scheme = scheme;
    config.scenario.failCapacityFraction(600.0, 0.5)
        .recoverAll(1500.0, 30.0);
    config.endTime = 2400.0;
    return config;
}

} // namespace

TEST(Recovery, QuietScenarioNeverDegrades)
{
    RecoveryConfig config;
    config.scheme = RecoveryScheme::PhoenixCost;
    config.endTime = 900.0;
    const RecoveryResult result = exp::runRecovery(config);

    EXPECT_DOUBLE_EQ(result.firstFailureAt, -1.0);
    EXPECT_DOUBLE_EQ(result.timeToCriticalRecovery, 0.0);
    EXPECT_DOUBLE_EQ(result.timeToFullRecovery, 0.0);
    EXPECT_DOUBLE_EQ(result.finalAvailability, 1.0);
    EXPECT_EQ(result.invariantViolations, 0u);
}

TEST(Recovery, SamplesFollowTheConfiguredCadence)
{
    RecoveryConfig config = cap50Config(RecoveryScheme::Default);
    config.samplePeriod = 30.0;
    config.endTime = 1200.0;
    const RecoveryResult result = exp::runRecovery(config);

    ASSERT_EQ(result.samples.size(), 40u); // 30, 60, ..., 1200
    for (size_t i = 0; i < result.samples.size(); ++i) {
        EXPECT_DOUBLE_EQ(result.samples[i].t,
                         30.0 * static_cast<double>(i + 1));
    }
    EXPECT_DOUBLE_EQ(result.firstFailureAt, 600.0);
    // Ready capacity halves after the failure is detected.
    EXPECT_NEAR(result.samples.back().readyCapacity,
                result.samples.front().readyCapacity / 2.0, 8.0 + 1e-9);
    EXPECT_EQ(result.invariantViolations, 0u);
}

TEST(Recovery, PhoenixRestoresCriticalServicesBeforeCapacityReturns)
{
    const RecoveryResult result =
        exp::runRecovery(cap50Config(RecoveryScheme::PhoenixCost));

    // Availability dips while the failure is detected (~100 s grace),
    // then Phoenix replans and brings every critical service back long
    // before the first node recovers at t=1500.
    EXPECT_LT(result.minAvailability, 1.0);
    EXPECT_GT(result.timeToCriticalRecovery, 0.0);
    EXPECT_LE(result.timeToCriticalRecovery, 420.0);
    EXPECT_GT(result.replans, 0u);
    EXPECT_GT(result.maxPending, 0u);
    // Full recovery needs the capacity back: after t=1500 but within
    // the horizon.
    EXPECT_GT(result.timeToFullRecovery,
              result.timeToCriticalRecovery);
    EXPECT_DOUBLE_EQ(result.finalAvailability, 1.0);
    EXPECT_EQ(result.invariantViolations, 0u);
}

TEST(Recovery, DefaultWaitsForCapacityPhoenixDoesNot)
{
    const RecoveryResult phoenix =
        exp::runRecovery(cap50Config(RecoveryScheme::PhoenixCost));
    const RecoveryResult fallback =
        exp::runRecovery(cap50Config(RecoveryScheme::Default));

    // The Default scheduler has no notion of criticality: critical
    // availability stays broken until nodes return at t=1500+.
    const double capacity_back = 1500.0 - 600.0;
    EXPECT_GT(phoenix.timeToCriticalRecovery, 0.0);
    EXPECT_LT(phoenix.timeToCriticalRecovery, capacity_back);
    EXPECT_TRUE(fallback.timeToCriticalRecovery < 0.0 ||
                fallback.timeToCriticalRecovery > capacity_back);
    EXPECT_EQ(fallback.replans, 0u);
    EXPECT_EQ(phoenix.invariantViolations, 0u);
    EXPECT_EQ(fallback.invariantViolations, 0u);
}
