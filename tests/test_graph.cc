/**
 * @file
 * Tests for the directed-graph substrate (graph/digraph.h).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/digraph.h"
#include "util/rng.h"

using namespace phoenix::graph;

TEST(DiGraph, BasicConstruction)
{
    DiGraph g(3);
    EXPECT_EQ(g.nodeCount(), 3u);
    EXPECT_EQ(g.edgeCount(), 0u);
    EXPECT_TRUE(g.addEdge(0, 1));
    EXPECT_TRUE(g.addEdge(1, 2));
    EXPECT_EQ(g.edgeCount(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_FALSE(g.hasEdge(1, 0));
    EXPECT_EQ(g.outDegree(0), 1u);
    EXPECT_EQ(g.inDegree(2), 1u);
}

TEST(DiGraph, RejectsBadEdges)
{
    DiGraph g(3);
    EXPECT_FALSE(g.addEdge(0, 0)); // self loop
    EXPECT_FALSE(g.addEdge(0, 5)); // out of range
    EXPECT_TRUE(g.addEdge(0, 1));
    EXPECT_FALSE(g.addEdge(0, 1)); // duplicate
    EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(DiGraph, AddNodeGrows)
{
    DiGraph g;
    EXPECT_EQ(g.addNode(), 0u);
    EXPECT_EQ(g.addNode(), 1u);
    g.ensureNodes(5);
    EXPECT_EQ(g.nodeCount(), 5u);
    g.ensureNodes(2); // no shrink
    EXPECT_EQ(g.nodeCount(), 5u);
}

TEST(DiGraph, SourcesAndSinks)
{
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    EXPECT_EQ(g.sources(), (std::vector<NodeId>{0}));
    EXPECT_EQ(g.sinks(), (std::vector<NodeId>{3}));
}

TEST(DiGraph, TopologicalOrderOnDag)
{
    DiGraph g(5);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    g.addEdge(3, 4);
    const auto order = g.topologicalOrder();
    ASSERT_TRUE(order.has_value());
    std::vector<size_t> pos(5);
    for (size_t i = 0; i < order->size(); ++i)
        pos[(*order)[i]] = i;
    EXPECT_LT(pos[0], pos[1]);
    EXPECT_LT(pos[1], pos[3]);
    EXPECT_LT(pos[2], pos[3]);
    EXPECT_LT(pos[3], pos[4]);
}

TEST(DiGraph, CycleDetection)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    EXPECT_FALSE(g.topologicalOrder().has_value());
    EXPECT_FALSE(g.isAcyclic());
}

TEST(DiGraph, Reachability)
{
    DiGraph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    const auto reach = g.reachableFrom(NodeId{0});
    const std::set<NodeId> set(reach.begin(), reach.end());
    EXPECT_EQ(set, (std::set<NodeId>{0, 1, 2}));

    const auto multi = g.reachableFrom(std::vector<NodeId>{0, 3});
    EXPECT_EQ(multi.size(), 5u); // 0,1,2,3,4 (5 isolated)
}

TEST(DiGraph, Subgraph)
{
    DiGraph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 4);
    std::vector<NodeId> map;
    const DiGraph sub = g.subgraph({1, 2, 3}, &map);
    EXPECT_EQ(sub.nodeCount(), 3u);
    EXPECT_EQ(sub.edgeCount(), 2u);
    EXPECT_EQ(map[0], DiGraph::kInvalidNode);
    EXPECT_TRUE(sub.hasEdge(map[1], map[2]));
    EXPECT_TRUE(sub.hasEdge(map[2], map[3]));
}

TEST(DiGraph, SingleUpstreamFraction)
{
    DiGraph g(4);
    g.addEdge(0, 1); // 1: single upstream
    g.addEdge(0, 2);
    g.addEdge(1, 2); // 2: two upstreams
    g.addEdge(0, 3); // 3: single upstream
    EXPECT_NEAR(g.singleUpstreamFraction(), 2.0 / 3.0, 1e-9);

    DiGraph empty(3);
    EXPECT_NEAR(empty.singleUpstreamFraction(), 0.0, 1e-9);
}

TEST(DiGraph, RandomDagsAreAcyclicAndTopoConsistent)
{
    phoenix::util::Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(2, 60));
        DiGraph g(n);
        for (int v = 1; v < n; ++v) {
            const int parents = static_cast<int>(rng.uniformInt(1, 3));
            for (int p = 0; p < parents; ++p) {
                g.addEdge(static_cast<NodeId>(rng.uniformInt(0, v - 1)),
                          static_cast<NodeId>(v));
            }
        }
        const auto order = g.topologicalOrder();
        ASSERT_TRUE(order.has_value());
        EXPECT_EQ(order->size(), static_cast<size_t>(n));
        // Every edge goes forward in the order.
        std::vector<size_t> pos(n);
        for (size_t i = 0; i < order->size(); ++i)
            pos[(*order)[i]] = i;
        for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
            for (NodeId v : g.successors(u))
                EXPECT_LT(pos[u], pos[v]);
        }
    }
}
