/**
 * @file
 * End-to-end tests of the Phoenix controller atop the mini-Kubernetes
 * substrate: failure detection through missed heartbeats, criticality-
 * aware replanning, targeted recovery of critical services within the
 * paper's time envelope, and restoration of non-critical services when
 * capacity returns (the Fig 6 storyline at unit-test scale).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "apps/cloudlab.h"
#include "core/controller.h"
#include "core/schemes.h"
#include "kube/kube.h"
#include "sim/metrics.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::PodRef;

namespace {

struct Rig
{
    sim::EventQueue events;
    std::unique_ptr<kube::KubeCluster> cluster;
    std::unique_ptr<PhoenixController> controller;
    apps::CloudLabTestbed testbed;

    explicit Rig(Objective objective = Objective::Cost,
                 size_t nodes = 10, double per_node = 8.0)
    {
        kube::KubeConfig config;
        cluster = std::make_unique<kube::KubeCluster>(events, config);
        for (size_t n = 0; n < nodes; ++n)
            cluster->addNode(per_node);

        apps::CloudLabConfig cfg;
        cfg.nodeCount = nodes;
        cfg.cpusPerNode = per_node;
        testbed = apps::makeCloudLabTestbed(cfg);
        for (const auto &sapp : testbed.serviceApps)
            cluster->addApplication(sapp.app);

        controller = std::make_unique<PhoenixController>(
            events, *cluster,
            std::make_unique<PhoenixScheme>(objective));
    }

    sim::ActiveSet
    runningActiveSet() const
    {
        sim::ActiveSet active = sim::emptyActiveSet(cluster->apps());
        for (const PodRef &pod : cluster->runningPods())
            active[pod.app][pod.ms] = true;
        return active;
    }
};

} // namespace

TEST(Controller, SteadyStateRunsEverything)
{
    Rig rig;
    rig.events.runUntil(200.0);
    EXPECT_NEAR(sim::criticalServiceAvailability(rig.cluster->apps(),
                                                 rig.runningActiveSet()),
                1.0, 1e-9);
    EXPECT_EQ(rig.cluster->pendingCount(), 0u);
}

TEST(Controller, DetectsFailureWithinGracePlusPoll)
{
    Rig rig;
    rig.events.runUntil(200.0);

    // Stop kubelet on 4 of 10 nodes at t=200.
    for (sim::NodeId n = 0; n < 4; ++n)
        rig.cluster->stopKubelet(n);
    rig.events.runUntil(400.0);

    // history[0] is the initial-placement plan; the failure replan
    // follows it.
    ASSERT_GE(rig.controller->history().size(), 2u);
    const auto &record = rig.controller->history().back();
    // Detection = node grace (~100 s) + poll period (15 s) + slack.
    EXPECT_GE(record.detectedAt, 300.0);
    EXPECT_LE(record.detectedAt, 340.0);
    EXPECT_LT(record.capacityAfter, record.capacityBefore);
    EXPECT_GT(record.planSeconds, 0.0);
    EXPECT_LT(record.planSeconds, 1.0);
}

TEST(Controller, CriticalServicesRecoverUnderFourMinutes)
{
    Rig rig;
    rig.events.runUntil(200.0);

    // Fail 50% of capacity (above the ~42% breaking point below
    // which not all C1 services can fit).
    for (sim::NodeId n = 0; n < 5; ++n)
        rig.cluster->stopKubelet(n);
    rig.events.runUntil(1200.0);

    // All five applications retain their critical availability.
    const double availability = sim::criticalServiceAvailability(
        rig.cluster->apps(), rig.runningActiveSet());
    EXPECT_NEAR(availability, 1.0, 1e-9);

    // Recovery time from detection to target state under 4 minutes.
    ASSERT_GE(rig.controller->history().size(), 2u);
    const auto &record = rig.controller->history().back();
    ASSERT_GT(record.recoveredAt, 0.0);
    EXPECT_LE(record.recoveredAt - record.detectedAt, 240.0);
    EXPECT_GT(record.deletes + record.migrations + record.restarts, 0u);
}

TEST(Controller, NonCriticalServicesReturnAfterRecovery)
{
    Rig rig;
    rig.events.runUntil(200.0);
    const size_t full_count = rig.cluster->runningPods().size();

    for (sim::NodeId n = 0; n < 5; ++n)
        rig.cluster->stopKubelet(n);
    rig.events.runUntil(1000.0);
    const size_t degraded_count = rig.cluster->runningPods().size();
    EXPECT_LT(degraded_count, full_count);

    // Nodes come back (the paper restarts kubelet after 10 minutes).
    for (sim::NodeId n = 0; n < 5; ++n)
        rig.cluster->startKubelet(n);
    rig.events.runUntil(1600.0);
    EXPECT_EQ(rig.cluster->runningPods().size(), full_count);
    // A second replan (capacity increase) must have fired.
    EXPECT_GE(rig.controller->history().size(), 2u);
}

TEST(Controller, DefaultBaselineCannotProtectCriticalServices)
{
    // Same failure, no Phoenix: pods stay pending until nodes return.
    sim::EventQueue events;
    kube::KubeCluster cluster(events);
    for (size_t n = 0; n < 10; ++n)
        cluster.addNode(8.0);
    apps::CloudLabConfig cfg;
    cfg.nodeCount = 10;
    cfg.cpusPerNode = 8.0;
    const auto testbed = apps::makeCloudLabTestbed(cfg);
    for (const auto &sapp : testbed.serviceApps)
        cluster.addApplication(sapp.app);
    events.runUntil(200.0);

    for (sim::NodeId n = 0; n < 6; ++n)
        cluster.stopKubelet(n);
    events.runUntil(1200.0);

    sim::ActiveSet active = sim::emptyActiveSet(cluster.apps());
    for (const PodRef &pod : cluster.runningPods())
        active[pod.app][pod.ms] = true;
    const double availability =
        sim::criticalServiceAvailability(cluster.apps(), active);
    // Default satisfies only a strict subset of the apps (2/5 in the
    // paper's run).
    EXPECT_LT(availability, 1.0);
    EXPECT_GT(cluster.pendingCount(), 0u);
}

TEST(Controller, PhoenixBeatsDefaultDuringFailure)
{
    Rig rig;
    rig.events.runUntil(200.0);
    for (sim::NodeId n = 0; n < 5; ++n)
        rig.cluster->stopKubelet(n);
    rig.events.runUntil(1200.0);
    const double phoenix_avail = sim::criticalServiceAvailability(
        rig.cluster->apps(), rig.runningActiveSet());

    sim::EventQueue events;
    kube::KubeCluster def(events);
    for (size_t n = 0; n < 10; ++n)
        def.addNode(8.0);
    apps::CloudLabConfig cfg;
    cfg.nodeCount = 10;
    cfg.cpusPerNode = 8.0;
    for (const auto &sapp : apps::makeCloudLabTestbed(cfg).serviceApps)
        def.addApplication(sapp.app);
    events.runUntil(200.0);
    for (sim::NodeId n = 0; n < 5; ++n)
        def.stopKubelet(n);
    events.runUntil(1200.0);
    sim::ActiveSet active = sim::emptyActiveSet(def.apps());
    for (const PodRef &pod : def.runningPods())
        active[pod.app][pod.ms] = true;
    const double default_avail =
        sim::criticalServiceAvailability(def.apps(), active);

    EXPECT_GT(phoenix_avail, default_avail);
}

TEST(Controller, EqualCapacitySwapStillTriggersReplan)
{
    // Satellite regression for the observation->execution race: node 1
    // goes NotReady in the *same* node-controller tick that brings an
    // equal-capacity node back Ready, so the aggregate ready capacity
    // the controller polls never moves. A capacity-only replan trigger
    // misses the swap and leaves the pods evicted from node 1 pinned
    // to it — Pending forever. The ready-set fingerprint trigger
    // catches it.
    Rig rig;
    rig.events.runUntil(250.0);
    ASSERT_EQ(rig.cluster->pendingCount(), 0u);

    // Take node 1 down the ordinary way and let Phoenix replan.
    rig.cluster->stopKubelet(1);
    rig.events.runUntil(305.0);

    // Arrange the swap: partition node 0 at t=305 (last heartbeat
    // 300, NotReady at the t=410 tick) and restart node 1's kubelet
    // at t=402 (fresh heartbeat, Ready at the same t=410 tick).
    rig.cluster->partitionNode(0);
    rig.events.schedule(402.0, [&rig] { rig.cluster->startKubelet(1); });
    rig.events.runUntil(405.0);
    const size_t replans_at_swap = rig.controller->history().size();

    rig.events.runUntil(420.0);
    EXPECT_FALSE(rig.cluster->isReady(0));
    EXPECT_TRUE(rig.cluster->isReady(1));
    rig.events.runUntil(900.0);

    // The swap forced a replan even though capacity never moved...
    EXPECT_GT(rig.controller->history().size(), replans_at_swap);
    // ...and no pod is stranded: everything the plan wants is Running
    // and nothing sits Pending pinned to the dead node.
    EXPECT_EQ(rig.cluster->pendingCount(), 0u);
    const double availability = sim::criticalServiceAvailability(
        rig.cluster->apps(), rig.runningActiveSet());
    EXPECT_GE(availability, 1.0 - 1e-9);
    EXPECT_EQ(rig.cluster->invariantViolations(), 0u);
}
