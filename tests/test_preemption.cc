/**
 * @file
 * Unit tests for the K8s PriorityClass preemption baseline: priority
 * ordering of the pending queue, node-local minimum-victim selection,
 * strict lower-priority-only eviction, unschedulable pods staying
 * pending, and the sparse-application-id regression (PodRef.app is a
 * vector index, not Application::id).
 */

#include <gtest/gtest.h>

#include "core/preemption.h"
#include "sim/metrics.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::Application;
using sim::ClusterState;
using sim::MsId;
using sim::PodRef;

namespace {

Application
makeApp(sim::AppId id, const std::vector<int> &tags,
        const std::vector<double> &cpus)
{
    Application app;
    app.id = id;
    app.name = "app" + std::to_string(id);
    app.services.resize(tags.size());
    for (MsId m = 0; m < tags.size(); ++m) {
        app.services[m].id = m;
        app.services[m].criticality = tags[m];
        app.services[m].cpu = cpus[m];
    }
    return app;
}

size_t
deleteCount(const SchemeResult &result)
{
    size_t count = 0;
    for (const auto &action : result.pack.actions) {
        if (action.kind == ActionKind::Delete)
            ++count;
    }
    return count;
}

} // namespace

TEST(Preemption, PlacesEverythingWhenRoomSuffices)
{
    const std::vector<Application> apps{
        makeApp(0, {1, 2}, {2, 2}), makeApp(1, {1, 3}, {2, 2})};
    ClusterState cluster;
    cluster.addNode(8.0);
    cluster.addNode(8.0);

    KubePreemptionScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    EXPECT_TRUE(result.pack.complete);
    EXPECT_EQ(result.pack.state.assignment().size(), 4u);
    EXPECT_EQ(deleteCount(result), 0u);
    const auto active = result.activeSet(apps);
    EXPECT_NEAR(sim::criticalFractionAvailability(apps, active), 1.0,
                1e-12);
}

TEST(Preemption, HigherPriorityPreemptsLowerNeverEqual)
{
    // One node, 4 cpu, already holding a C3 pod of the second app;
    // the pending C1 pod must preempt it, but an equal-priority pod
    // must not (K8s preempts strictly lower priority only).
    const std::vector<Application> apps{makeApp(0, {1}, {4}),
                                        makeApp(1, {3}, {4})};
    ClusterState cluster;
    cluster.addNode(4.0);
    cluster.place(PodRef{1, 0}, 0, 4.0);

    KubePreemptionScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    EXPECT_TRUE(result.pack.complete);
    EXPECT_EQ(deleteCount(result), 1u);
    EXPECT_TRUE(result.pack.state.isActive(PodRef{0, 0}));
    EXPECT_FALSE(result.pack.state.isActive(PodRef{1, 0}));

    // Same shape with equal priorities: no preemption, pod 0/0 stays
    // pending and the result reports incomplete.
    const std::vector<Application> equal{makeApp(0, {3}, {4}),
                                         makeApp(1, {3}, {4})};
    ClusterState occupied;
    occupied.addNode(4.0);
    occupied.place(PodRef{1, 0}, 0, 4.0);
    const SchemeResult blocked = scheme.apply(equal, occupied);
    EXPECT_FALSE(blocked.pack.complete);
    EXPECT_EQ(deleteCount(blocked), 0u);
    EXPECT_TRUE(blocked.pack.state.isActive(PodRef{1, 0}));
    EXPECT_FALSE(blocked.pack.state.isActive(PodRef{0, 0}));
}

TEST(Preemption, PicksTheNodeNeedingFewestVictims)
{
    // Node 0 holds two C4 pods of 2 cpu each; node 1 holds one C4 pod
    // of 4 cpu. A pending 4-cpu C1 pod fits either way, but node 1
    // needs a single victim — the K8s minimum-disruption choice.
    const std::vector<Application> apps{
        makeApp(0, {1}, {4}), makeApp(1, {4, 4, 4}, {2, 2, 4})};
    ClusterState cluster;
    cluster.addNode(4.0);
    cluster.addNode(4.0);
    cluster.place(PodRef{1, 0}, 0, 2.0);
    cluster.place(PodRef{1, 1}, 0, 2.0);
    cluster.place(PodRef{1, 2}, 1, 4.0);

    KubePreemptionScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    EXPECT_TRUE(result.pack.complete);
    EXPECT_EQ(deleteCount(result), 1u);
    EXPECT_EQ(result.pack.state.nodeOf(PodRef{0, 0}),
              std::optional<sim::NodeId>(1));
    EXPECT_TRUE(result.pack.state.isActive(PodRef{1, 0}));
    EXPECT_TRUE(result.pack.state.isActive(PodRef{1, 1}));
    EXPECT_FALSE(result.pack.state.isActive(PodRef{1, 2}));
}

TEST(Preemption, PendingQueueDrainsInPriorityOrder)
{
    // 6 cpu total for 8 cpu of demand: the C1 and C2 pods win the
    // queue over the C3/C4 ones regardless of app order. Spread
    // placement then strands the leftovers on 1+1 cpu fragments —
    // and since preemption only evicts *strictly lower* priority,
    // neither C3 nor C4 can claw a slot back (the paper's point about
    // priority classes lacking any packing objective).
    const std::vector<Application> apps{makeApp(0, {3, 1}, {2, 2}),
                                        makeApp(1, {4, 2}, {2, 2})};
    ClusterState cluster;
    cluster.addNode(3.0);
    cluster.addNode(3.0);

    KubePreemptionScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    EXPECT_FALSE(result.pack.complete);
    EXPECT_TRUE(result.pack.state.isActive(PodRef{0, 1})); // C1
    EXPECT_TRUE(result.pack.state.isActive(PodRef{1, 1})); // C2
    EXPECT_FALSE(result.pack.state.isActive(PodRef{0, 0}));
    EXPECT_FALSE(result.pack.state.isActive(PodRef{1, 0}));
    EXPECT_EQ(deleteCount(result), 0u);
}

TEST(Preemption, SparseAppIdsIndexByPositionNotId)
{
    // Regression: Application::id 7 and 42 with only two apps in the
    // vector. priorityOf and the queue must use vector positions —
    // indexing apps by the id used to walk off the end.
    std::vector<Application> apps{makeApp(7, {1, 2}, {2, 2}),
                                  makeApp(42, {1}, {2})};
    ClusterState cluster;
    cluster.addNode(4.0);
    cluster.addNode(4.0);

    KubePreemptionScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    EXPECT_TRUE(result.pack.complete);
    EXPECT_EQ(result.pack.state.assignment().size(), 3u);
    for (const auto &[pod, node] : result.pack.state.assignment()) {
        (void)node;
        EXPECT_LT(pod.app, apps.size())
            << "PodRef.app must be a vector index, not Application::id";
    }

    // Preemption across sparse ids: big id must not shield a low
    // priority pod.
    ClusterState small;
    small.addNode(2.0);
    small.place(PodRef{1, 0}, 0, 2.0); // app id 42, C1
    const std::vector<Application> sparse{makeApp(7, {4}, {2}),
                                          makeApp(42, {1}, {2})};
    const SchemeResult keep = scheme.apply(sparse, small);
    EXPECT_TRUE(keep.pack.state.isActive(PodRef{1, 0}));
    EXPECT_FALSE(keep.pack.state.isActive(PodRef{0, 0}));
}

TEST(Preemption, MultiReplicaServicesQueuePerReplica)
{
    std::vector<Application> apps{makeApp(0, {1}, {2})};
    apps[0].services[0].replicas = 3;
    ClusterState cluster;
    cluster.addNode(4.0);
    cluster.addNode(4.0);

    KubePreemptionScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    EXPECT_TRUE(result.pack.complete);
    EXPECT_EQ(result.pack.state.assignment().size(), 3u);
    EXPECT_EQ(result.pack.placed, 3u);
}
