/**
 * @file
 * Tests for the application models (Overleaf, HotelReservation) and the
 * request-level load evaluation: throughput under degradation, the
 * harvest/yield utility model, the latency model, and the CloudLab
 * testbed resource mix (Fig 4, Fig 9, Table 1 shapes).
 */

#include <gtest/gtest.h>

#include <set>

#include "apps/cloudlab.h"
#include "apps/hotel.h"
#include "apps/overleaf.h"
#include "apps/service_app.h"

using namespace phoenix;
using namespace phoenix::apps;
using sim::MsId;

namespace {

std::set<MsId>
allServices(const ServiceApp &sapp)
{
    std::set<MsId> running;
    for (const auto &ms : sapp.app.services)
        running.insert(ms.id);
    return running;
}

const TrafficPoint &
point(const std::vector<TrafficPoint> &points, const std::string &name)
{
    for (const auto &p : points) {
        if (p.request == name)
            return p;
    }
    static TrafficPoint missing;
    return missing;
}

} // namespace

TEST(Overleaf, FourteenServicesAndValidDag)
{
    const ServiceApp sapp = makeOverleaf(0);
    EXPECT_EQ(sapp.app.services.size(), overleaf::kServiceCount);
    EXPECT_TRUE(sapp.app.hasDependencyGraph);
    EXPECT_TRUE(sapp.app.dag.isAcyclic());
    EXPECT_TRUE(sapp.crashProof);
    // web is the single entry.
    EXPECT_EQ(sapp.app.dag.sources(),
              (std::vector<graph::NodeId>{overleaf::kWeb}));
}

TEST(Overleaf, InstanceGoalsFollowFig4)
{
    EXPECT_EQ(makeOverleaf(0).criticalRequest, "edits");
    EXPECT_EQ(makeOverleaf(1).criticalRequest, "versioning");
    EXPECT_EQ(makeOverleaf(2).criticalRequest, "downloads");

    // Critical-path services are C1.
    const ServiceApp v = makeOverleaf(1);
    EXPECT_EQ(v.app.services[overleaf::kTrackChanges].criticality, 1);
    EXPECT_EQ(v.app.services[overleaf::kWeb].criticality, 1);
    // Chat stays good-to-have everywhere.
    EXPECT_EQ(v.app.services[overleaf::kChat].criticality, 5);
}

TEST(Overleaf, WorksWithNonCriticalServicesOff)
{
    // The §3.2 demonstration: turn off C5 services; edits unaffected.
    const ServiceApp sapp = makeOverleaf(0);
    std::set<MsId> running = allServices(sapp);
    for (const auto &ms : sapp.app.services) {
        if (ms.criticality == 5)
            running.erase(ms.id);
    }
    EXPECT_TRUE(criticalGoalMet(sapp, running));
    const auto traffic = evaluateTraffic(sapp, running, 0.5);
    EXPECT_GT(point(traffic, "edits").servedRps, 0.0);
    EXPECT_NEAR(point(traffic, "chat").servedRps, 0.0, 1e-9);
}

TEST(Overleaf, EditsP95MatchesTable1Before)
{
    const ServiceApp sapp = makeOverleaf(0);
    const auto traffic = evaluateTraffic(sapp, allServices(sapp), 0.5);
    EXPECT_NEAR(point(traffic, "edits").p95Ms, 141.0, 1.0);
    EXPECT_NEAR(point(traffic, "compile").p95Ms, 4317.9, 5.0);
    EXPECT_NEAR(point(traffic, "spell_check").p95Ms, 2296.7, 5.0);
}

TEST(Overleaf, EditsLatencyRisesSlightlyUnderLoad)
{
    // Table 1 after-scaling shape: 141 -> ~144 ms at high utilization.
    const ServiceApp sapp = makeOverleaf(0);
    std::set<MsId> degraded = allServices(sapp);
    degraded.erase(overleaf::kSpelling);
    degraded.erase(overleaf::kClsi);
    const auto traffic = evaluateTraffic(sapp, degraded, 0.95);
    const double after = point(traffic, "edits").p95Ms;
    EXPECT_GT(after, 141.0);
    EXPECT_LT(after, 155.0);
    // Pruned services report no latency.
    EXPECT_LT(point(traffic, "spell_check").p95Ms, 0.0);
    EXPECT_LT(point(traffic, "compile").p95Ms, 0.0);
}

TEST(Hotel, InstanceGoalsAndTags)
{
    const ServiceApp search = makeHotelReservation(0);
    EXPECT_EQ(search.criticalRequest, "search");
    EXPECT_EQ(search.app.services[hotel::kSearch].criticality, 1);
    EXPECT_EQ(search.app.services[hotel::kRecommendation].criticality,
              5);

    const ServiceApp reserve = makeHotelReservation(1);
    EXPECT_EQ(reserve.criticalRequest, "reserve");
    EXPECT_EQ(reserve.app.services[hotel::kReservation].criticality, 1);
}

TEST(Hotel, StockHrCrashesWhenHardDepsDown)
{
    // Non-compliant HR: turning recommendation off breaks everything.
    const ServiceApp stock = makeHotelReservation(1, false);
    std::set<MsId> running = allServices(stock);
    running.erase(hotel::kRecommendation);
    const auto traffic = evaluateTraffic(stock, running, 0.5);
    for (const auto &p : traffic)
        EXPECT_NEAR(p.servedRps, 0.0, 1e-9) << p.request;
}

TEST(Hotel, RetrofittedHrDegradesGracefully)
{
    const ServiceApp compliant = makeHotelReservation(1, true);
    std::set<MsId> running = allServices(compliant);
    running.erase(hotel::kRecommendation);
    EXPECT_TRUE(criticalGoalMet(compliant, running));
}

TEST(Hotel, GuestReservationsDropUtilityToPoint8)
{
    // Fig 6(f): pruning the user service keeps reserve throughput but
    // drops its utility to 0.8.
    const ServiceApp sapp = makeHotelReservation(1);
    std::set<MsId> running = allServices(sapp);
    running.erase(hotel::kUser);
    const auto traffic = evaluateTraffic(sapp, running, 0.5);
    const auto &reserve = point(traffic, "reserve");
    EXPECT_GT(reserve.servedRps, 0.0);
    EXPECT_NEAR(reserve.utility, 0.8, 1e-9);
    // Login hard-requires user.
    EXPECT_NEAR(point(traffic, "login").servedRps, 0.0, 1e-9);
}

TEST(Hotel, ReserveLatencyDropsWhenUserPruned)
{
    // Table 1: reserve 55.33 ms -> ~50 ms (gRPC fail-fast).
    const ServiceApp sapp = makeHotelReservation(1);
    const auto before =
        point(evaluateTraffic(sapp, allServices(sapp), 0.5), "reserve");
    EXPECT_NEAR(before.p95Ms, 55.33, 0.5);

    std::set<MsId> running = allServices(sapp);
    running.erase(hotel::kUser);
    const auto after =
        point(evaluateTraffic(sapp, running, 0.5), "reserve");
    EXPECT_LT(after.p95Ms, before.p95Ms);
    EXPECT_NEAR(after.p95Ms, 50.1, 1.0);
}

TEST(CloudLab, FiveInstancesWithPaperGoals)
{
    const CloudLabTestbed testbed = makeCloudLabTestbed();
    ASSERT_EQ(testbed.serviceApps.size(), 5u);
    EXPECT_EQ(testbed.serviceApps[0].criticalRequest, "edits");
    EXPECT_EQ(testbed.serviceApps[1].criticalRequest, "versioning");
    EXPECT_EQ(testbed.serviceApps[2].criticalRequest, "downloads");
    EXPECT_EQ(testbed.serviceApps[3].criticalRequest, "search");
    EXPECT_EQ(testbed.serviceApps[4].criticalRequest, "reserve");
    EXPECT_NEAR(testbed.totalCapacity(), 200.0, 1e-9);
    EXPECT_EQ(testbed.makeCluster().nodeCount(), 25u);
}

TEST(CloudLab, ResourceMixMatchesAppendixF1)
{
    // Demand ~70% of 200 CPUs; C1 ~57% of that, i.e. ~40% of the
    // cluster — the App. F.1 operating point, so failures down to 42%
    // capacity stay just above the breaking point.
    const CloudLabTestbed testbed = makeCloudLabTestbed();
    double total = 0.0;
    double critical = 0.0;
    for (const auto &sapp : testbed.serviceApps) {
        total += sapp.app.totalDemand();
        critical += sapp.app.criticalDemand();
    }
    // The per-node container clamp (no pod above 95% of a node) trims
    // a sliver from groups whose members all hit the clamp.
    EXPECT_NEAR(total, 140.0, 1.5);
    EXPECT_NEAR(critical / total, 0.57, 0.01);
    EXPECT_NEAR(critical / testbed.totalCapacity(), 0.40, 0.01);
}

TEST(CloudLab, ApplicationsViewIsConsistent)
{
    const CloudLabTestbed testbed = makeCloudLabTestbed();
    const auto apps = testbed.applications();
    ASSERT_EQ(apps.size(), 5u);
    for (size_t a = 0; a < apps.size(); ++a) {
        EXPECT_EQ(apps[a].id, a);
        EXPECT_EQ(apps[a].services.size(),
                  testbed.serviceApps[a].app.services.size());
        EXPECT_GT(apps[a].pricePerUnit, 0.0);
    }
}

TEST(ServiceApp, AssignCpuByTrafficRespectsBudget)
{
    ServiceApp sapp = makeOverleaf(0);
    assignCpuByTraffic(sapp, 30.0, 0.6);
    EXPECT_NEAR(sapp.app.totalDemand(), 30.0, 1e-9);
    EXPECT_NEAR(sapp.app.criticalDemand(), 18.0, 1e-9);
    for (const auto &ms : sapp.app.services)
        EXPECT_GT(ms.cpu, 0.0);
}
