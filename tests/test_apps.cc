/**
 * @file
 * Tests for the application models (Overleaf, HotelReservation) and the
 * request-level load evaluation: throughput under degradation, the
 * harvest/yield utility model, the latency model, and the CloudLab
 * testbed resource mix (Fig 4, Fig 9, Table 1 shapes).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "apps/cloudlab.h"
#include "apps/hotel.h"
#include "apps/loadgen.h"
#include "apps/overleaf.h"
#include "apps/service_app.h"
#include "util/rng.h"

using namespace phoenix;
using namespace phoenix::apps;
using sim::MsId;

namespace {

std::set<MsId>
allServices(const ServiceApp &sapp)
{
    std::set<MsId> running;
    for (const auto &ms : sapp.app.services)
        running.insert(ms.id);
    return running;
}

const TrafficPoint &
point(const std::vector<TrafficPoint> &points, const std::string &name)
{
    for (const auto &p : points) {
        if (p.request == name)
            return p;
    }
    static TrafficPoint missing;
    return missing;
}

} // namespace

TEST(Overleaf, FourteenServicesAndValidDag)
{
    const ServiceApp sapp = makeOverleaf(0);
    EXPECT_EQ(sapp.app.services.size(), overleaf::kServiceCount);
    EXPECT_TRUE(sapp.app.hasDependencyGraph);
    EXPECT_TRUE(sapp.app.dag.isAcyclic());
    EXPECT_TRUE(sapp.crashProof);
    // web is the single entry.
    EXPECT_EQ(sapp.app.dag.sources(),
              (std::vector<graph::NodeId>{overleaf::kWeb}));
}

TEST(Overleaf, InstanceGoalsFollowFig4)
{
    EXPECT_EQ(makeOverleaf(0).criticalRequest, "edits");
    EXPECT_EQ(makeOverleaf(1).criticalRequest, "versioning");
    EXPECT_EQ(makeOverleaf(2).criticalRequest, "downloads");

    // Critical-path services are C1.
    const ServiceApp v = makeOverleaf(1);
    EXPECT_EQ(v.app.services[overleaf::kTrackChanges].criticality, 1);
    EXPECT_EQ(v.app.services[overleaf::kWeb].criticality, 1);
    // Chat stays good-to-have everywhere.
    EXPECT_EQ(v.app.services[overleaf::kChat].criticality, 5);
}

TEST(Overleaf, WorksWithNonCriticalServicesOff)
{
    // The §3.2 demonstration: turn off C5 services; edits unaffected.
    const ServiceApp sapp = makeOverleaf(0);
    std::set<MsId> running = allServices(sapp);
    for (const auto &ms : sapp.app.services) {
        if (ms.criticality == 5)
            running.erase(ms.id);
    }
    EXPECT_TRUE(criticalGoalMet(sapp, running));
    const auto traffic = evaluateTraffic(sapp, running, 0.5);
    EXPECT_GT(point(traffic, "edits").servedRps, 0.0);
    EXPECT_NEAR(point(traffic, "chat").servedRps, 0.0, 1e-9);
}

TEST(Overleaf, EditsP95MatchesTable1Before)
{
    const ServiceApp sapp = makeOverleaf(0);
    const auto traffic = evaluateTraffic(sapp, allServices(sapp), 0.5);
    EXPECT_NEAR(point(traffic, "edits").p95Ms, 141.0, 1.0);
    EXPECT_NEAR(point(traffic, "compile").p95Ms, 4317.9, 5.0);
    EXPECT_NEAR(point(traffic, "spell_check").p95Ms, 2296.7, 5.0);
}

TEST(Overleaf, EditsLatencyRisesSlightlyUnderLoad)
{
    // Table 1 after-scaling shape: 141 -> ~144 ms at high utilization.
    const ServiceApp sapp = makeOverleaf(0);
    std::set<MsId> degraded = allServices(sapp);
    degraded.erase(overleaf::kSpelling);
    degraded.erase(overleaf::kClsi);
    const auto traffic = evaluateTraffic(sapp, degraded, 0.95);
    const double after = point(traffic, "edits").p95Ms;
    EXPECT_GT(after, 141.0);
    EXPECT_LT(after, 155.0);
    // Pruned services report no latency.
    EXPECT_LT(point(traffic, "spell_check").p95Ms, 0.0);
    EXPECT_LT(point(traffic, "compile").p95Ms, 0.0);
}

TEST(Hotel, InstanceGoalsAndTags)
{
    const ServiceApp search = makeHotelReservation(0);
    EXPECT_EQ(search.criticalRequest, "search");
    EXPECT_EQ(search.app.services[hotel::kSearch].criticality, 1);
    EXPECT_EQ(search.app.services[hotel::kRecommendation].criticality,
              5);

    const ServiceApp reserve = makeHotelReservation(1);
    EXPECT_EQ(reserve.criticalRequest, "reserve");
    EXPECT_EQ(reserve.app.services[hotel::kReservation].criticality, 1);
}

TEST(Hotel, StockHrCrashesWhenHardDepsDown)
{
    // Non-compliant HR: turning recommendation off breaks everything.
    const ServiceApp stock = makeHotelReservation(1, false);
    std::set<MsId> running = allServices(stock);
    running.erase(hotel::kRecommendation);
    const auto traffic = evaluateTraffic(stock, running, 0.5);
    for (const auto &p : traffic)
        EXPECT_NEAR(p.servedRps, 0.0, 1e-9) << p.request;
}

TEST(Hotel, RetrofittedHrDegradesGracefully)
{
    const ServiceApp compliant = makeHotelReservation(1, true);
    std::set<MsId> running = allServices(compliant);
    running.erase(hotel::kRecommendation);
    EXPECT_TRUE(criticalGoalMet(compliant, running));
}

TEST(Hotel, GuestReservationsDropUtilityToPoint8)
{
    // Fig 6(f): pruning the user service keeps reserve throughput but
    // drops its utility to 0.8.
    const ServiceApp sapp = makeHotelReservation(1);
    std::set<MsId> running = allServices(sapp);
    running.erase(hotel::kUser);
    const auto traffic = evaluateTraffic(sapp, running, 0.5);
    const auto &reserve = point(traffic, "reserve");
    EXPECT_GT(reserve.servedRps, 0.0);
    EXPECT_NEAR(reserve.utility, 0.8, 1e-9);
    // Login hard-requires user.
    EXPECT_NEAR(point(traffic, "login").servedRps, 0.0, 1e-9);
}

TEST(Hotel, ReserveLatencyDropsWhenUserPruned)
{
    // Table 1: reserve 55.33 ms -> ~50 ms (gRPC fail-fast).
    const ServiceApp sapp = makeHotelReservation(1);
    const auto before =
        point(evaluateTraffic(sapp, allServices(sapp), 0.5), "reserve");
    EXPECT_NEAR(before.p95Ms, 55.33, 0.5);

    std::set<MsId> running = allServices(sapp);
    running.erase(hotel::kUser);
    const auto after =
        point(evaluateTraffic(sapp, running, 0.5), "reserve");
    EXPECT_LT(after.p95Ms, before.p95Ms);
    EXPECT_NEAR(after.p95Ms, 50.1, 1.0);
}

TEST(CloudLab, FiveInstancesWithPaperGoals)
{
    const CloudLabTestbed testbed = makeCloudLabTestbed();
    ASSERT_EQ(testbed.serviceApps.size(), 5u);
    EXPECT_EQ(testbed.serviceApps[0].criticalRequest, "edits");
    EXPECT_EQ(testbed.serviceApps[1].criticalRequest, "versioning");
    EXPECT_EQ(testbed.serviceApps[2].criticalRequest, "downloads");
    EXPECT_EQ(testbed.serviceApps[3].criticalRequest, "search");
    EXPECT_EQ(testbed.serviceApps[4].criticalRequest, "reserve");
    EXPECT_NEAR(testbed.totalCapacity(), 200.0, 1e-9);
    EXPECT_EQ(testbed.makeCluster().nodeCount(), 25u);
}

TEST(CloudLab, ResourceMixMatchesAppendixF1)
{
    // Demand ~70% of 200 CPUs; C1 ~57% of that, i.e. ~40% of the
    // cluster — the App. F.1 operating point, so failures down to 42%
    // capacity stay just above the breaking point.
    const CloudLabTestbed testbed = makeCloudLabTestbed();
    double total = 0.0;
    double critical = 0.0;
    for (const auto &sapp : testbed.serviceApps) {
        total += sapp.app.totalDemand();
        critical += sapp.app.criticalDemand();
    }
    // The per-node container clamp (no pod above 95% of a node) trims
    // a sliver from groups whose members all hit the clamp.
    EXPECT_NEAR(total, 140.0, 1.5);
    EXPECT_NEAR(critical / total, 0.57, 0.01);
    EXPECT_NEAR(critical / testbed.totalCapacity(), 0.40, 0.01);
}

TEST(CloudLab, ApplicationsViewIsConsistent)
{
    const CloudLabTestbed testbed = makeCloudLabTestbed();
    const auto apps = testbed.applications();
    ASSERT_EQ(apps.size(), 5u);
    for (size_t a = 0; a < apps.size(); ++a) {
        EXPECT_EQ(apps[a].id, a);
        EXPECT_EQ(apps[a].services.size(),
                  testbed.serviceApps[a].app.services.size());
        EXPECT_GT(apps[a].pricePerUnit, 0.0);
    }
}

TEST(ServiceApp, AssignCpuByTrafficRespectsBudget)
{
    ServiceApp sapp = makeOverleaf(0);
    assignCpuByTraffic(sapp, 30.0, 0.6);
    EXPECT_NEAR(sapp.app.totalDemand(), 30.0, 1e-9);
    EXPECT_NEAR(sapp.app.criticalDemand(), 18.0, 1e-9);
    for (const auto &ms : sapp.app.services)
        EXPECT_GT(ms.cpu, 0.0);
}

TEST(RateCurve, EmptyCurveIsNeutral)
{
    const RateCurve curve;
    EXPECT_TRUE(curve.empty());
    EXPECT_NEAR(curve.at(-5.0), 1.0, 1e-12);
    EXPECT_NEAR(curve.at(0.0), 1.0, 1e-12);
    EXPECT_NEAR(curve.at(1e9), 1.0, 1e-12);
    EXPECT_NEAR(curve.maxValue(), 1.0, 1e-12);
}

TEST(RateCurve, SinglePointIsConstant)
{
    RateCurve curve;
    curve.point(100.0, 0.75);
    EXPECT_NEAR(curve.at(0.0), 0.75, 1e-12);   // holds before
    EXPECT_NEAR(curve.at(100.0), 0.75, 1e-12);
    EXPECT_NEAR(curve.at(5000.0), 0.75, 1e-12); // holds after
    EXPECT_NEAR(curve.maxValue(), 0.75, 1e-12);
}

TEST(RateCurve, InterpolatesAndClampsNegatives)
{
    RateCurve curve;
    curve.point(10.0, 0.0).point(0.0, 2.0); // out-of-order add
    EXPECT_NEAR(curve.at(5.0), 1.0, 1e-12); // re-sorted, linear
    curve.point(20.0, -3.0);                // clamps to 0
    EXPECT_NEAR(curve.at(20.0), 0.0, 1e-12);
    EXPECT_NEAR(curve.maxValue(), 2.0, 1e-12);
}

TEST(RateCurve, DiurnalShapeHitsLowAndHigh)
{
    const RateCurve curve = RateCurve::diurnal(1200.0, 0.5, 1.5);
    EXPECT_NEAR(curve.at(0.0), 0.5, 1e-6);
    EXPECT_NEAR(curve.at(600.0), 1.5, 1e-2); // cosine sampled
    EXPECT_NEAR(curve.at(1200.0), 0.5, 1e-6);
    EXPECT_NEAR(curve.at(5000.0), 0.5, 1e-6); // holds past the day
    EXPECT_LE(curve.maxValue(), 1.5 + 1e-9);
}

TEST(RateCurve, BurstRampsUpAndBack)
{
    const RateCurve curve = RateCurve::burst(100.0, 400.0, 1.0, 2.0);
    EXPECT_NEAR(curve.at(0.0), 1.0, 1e-9);   // before the burst
    EXPECT_NEAR(curve.at(300.0), 2.0, 1e-9); // holding at peak
    EXPECT_NEAR(curve.at(500.0), 1.0, 1e-9); // back to baseline
    EXPECT_NEAR(curve.at(900.0), 1.0, 1e-9);
    EXPECT_NEAR(curve.maxValue(), 2.0, 1e-9);
}

TEST(OpenLoopArrivals, DeterministicUnderCellSeed)
{
    OpenLoopConfig config;
    config.baseRps = 4.0;
    config.curve = RateCurve::diurnal(600.0, 0.5, 1.5);
    config.seed = phoenix::util::cellSeed(42, 7);

    auto drain = [&] {
        OpenLoopArrivals stream(config);
        std::vector<double> times;
        double t = 0.0;
        while ((t = stream.next(t)) >= 0.0 && t <= 600.0)
            times.push_back(t);
        return times;
    };
    const auto a = drain();
    const auto b = drain();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b); // bit-identical replay
    for (size_t i = 1; i < a.size(); ++i)
        EXPECT_GT(a[i], a[i - 1]); // strictly increasing

    // A different stream index yields a different sequence.
    config.seed = phoenix::util::cellSeed(42, 8);
    EXPECT_NE(drain(), a);
}

TEST(OpenLoopArrivals, RealizedCountTracksExpectedCount)
{
    OpenLoopConfig config;
    config.baseRps = 10.0;
    config.curve = RateCurve::burst(200.0, 300.0, 1.0, 2.0);
    config.seed = 1234;
    OpenLoopArrivals stream(config);

    const double horizon = 800.0;
    size_t realized = 0;
    double t = 0.0;
    while ((t = stream.next(t)) >= 0.0 && t <= horizon)
        ++realized;

    const double expected = stream.expectedCount(0.0, horizon);
    EXPECT_GT(expected, 0.0);
    // Poisson: keep 5 sigma around the mean.
    const double slack = 5.0 * std::sqrt(expected) + 1.0;
    EXPECT_NEAR(static_cast<double>(realized), expected, slack);
}

TEST(OpenLoopArrivals, ZeroRateStreamIsExhausted)
{
    OpenLoopConfig config;
    config.baseRps = 0.0;
    OpenLoopArrivals silent(config);
    EXPECT_LT(silent.next(0.0), 0.0);

    // A curve pinned at zero silences a positive base rate too.
    config.baseRps = 5.0;
    config.curve.point(0.0, 0.0);
    OpenLoopArrivals pinned(config);
    EXPECT_LT(pinned.next(0.0), 0.0);
}

TEST(ClosedLoop, ThinkTimeBoundsAndDegenerateRanges)
{
    phoenix::util::Rng rng(99);
    ClosedLoopConfig config;
    config.thinkMinSec = 2.0;
    config.thinkMaxSec = 8.0;
    for (int i = 0; i < 1000; ++i) {
        const double think = sampleThinkTime(rng, config);
        EXPECT_GE(think, 2.0);
        EXPECT_LE(think, 8.0);
    }

    config.thinkMaxSec = 1.0; // max < min collapses to min
    EXPECT_NEAR(sampleThinkTime(rng, config), 2.0, 1e-12);

    config.thinkMinSec = -3.0; // negative bounds never go below 0
    config.thinkMaxSec = -1.0;
    EXPECT_NEAR(sampleThinkTime(rng, config), 0.0, 1e-12);
}
