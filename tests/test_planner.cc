/**
 * @file
 * Tests for the Phoenix planner (Algorithm 1): the PriorityEstimator's
 * criticality/topology-aware per-app ordering and the GlobalRanking's
 * objective-driven merge under an aggregate capacity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/planner.h"
#include "sim/metrics.h"
#include "util/rng.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::Application;
using sim::Microservice;
using sim::MsId;
using sim::PodRef;

namespace {

/** Build an app with the given criticalities and optional edges. */
Application
makeApp(sim::AppId id, const std::vector<int> &tags,
        const std::vector<std::pair<MsId, MsId>> &edges = {},
        const std::vector<double> &cpus = {})
{
    Application app;
    app.id = id;
    app.name = "app" + std::to_string(id);
    app.services.resize(tags.size());
    for (MsId m = 0; m < tags.size(); ++m) {
        app.services[m].id = m;
        app.services[m].criticality = tags[m];
        app.services[m].cpu = m < cpus.size() ? cpus[m] : 1.0;
    }
    if (!edges.empty()) {
        app.hasDependencyGraph = true;
        app.dag = graph::DiGraph(tags.size());
        for (auto [u, v] : edges)
            app.dag.addEdge(u, v);
    }
    return app;
}

/** Position of each service in a rank list. */
std::map<MsId, size_t>
positions(const std::vector<MsId> &rank)
{
    std::map<MsId, size_t> pos;
    for (size_t i = 0; i < rank.size(); ++i)
        pos[rank[i]] = i;
    return pos;
}

} // namespace

TEST(PriorityEstimator, NoDgOrdersByCriticality)
{
    const auto apps = std::vector<Application>{
        makeApp(0, {3, 1, 2, 5, 1})};
    const AppRank ranks = Planner::priorityEstimator(apps);
    ASSERT_EQ(ranks.size(), 1u);
    ASSERT_EQ(ranks[0].size(), 5u);
    // Criticality order: ms1(C1), ms4(C1), ms2(C2), ms0(C3), ms3(C5).
    EXPECT_EQ(ranks[0], (std::vector<MsId>{1, 4, 2, 0, 3}));
}

TEST(PriorityEstimator, EveryServiceAppearsExactlyOnce)
{
    const auto apps = std::vector<Application>{
        makeApp(0, {1, 2, 3, 1, 2},
                {{0, 1}, {0, 2}, {1, 3}, {2, 4}})};
    const AppRank ranks = Planner::priorityEstimator(apps);
    std::set<MsId> seen(ranks[0].begin(), ranks[0].end());
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_EQ(ranks[0].size(), 5u);
}

TEST(PriorityEstimator, TopologyBeforeCriticalityForReachability)
{
    // C1 node (3) reachable only through a C3 node (1): the C3 parent
    // must be ranked before the C1 child (Eq. 2 dominates locally).
    const auto apps = std::vector<Application>{
        makeApp(0, {1, 3, 2, 1}, {{0, 1}, {0, 2}, {1, 3}})};
    const AppRank ranks = Planner::priorityEstimator(apps);
    const auto pos = positions(ranks[0]);
    EXPECT_LT(pos.at(0), pos.at(1));
    EXPECT_LT(pos.at(1), pos.at(3));
}

TEST(PriorityEstimator, EveryPrefixHasActivePredecessors)
{
    // Property: any prefix of the per-app rank forms a valid active
    // set under the topological constraint.
    util::Rng rng(7);
    for (int trial = 0; trial < 30; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(3, 30));
        std::vector<int> tags;
        std::vector<std::pair<MsId, MsId>> edges;
        for (int m = 0; m < n; ++m) {
            tags.push_back(static_cast<int>(rng.uniformInt(1, 5)));
            if (m > 0) {
                const int parents =
                    rng.bernoulli(0.8)
                        ? 1
                        : static_cast<int>(rng.uniformInt(2, 3));
                std::set<MsId> chosen;
                for (int p = 0; p < parents; ++p) {
                    chosen.insert(static_cast<MsId>(
                        rng.uniformInt(0, m - 1)));
                }
                for (MsId p : chosen)
                    edges.emplace_back(p, static_cast<MsId>(m));
            }
        }
        auto apps = std::vector<Application>{makeApp(0, tags, edges)};
        const AppRank ranks = Planner::priorityEstimator(apps);
        ASSERT_EQ(ranks[0].size(), static_cast<size_t>(n));

        sim::ActiveSet active = sim::emptyActiveSet(apps);
        for (MsId m : ranks[0]) {
            active[0][m] = true;
            EXPECT_TRUE(sim::respectsDependencies(apps, active))
                << "trial " << trial << " at ms " << m;
        }
    }
}

TEST(PriorityEstimator, CriticalityOrderHoldsOnMonotoneDags)
{
    // When children are never more critical than parents (the shape
    // the tagging schemes produce), prefixes also respect criticality
    // order (Eq. 1).
    util::Rng rng(13);
    for (int trial = 0; trial < 30; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(3, 25));
        std::vector<int> tags(n, 1);
        std::vector<std::pair<MsId, MsId>> edges;
        for (int m = 1; m < n; ++m) {
            const MsId parent =
                static_cast<MsId>(rng.uniformInt(0, m - 1));
            tags[m] = std::min(
                5, tags[parent] + static_cast<int>(rng.uniformInt(0, 2)));
            edges.emplace_back(parent, static_cast<MsId>(m));
        }
        auto apps = std::vector<Application>{makeApp(0, tags, edges)};
        const AppRank ranks = Planner::priorityEstimator(apps);

        sim::ActiveSet active = sim::emptyActiveSet(apps);
        for (MsId m : ranks[0]) {
            active[0][m] = true;
            EXPECT_TRUE(sim::respectsCriticalityOrder(apps, active))
                << "trial " << trial;
        }
    }
}

TEST(GlobalRank, RespectsAggregateCapacity)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 2, 3}, {}, {4, 4, 4}),
        makeApp(1, {1, 2}, {}, {4, 4})};
    Planner planner;
    FairObjective fair;
    const GlobalRank rank = planner.plan(apps, fair, 12.0);
    double total = 0.0;
    for (const PodRef &pod : rank)
        total += apps[pod.app].services[pod.ms].totalCpu();
    EXPECT_LE(total, 12.0 + 1e-9);
    EXPECT_EQ(rank.size(), 3u);
}

TEST(GlobalRank, PerAppOrderPreserved)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 2, 3, 4}), makeApp(1, {2, 1, 3})};
    Planner planner;
    CostObjective cost;
    const GlobalRank rank = planner.plan(apps, cost, 1000.0);

    std::map<sim::AppId, std::vector<MsId>> per_app;
    for (const PodRef &pod : rank)
        per_app[pod.app].push_back(pod.ms);
    const AppRank expected = Planner::priorityEstimator(apps);
    EXPECT_EQ(per_app[0], expected[0]);
    EXPECT_EQ(per_app[1], expected[1]);
}

TEST(GlobalRank, CostObjectivePrefersExpensiveApps)
{
    auto cheap = makeApp(0, {1, 1}, {}, {2, 2});
    auto pricey = makeApp(1, {1, 1}, {}, {2, 2});
    cheap.pricePerUnit = 1.0;
    pricey.pricePerUnit = 5.0;
    auto apps = std::vector<Application>{cheap, pricey};

    Planner planner;
    CostObjective cost;
    // Capacity for three containers only.
    const GlobalRank rank = planner.plan(apps, cost, 6.0);
    ASSERT_EQ(rank.size(), 3u);
    EXPECT_EQ(rank[0].app, 1u);
    EXPECT_EQ(rank[1].app, 1u);
    // Third slot goes to the cheap app.
    EXPECT_EQ(rank[2].app, 0u);
}

TEST(GlobalRank, FairObjectiveBalancesApps)
{
    // Two identical apps, capacity for half the total demand: fair
    // ranking must split capacity evenly rather than serving one app.
    auto apps = std::vector<Application>{
        makeApp(0, {1, 1, 1, 1}, {}, {2, 2, 2, 2}),
        makeApp(1, {1, 1, 1, 1}, {}, {2, 2, 2, 2})};
    apps[0].pricePerUnit = 9.0; // fairness must ignore price

    Planner planner;
    FairObjective fair;
    const GlobalRank rank = planner.plan(apps, fair, 8.0);
    size_t app0 = 0;
    size_t app1 = 0;
    for (const PodRef &pod : rank) {
        if (pod.app == 0)
            ++app0;
        else
            ++app1;
    }
    EXPECT_EQ(app0, 2u);
    EXPECT_EQ(app1, 2u);
}

TEST(GlobalRank, FairObjectiveGrantsExcessAfterSaturation)
{
    // App 0 demands 2 units, app 1 demands 8; capacity 8. Water-fill
    // share: app0 -> 2, app1 -> 6. The relaxed criterion lets app1 use
    // the leftover beyond its share only after app0 saturates.
    auto apps = std::vector<Application>{
        makeApp(0, {1}, {}, {2}),
        makeApp(1, {1, 1, 1, 1}, {}, {2, 2, 2, 2})};
    Planner planner;
    FairObjective fair;
    const GlobalRank rank = planner.plan(apps, fair, 8.0);
    double app1_usage = 0.0;
    bool app0_served = false;
    for (const PodRef &pod : rank) {
        if (pod.app == 0)
            app0_served = true;
        else
            app1_usage += 2.0;
    }
    EXPECT_TRUE(app0_served);
    EXPECT_NEAR(app1_usage, 6.0, 1e-9);
}

TEST(GlobalRank, StopsAtFirstOverflowByDefault)
{
    // Head of the queue does not fit: Alg. 1 breaks even though a
    // smaller container from another app would fit.
    auto apps = std::vector<Application>{
        makeApp(0, {1}, {}, {10}), makeApp(1, {1}, {}, {1})};
    apps[0].pricePerUnit = 5.0;
    apps[1].pricePerUnit = 1.0;

    Planner stop_planner{PlannerOptions{true}};
    CostObjective cost;
    const GlobalRank stopped = stop_planner.plan(apps, cost, 5.0);
    EXPECT_TRUE(stopped.empty());

    Planner skip_planner{PlannerOptions{false}};
    const GlobalRank skipped = skip_planner.plan(apps, cost, 5.0);
    ASSERT_EQ(skipped.size(), 1u);
    EXPECT_EQ(skipped[0].app, 1u);
}

TEST(GlobalRank, FairObjectiveHandlesNonContiguousAppIds)
{
    // Regression: water-fill shares come back positional, but the
    // objectives look them up by app.id. With sparse ids the old code
    // silently treated any id >= apps.size() as a zero share, ranking
    // that app's every container last; begin() now scatters the shares
    // by id. Two identical apps with ids 7 and 2 must still split
    // capacity evenly.
    auto apps = std::vector<Application>{
        makeApp(7, {1, 1, 1, 1}, {}, {2, 2, 2, 2}),
        makeApp(2, {1, 1, 1, 1}, {}, {2, 2, 2, 2})};

    Planner planner;
    for (const bool reference : {false, true}) {
        PlannerOptions options;
        options.referenceImpl = reference;
        Planner impl{options};
        FairObjective fair;
        const GlobalRank rank = impl.plan(apps, fair, 8.0);
        size_t first = 0;
        size_t second = 0;
        for (const PodRef &pod : rank) {
            // PodRef.app indexes the apps vector, not Application::id.
            (pod.app == 0 ? first : second) += 1;
        }
        EXPECT_EQ(first, 2u) << "referenceImpl=" << reference;
        EXPECT_EQ(second, 2u) << "referenceImpl=" << reference;
    }

    // WeightedFair shares the same id-indexed table; a 3:1 weight on
    // app id 7 must tilt the split even though id 7 sits at position 0.
    std::vector<double> weights(8, 1.0);
    weights[7] = 3.0;
    WeightedFairObjective weighted(weights);
    const GlobalRank rank = planner.plan(apps, weighted, 8.0);
    size_t heavy = 0;
    for (const PodRef &pod : rank)
        heavy += pod.app == 0 ? 1 : 0;
    EXPECT_EQ(heavy, 3u);
}

TEST(GlobalRank, EmptyInputs)
{
    Planner planner;
    FairObjective fair;
    EXPECT_TRUE(planner.plan({}, fair, 100.0).empty());

    auto apps = std::vector<Application>{makeApp(0, {1, 2})};
    EXPECT_TRUE(planner.plan(apps, fair, 0.0).empty());
}
