/**
 * @file
 * Tests for the src/exp experiment-orchestration engine: the
 * work-stealing pool, cell-seed derivation (including the regression
 * for the old additive collision), engine/serial equivalence, the
 * determinism contract across --jobs 1/4/16, and the JSON/CSV report.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <set>
#include <sstream>

#include "adaptlab/environment.h"
#include "adaptlab/runner.h"
#include "core/schemes.h"
#include "exp/engine.h"
#include "exp/grid.h"
#include "exp/pool.h"
#include "exp/report.h"
#include "util/rng.h"

using namespace phoenix;
using namespace phoenix::exp;

namespace {

adaptlab::EnvironmentConfig
tinyEnv(uint64_t seed = 1)
{
    adaptlab::EnvironmentConfig config;
    config.nodeCount = 60;
    config.nodeCapacity = 64.0;
    config.demandFraction = 0.8;
    config.seed = seed;
    config.alibaba.appCount = 4;
    config.alibaba.sizeScale = 0.05;
    return config;
}

SweepGridSpec
tinyGrid(int trials = 3)
{
    SweepGridSpec spec;
    spec.schemes = paperSchemeSpecs(false);
    spec.failureRates = {0.3, 0.7};
    spec.trials = trials;
    spec.seedBase = 100;
    return spec;
}

} // namespace

TEST(Pool, RunsEveryTaskExactlyOnce)
{
    WorkStealingPool pool(4);
    constexpr int kTasks = 500;
    std::vector<std::atomic<int>> hits(kTasks);
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&hits, i] { hits[i].fetch_add(1); });
    pool.wait();
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(Pool, NestedSubmissionFromWorkers)
{
    WorkStealingPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&pool, &count] {
            count.fetch_add(1);
            for (int j = 0; j < 5; ++j)
                pool.submit([&count] { count.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 20 * 6);
}

TEST(Pool, WaitIsReusable)
{
    WorkStealingPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(Pool, ParallelForCoversAllIndexes)
{
    for (int jobs : {1, 4, 16}) {
        std::vector<std::atomic<int>> hits(257);
        parallelFor(jobs, hits.size(),
                    [&hits](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1)
                << "jobs=" << jobs << " index=" << i;
    }
}

TEST(Pool, ShardRunnerPlanMatchesSerial)
{
    // The pool-backed shard executor must leave the sharded planner's
    // outputs and counters exactly where the serial executor (and the
    // monolithic pass) leave them: shards only partition independent
    // per-app work, and per-shard counters merge in shard order.
    const adaptlab::Environment env =
        adaptlab::buildEnvironment(tinyEnv(7));

    core::PhoenixScheme mono(core::Objective::Fair);
    const core::SchemeResult base = mono.apply(env.apps, env.cluster);

    for (int jobs : {1, 4}) {
        core::PlannerOptions planner_opts;
        planner_opts.shardCount = 3;
        planner_opts.shardRunner = shardRunner(jobs);
        core::PackingOptions packing_opts;
        packing_opts.zoneShards = 3;
        packing_opts.shardRunner = shardRunner(jobs);
        core::PhoenixScheme sharded(core::Objective::Fair,
                                    planner_opts, packing_opts);
        const core::SchemeResult got =
            sharded.apply(env.apps, env.cluster);
        ASSERT_EQ(got.plan, base.plan) << "jobs=" << jobs;
        EXPECT_EQ(got.pack.state.assignment(),
                  base.pack.state.assignment())
            << "jobs=" << jobs;
        EXPECT_EQ(got.planOps.heapPushes, base.planOps.heapPushes)
            << "jobs=" << jobs;
        EXPECT_EQ(got.pack.ops.kvOps, base.pack.ops.kvOps)
            << "jobs=" << jobs;
    }
}

TEST(CellSeed, OldAdditiveFormulaCollides)
{
    // The pre-engine derivation was seed_base + t*7919 + rate*1000.
    // bench_fig8c used raw seeds 500+t with the same runner, so its
    // trial t=4 (seed 504) collided with the default sweep's
    // (base=100, rate=0.404, t=0) cell — two "independent" cells
    // sharing one failure draw.
    const auto legacy = [](uint64_t base, double rate, int t) {
        return base + static_cast<uint64_t>(t) * 7919 +
               static_cast<uint64_t>(rate * 1000);
    };
    EXPECT_EQ(legacy(100, 0.404, 0), 500u + 4u); // the collision
    EXPECT_NE(adaptlab::trialSeed(100, 0.404, 0),
              adaptlab::trialSeed(500, 0.404, 0));
}

TEST(CellSeed, UniqueAcrossRealisticGrids)
{
    // Every (base, rate, trial) cell of several overlapping sweeps
    // must map to a distinct seed.
    std::set<uint64_t> seeds;
    size_t cells = 0;
    for (uint64_t base : {100ull, 500ull, 900ull, 1234ull}) {
        for (int r = 1; r <= 99; ++r) {
            const double rate = static_cast<double>(r) / 100.0;
            for (int t = 0; t < 25; ++t) {
                seeds.insert(adaptlab::trialSeed(base, rate, t));
                ++cells;
            }
        }
    }
    EXPECT_EQ(seeds.size(), cells);
}

TEST(CellSeed, SensitiveToEveryCoordinate)
{
    const uint64_t seed = adaptlab::trialSeed(100, 0.5, 3);
    EXPECT_NE(seed, adaptlab::trialSeed(101, 0.5, 3));
    EXPECT_NE(seed, adaptlab::trialSeed(100, 0.5000001, 3));
    EXPECT_NE(seed, adaptlab::trialSeed(100, 0.5, 4));
}

TEST(Grid, EnumeratesCanonicalOrder)
{
    const SweepGridSpec spec = tinyGrid(2);
    const auto cells = enumerateCells(spec);
    ASSERT_EQ(cells.size(), spec.cellCount());
    // scheme-major, then rate, then trial
    EXPECT_EQ(cells[0].scheme, 0u);
    EXPECT_EQ(cells[0].rate, 0u);
    EXPECT_EQ(cells[0].trial, 0);
    EXPECT_EQ(cells[1].trial, 1);
    EXPECT_EQ(cells[2].rate, 1u);
    EXPECT_EQ(cells[4].scheme, 1u);
}

TEST(Grid, FilterKeepsMatchingSchemes)
{
    const auto spec = filterSchemes(tinyGrid(), "Phoenix");
    ASSERT_EQ(spec.schemes.size(), 2u);
    EXPECT_EQ(spec.schemes[0].name, "PhoenixFair");
    EXPECT_EQ(spec.schemes[1].name, "PhoenixCost");
    EXPECT_TRUE(filterSchemes(tinyGrid(), "nomatch").schemes.empty());
    EXPECT_EQ(filterSchemes(tinyGrid(), "").schemes.size(), 5u);
}

TEST(Grid, FilterIsCaseInsensitive)
{
    // `bench_fig8b --filter phoenix` must match PhoenixFair/Cost.
    EXPECT_EQ(filterSchemes(tinyGrid(), "phoenix").schemes.size(), 2u);
    EXPECT_EQ(filterSchemes(tinyGrid(), "PHOENIXfair").schemes.size(),
              1u);
    // PhoenixFair + Fair (tinyGrid excludes the LP schemes).
    EXPECT_EQ(filterSchemes(tinyGrid(), "fAIr").schemes.size(), 2u);
}

TEST(Engine, CanonicalStringIdenticalAcrossImplementations)
{
    // The flat hot path and the reference containers must agree on
    // every deterministic byte of a whole sweep — the ops counters and
    // wall-clock fields are deliberately outside the canonical string,
    // everything else must match exactly.
    const adaptlab::Environment env =
        adaptlab::buildEnvironment(tinyEnv(7));

    const auto gridFor = [](bool reference) {
        core::PlannerOptions planner;
        planner.referenceImpl = reference;
        core::PackingOptions packing;
        packing.referenceImpl = reference;
        SweepGridSpec spec;
        spec.schemes = {
            SchemeSpec{"PhoenixFair",
                       [planner, packing] {
                           return std::make_unique<core::PhoenixScheme>(
                               core::Objective::Fair, planner, packing);
                       }},
            SchemeSpec{"PhoenixCost", [planner, packing] {
                           return std::make_unique<core::PhoenixScheme>(
                               core::Objective::Cost, planner, packing);
                       }}};
        spec.failureRates = {0.2, 0.6};
        spec.trials = 3;
        spec.seedBase = 100;
        return spec;
    };

    const std::string flat =
        canonicalMetricString(runGrid(env, gridFor(false)));
    const std::string reference =
        canonicalMetricString(runGrid(env, gridFor(true)));
    EXPECT_FALSE(flat.empty());
    EXPECT_EQ(flat, reference);
}

TEST(Engine, MatchesLegacySerialSweep)
{
    const adaptlab::Environment env =
        adaptlab::buildEnvironment(tinyEnv());
    SweepGridSpec spec = tinyGrid();

    EngineOptions serial;
    serial.jobs = 1;
    const auto aggregates = runGrid(env, spec, serial);
    const auto rows = toSweepRows(aggregates);

    // The legacy path: one reused scheme instance, serial loops.
    std::vector<adaptlab::SweepRow> legacy;
    for (const auto &schemeSpec : spec.schemes) {
        const auto scheme = schemeSpec.make();
        const auto schemeRows = adaptlab::sweepScheme(
            env, *scheme, spec.failureRates, spec.trials,
            spec.seedBase);
        legacy.insert(legacy.end(), schemeRows.begin(),
                      schemeRows.end());
    }

    ASSERT_EQ(rows.size(), legacy.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].scheme, legacy[i].scheme);
        // Bit-identical: same seeds, same fold order.
        EXPECT_EQ(rows[i].metrics.availability,
                  legacy[i].metrics.availability);
        EXPECT_EQ(rows[i].metrics.availabilityStrict,
                  legacy[i].metrics.availabilityStrict);
        EXPECT_EQ(rows[i].metrics.revenue, legacy[i].metrics.revenue);
        EXPECT_EQ(rows[i].metrics.fairnessPositive,
                  legacy[i].metrics.fairnessPositive);
        EXPECT_EQ(rows[i].metrics.fairnessNegative,
                  legacy[i].metrics.fairnessNegative);
        EXPECT_EQ(rows[i].metrics.utilization,
                  legacy[i].metrics.utilization);
        EXPECT_EQ(rows[i].metrics.requestsServed,
                  legacy[i].metrics.requestsServed);
    }
}

TEST(Engine, DeterministicAcrossJobCounts)
{
    const adaptlab::Environment env =
        adaptlab::buildEnvironment(tinyEnv());
    const SweepGridSpec spec = tinyGrid();

    std::string reference;
    for (int jobs : {1, 4, 16}) {
        EngineOptions options;
        options.jobs = jobs;
        const std::string canonical =
            canonicalMetricString(runGrid(env, spec, options));
        EXPECT_FALSE(canonical.empty());
        if (reference.empty())
            reference = canonical;
        else
            EXPECT_EQ(canonical, reference) << "jobs=" << jobs;
    }
}

TEST(Engine, AggregateStatsAreConsistent)
{
    const adaptlab::Environment env =
        adaptlab::buildEnvironment(tinyEnv());
    SweepGridSpec spec = tinyGrid(4);
    spec.schemes = {spec.schemes[0]}; // PhoenixFair only

    const auto aggregates = runGrid(env, spec, EngineOptions{4});
    ASSERT_EQ(aggregates.size(), spec.failureRates.size());
    for (const auto &agg : aggregates) {
        EXPECT_EQ(agg.trials, 4);
        EXPECT_EQ(agg.failedTrials, 0);
        EXPECT_LE(agg.availability.min, agg.availability.mean);
        EXPECT_LE(agg.availability.mean, agg.availability.max);
        EXPECT_GE(agg.availability.stddev, 0.0);
        EXPECT_GT(agg.wallSeconds, 0.0);
        // The stats' mean agrees with the legacy fold's mean (same
        // sample, different but exact summation — allow float slack).
        EXPECT_NEAR(agg.availability.mean, agg.mean.availability,
                    1e-12);
        EXPECT_NEAR(agg.revenue.mean, agg.mean.revenue, 1e-12);
    }
}

TEST(Report, JsonIsWellFormedAndEscaped)
{
    Report report("unit");
    report.meta("nodes", static_cast<int64_t>(60));
    report.meta("note", "quote \" backslash \\ newline \n done");

    util::Table table({"name", "value"});
    table.row().cell("alpha,beta").cell(1.5);
    report.addTable("tbl", table);

    SweepAggregate agg;
    agg.scheme = "PhoenixFair";
    agg.failureRate = 0.5;
    agg.trials = 3;
    agg.availability = MetricStats{0.9, 0.01, 0.89, 0.91};
    report.addSweep("sweep", {agg});

    std::ostringstream json;
    report.writeJson(json);
    const std::string text = json.str();
    EXPECT_NE(text.find("\"bench\":\"unit\""), std::string::npos);
    EXPECT_NE(text.find("\"nodes\":60"), std::string::npos);
    EXPECT_NE(text.find("quote \\\" backslash \\\\ newline \\n"),
              std::string::npos);
    EXPECT_NE(text.find("\"scheme\":\"PhoenixFair\""),
              std::string::npos);
    EXPECT_NE(text.find("\"availability\":{\"mean\":0.9"),
              std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check; cells
    // with braces would need a real parser, which we avoid here).
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
              std::count(text.begin(), text.end(), '}'));
    EXPECT_EQ(std::count(text.begin(), text.end(), '['),
              std::count(text.begin(), text.end(), ']'));
}

TEST(Report, CsvQuotesAndSections)
{
    Report report("unit");
    util::Table table({"name", "value"});
    table.row().cell("alpha,beta").cell("x\"y");
    report.addTable("tbl", table);

    SweepAggregate agg;
    agg.scheme = "Fair";
    agg.trials = 2;
    report.addSweep("sweep", {agg});

    std::ostringstream csv;
    report.writeCsv(csv);
    const std::string text = csv.str();
    EXPECT_NE(text.find("# unit | tbl"), std::string::npos);
    EXPECT_NE(text.find("# unit | sweep"), std::string::npos);
    EXPECT_NE(text.find("scheme,failure_rate"), std::string::npos);
}

TEST(Report, JsonNumbersRoundTrip)
{
    const double value = 0.1 + 0.2; // not exactly 0.3
    const std::string text = jsonNumber(value);
    EXPECT_EQ(std::stod(text), value);
    EXPECT_EQ(jsonNumber(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
}
