/**
 * @file
 * Unit tests for per-level Recovery Time Objectives (§3.1): level
 * activity semantics, conservative sample-based recovery credit, and
 * policy evaluation including never-recovered and unset-bound rows.
 */

#include <gtest/gtest.h>

#include "core/rto.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::ActiveSet;
using sim::Application;
using sim::MsId;

namespace {

Application
makeApp(sim::AppId id, const std::vector<int> &tags)
{
    Application app;
    app.id = id;
    app.name = "app" + std::to_string(id);
    app.services.resize(tags.size());
    for (MsId m = 0; m < tags.size(); ++m) {
        app.services[m].id = m;
        app.services[m].criticality = tags[m];
        app.services[m].cpu = 1.0;
    }
    return app;
}

ActiveSet
activeSet(const std::vector<Application> &apps,
          const std::vector<std::vector<bool>> &flags)
{
    ActiveSet active;
    for (size_t a = 0; a < apps.size(); ++a)
        active.push_back(flags[a]);
    return active;
}

} // namespace

TEST(Rto, LevelActiveRequiresEveryServiceUpToTheLevel)
{
    const std::vector<Application> apps{makeApp(0, {1, 2, 3})};
    RtoTracker tracker(apps);

    // Only the C1 service is up: level 1 is active, level 2 is not.
    const ActiveSet c1 = activeSet(apps, {{true, false, false}});
    EXPECT_TRUE(tracker.levelActive(0, 1, c1));
    EXPECT_FALSE(tracker.levelActive(0, 2, c1));
    EXPECT_FALSE(tracker.levelActive(0, 3, c1));

    // C2 down but C3 up: level 1 active, levels 2 and 3 are not —
    // level L means *every* service tagged <= L.
    const ActiveSet holey = activeSet(apps, {{true, false, true}});
    EXPECT_TRUE(tracker.levelActive(0, 1, holey));
    EXPECT_FALSE(tracker.levelActive(0, 3, holey));

    // Out-of-range app is never active.
    EXPECT_FALSE(tracker.levelActive(5, 1, c1));
}

TEST(Rto, RecoveryCreditedAtFirstFullyActiveSample)
{
    const std::vector<Application> apps{makeApp(0, {1, 2})};
    RtoTracker tracker(apps);

    // Timeline: healthy at t=0, failure at t=100 knocks both out;
    // C1 returns by the t=130 sample, C2 by t=190.
    tracker.record(0.0, activeSet(apps, {{true, true}}));
    tracker.record(115.0, activeSet(apps, {{false, false}}));
    tracker.record(130.0, activeSet(apps, {{true, false}}));
    tracker.record(190.0, activeSet(apps, {{true, true}}));
    ASSERT_EQ(tracker.sampleCount(), 4u);

    EXPECT_DOUBLE_EQ(tracker.recoveryTime(0, 1, 100.0), 30.0);
    EXPECT_DOUBLE_EQ(tracker.recoveryTime(0, 2, 100.0), 90.0);
    // Samples before the failure don't count — the t=0 healthy
    // snapshot must not credit instant recovery.
    EXPECT_GT(tracker.recoveryTime(0, 1, 100.0), 0.0);
    // A level that never came back reports negative.
    RtoTracker partial(apps);
    partial.record(120.0, activeSet(apps, {{true, false}}));
    EXPECT_LT(partial.recoveryTime(0, 2, 100.0), 0.0);
}

TEST(Rto, EvaluateAppliesPerLevelBounds)
{
    const std::vector<Application> apps{makeApp(0, {1, 2}),
                                        makeApp(1, {1})};
    RtoTracker tracker(apps);
    tracker.record(140.0, activeSet(apps, {{true, false}, {false}}));
    tracker.record(200.0, activeSet(apps, {{true, true}, {false}}));

    std::map<sim::AppId, RtoPolicy> policies;
    policies[0].maxSeconds[1] = 60.0;  // met: recovered at +40
    policies[0].maxSeconds[2] = 60.0;  // missed: recovered at +100
    policies[1].maxSeconds[1] = 300.0; // missed: never recovered

    const auto outcomes = tracker.evaluate(policies, 100.0);
    ASSERT_EQ(outcomes.size(), 3u);

    EXPECT_EQ(outcomes[0].app, 0u);
    EXPECT_EQ(outcomes[0].level, 1);
    EXPECT_DOUBLE_EQ(outcomes[0].recoverySeconds, 40.0);
    EXPECT_FALSE(outcomes[0].violated);

    EXPECT_EQ(outcomes[1].level, 2);
    EXPECT_DOUBLE_EQ(outcomes[1].recoverySeconds, 100.0);
    EXPECT_TRUE(outcomes[1].violated);

    EXPECT_EQ(outcomes[2].app, 1u);
    EXPECT_LT(outcomes[2].recoverySeconds, 0.0);
    EXPECT_TRUE(outcomes[2].violated);
    EXPECT_DOUBLE_EQ(outcomes[2].boundSeconds, 300.0);
}

TEST(Rto, StringentCriticalLenientAuxiliary)
{
    // The paper's diagonal-scaling pitch: one app can meet a tight C1
    // RTO while its auxiliary tail takes far longer, and the tracker
    // reports both truthfully instead of one scalar.
    const std::vector<Application> apps{makeApp(0, {1, 3})};
    RtoTracker tracker(apps);
    tracker.record(110.0, activeSet(apps, {{true, false}}));
    tracker.record(700.0, activeSet(apps, {{true, true}}));

    std::map<sim::AppId, RtoPolicy> policies;
    policies[0].maxSeconds[1] = 30.0;
    policies[0].maxSeconds[3] = 900.0;
    const auto outcomes = tracker.evaluate(policies, 100.0);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].violated);
    EXPECT_DOUBLE_EQ(outcomes[0].recoverySeconds, 10.0);
    EXPECT_FALSE(outcomes[1].violated);
    EXPECT_DOUBLE_EQ(outcomes[1].recoverySeconds, 600.0);
}
