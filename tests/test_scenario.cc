/**
 * @file
 * Tests for the declarative failure-scenario engine: step semantics
 * against a recording FaultTarget, determinism of the seeded random
 * selections, and the kube integration paths — kubelet flaps inside
 * vs outside the node grace period, staggered recovery — with the
 * cluster invariant checker enabled throughout.
 */

#include <gtest/gtest.h>

#include "kube/kube.h"
#include "sim/scenario.h"

using namespace phoenix;
using namespace phoenix::sim;

namespace {

/** FaultTarget that just records injections. */
class FakeTarget : public FaultTarget
{
  public:
    FakeTarget(size_t nodes, double capacity = 8.0)
        : capacities_(nodes, capacity)
    {
    }

    /** Heterogeneous capacities. */
    explicit FakeTarget(std::vector<double> capacities)
        : capacities_(std::move(capacities))
    {
    }

    size_t nodeCount() const override { return capacities_.size(); }
    double
    nodeCapacity(NodeId node) const override
    {
        return capacities_.at(node);
    }
    void injectNodeFailure(NodeId node) override
    {
        injections.push_back({false, node});
    }
    void injectNodeRecovery(NodeId node) override
    {
        injections.push_back({true, node});
    }

    struct Injection
    {
        bool recovery = false;
        NodeId node = 0;
    };
    std::vector<Injection> injections;

  private:
    std::vector<double> capacities_;
};

kube::KubeConfig
checkedConfig()
{
    kube::KubeConfig config;
    config.validateInvariants = true;
    return config;
}

sim::Application
simpleApp(size_t services, double cpu)
{
    sim::Application app;
    app.name = "app";
    app.services.resize(services);
    for (sim::MsId m = 0; m < services; ++m) {
        app.services[m].id = m;
        app.services[m].cpu = cpu;
        app.services[m].criticality = 1;
    }
    return app;
}

} // namespace

TEST(Scenario, FailNodesFiresAtTheRightInstant)
{
    EventQueue events;
    FakeTarget target(4);
    Scenario scenario;
    scenario.failNodes(10.0, {1, 3});
    ScenarioRunner runner(events, target, scenario);

    events.runUntil(9.0);
    EXPECT_TRUE(target.injections.empty());
    events.runUntil(11.0);
    ASSERT_EQ(target.injections.size(), 2u);
    EXPECT_EQ(target.injections[0].node, 1u);
    EXPECT_EQ(target.injections[1].node, 3u);
    EXPECT_EQ(runner.downNodes(), (std::vector<NodeId>{1, 3}));
    EXPECT_DOUBLE_EQ(runner.firstFailureAt(), 10.0);
    ASSERT_EQ(runner.trace().size(), 2u);
    EXPECT_EQ(runner.trace()[0].action, ScenarioAction::Fail);
    EXPECT_DOUBLE_EQ(runner.trace()[0].at, 10.0);
}

TEST(Scenario, DoubleFailureOfANodeInjectsOnce)
{
    EventQueue events;
    FakeTarget target(2);
    Scenario scenario;
    scenario.failNodes(5.0, {0}).failNodes(6.0, {0, 1});
    ScenarioRunner runner(events, target, scenario);
    events.runUntil(10.0);
    // Node 0 only goes down once; the second step adds node 1.
    ASSERT_EQ(target.injections.size(), 2u);
    EXPECT_EQ(target.injections[0].node, 0u);
    EXPECT_EQ(target.injections[1].node, 1u);
    EXPECT_EQ(runner.downNodes().size(), 2u);
}

TEST(Scenario, FailCountIsDeterministicForASeed)
{
    Scenario scenario;
    scenario.failCount(10.0, 3);
    ScenarioOptions options;
    options.seed = 7;

    std::vector<NodeId> first;
    for (int run = 0; run < 2; ++run) {
        EventQueue events;
        FakeTarget target(10);
        ScenarioRunner runner(events, target, scenario, options);
        events.runUntil(20.0);
        ASSERT_EQ(runner.downNodes().size(), 3u);
        if (run == 0)
            first = runner.downNodes();
        else
            EXPECT_EQ(runner.downNodes(), first);
    }
}

TEST(Scenario, FailCapacityFractionIsCumulative)
{
    EventQueue events;
    FakeTarget target({4.0, 4.0, 4.0, 4.0, 16.0}); // total 32
    Scenario scenario;
    scenario.failNodes(5.0, {0})              // 4 CPU down (12.5%)
        .failCapacityFraction(10.0, 0.5);     // top up to >= 16 CPU
    ScenarioRunner runner(events, target, scenario);
    events.runUntil(20.0);
    EXPECT_GE(runner.downCapacity(), 16.0 - 1e-9);
    // The earlier explicit failure counts toward the fraction: the
    // step never needs to take the whole cluster down.
    EXPECT_LT(runner.downNodes().size(), 5u);
}

TEST(Scenario, FailZoneTakesExactlyTheZone)
{
    EventQueue events;
    FakeTarget target(10);
    Scenario scenario;
    scenario.failZone(10.0, 2);
    ScenarioOptions options;
    options.zoneCount = 5;
    ScenarioRunner runner(events, target, scenario, options);
    events.runUntil(20.0);
    EXPECT_EQ(runner.downNodes(), (std::vector<NodeId>{2, 7}));
}

TEST(Scenario, RollingFailSpacesFailures)
{
    EventQueue events;
    FakeTarget target(10);
    Scenario scenario;
    scenario.rollingFail(100.0, 3, 60.0);
    ScenarioRunner runner(events, target, scenario);
    events.runUntil(500.0);

    ASSERT_EQ(runner.trace().size(), 3u);
    EXPECT_DOUBLE_EQ(runner.trace()[0].at, 100.0);
    EXPECT_DOUBLE_EQ(runner.trace()[1].at, 160.0);
    EXPECT_DOUBLE_EQ(runner.trace()[2].at, 220.0);
    EXPECT_EQ(runner.downNodes().size(), 3u); // distinct nodes
}

TEST(Scenario, RecoverAllStaggersAscending)
{
    EventQueue events;
    FakeTarget target(6);
    Scenario scenario;
    scenario.failNodes(10.0, {4, 1, 2}).recoverAll(100.0, 30.0);
    ScenarioRunner runner(events, target, scenario);
    events.runUntil(1000.0);

    EXPECT_TRUE(runner.downNodes().empty());
    std::vector<ScenarioTraceEntry> recoveries;
    for (const auto &entry : runner.trace()) {
        if (entry.action == ScenarioAction::Recover)
            recoveries.push_back(entry);
    }
    ASSERT_EQ(recoveries.size(), 3u);
    // Ascending node order, one every 30 s from t=100.
    EXPECT_EQ(recoveries[0].node, 1u);
    EXPECT_DOUBLE_EQ(recoveries[0].at, 100.0);
    EXPECT_EQ(recoveries[1].node, 2u);
    EXPECT_DOUBLE_EQ(recoveries[1].at, 130.0);
    EXPECT_EQ(recoveries[2].node, 4u);
    EXPECT_DOUBLE_EQ(recoveries[2].at, 160.0);
}

TEST(Scenario, FlapInjectsFailureThenRecovery)
{
    EventQueue events;
    FakeTarget target(3);
    Scenario scenario;
    scenario.flapKubelet(50.0, 1, 25.0);
    ScenarioRunner runner(events, target, scenario);
    events.runUntil(100.0);

    ASSERT_EQ(target.injections.size(), 2u);
    EXPECT_FALSE(target.injections[0].recovery);
    EXPECT_TRUE(target.injections[1].recovery);
    EXPECT_EQ(target.injections[1].node, 1u);
    ASSERT_EQ(runner.trace().size(), 2u);
    EXPECT_DOUBLE_EQ(runner.trace()[1].at, 75.0);
    EXPECT_TRUE(runner.downNodes().empty());
}

TEST(Scenario, FirstFailureAtIgnoresRecoverySteps)
{
    Scenario scenario;
    scenario.recoverAll(50.0).failCount(200.0, 1).failZone(150.0, 0);
    EXPECT_DOUBLE_EQ(scenario.firstFailureAt(), 150.0);

    Scenario quiet;
    quiet.recoverNodes(10.0, {0});
    EXPECT_DOUBLE_EQ(quiet.firstFailureAt(), -1.0);
}

// ---- Kube integration: flaps vs the node grace period -------------

TEST(ScenarioKube, FlapInsideGracePeriodIsInvisible)
{
    sim::EventQueue events;
    auto config = checkedConfig();
    config.nodeGracePeriod = 100.0;
    kube::KubeCluster cluster(events, config);
    const auto n0 = cluster.addNode(8.0);
    cluster.addNode(8.0);
    cluster.addApplication(simpleApp(4, 2.0));
    events.runUntil(200.0);
    ASSERT_EQ(cluster.runningPods().size(), 4u);

    Scenario scenario;
    scenario.flapKubelet(300.0, n0, 50.0); // well inside the 100 s grace
    ScenarioRunner runner(events, cluster, scenario);

    events.runUntil(340.0); // kubelet down, grace not expired
    EXPECT_TRUE(cluster.isReady(n0));
    events.runUntil(600.0);
    // The flap must be a non-event: no NotReady, no eviction sweep,
    // every pod still Running where it was.
    EXPECT_TRUE(cluster.isReady(n0));
    EXPECT_EQ(cluster.evictionEpisodes(n0), 0u);
    EXPECT_EQ(cluster.evictedPodCount(), 0u);
    EXPECT_EQ(cluster.runningPods().size(), 4u);
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

TEST(ScenarioKube, FlapOutsideGracePeriodEvictsExactlyOnce)
{
    sim::EventQueue events;
    auto config = checkedConfig();
    config.nodeGracePeriod = 100.0;
    config.heartbeatPeriod = 10.0;
    kube::KubeCluster cluster(events, config);
    const auto n0 = cluster.addNode(8.0);
    const auto n1 = cluster.addNode(8.0);
    cluster.addApplication(simpleApp(4, 2.0));
    events.runUntil(200.0);
    ASSERT_EQ(cluster.runningPods().size(), 4u);

    Scenario scenario;
    scenario.flapKubelet(300.0, n0, 300.0); // outage >> grace
    ScenarioRunner runner(events, cluster, scenario);

    // NotReady lands at the first node-controller tick after
    // t = 300 + grace; give it one heartbeat of slack.
    events.runUntil(300.0 + 100.0 + 2.0 * config.heartbeatPeriod);
    EXPECT_FALSE(cluster.isReady(n0));
    EXPECT_EQ(cluster.evictionEpisodes(n0), 1u);
    EXPECT_GT(cluster.evictedPodCount(), 0u);

    // Evicted pods re-place on the surviving node and restart.
    events.runUntil(550.0);
    EXPECT_EQ(cluster.runningPods().size(), 4u);
    for (const auto &ref : cluster.runningPods())
        EXPECT_EQ(cluster.pod(ref)->node, n1);

    // Kubelet restarts at t=600; the node must be Ready again within
    // a node-controller tick of the next heartbeat, with exactly the
    // one eviction episode on record.
    events.runUntil(600.0 + 2.0 * config.heartbeatPeriod);
    EXPECT_TRUE(cluster.isReady(n0));
    EXPECT_EQ(cluster.evictionEpisodes(n0), 1u);
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

TEST(ScenarioKube, StaggeredRecoveryRestoresCapacityStepwise)
{
    sim::EventQueue events;
    auto config = checkedConfig();
    kube::KubeCluster cluster(events, config);
    for (int i = 0; i < 4; ++i)
        cluster.addNode(8.0);
    cluster.addApplication(simpleApp(4, 2.0));
    events.runUntil(200.0);

    Scenario scenario;
    scenario.failNodes(300.0, {0, 1, 2}).recoverAll(700.0, 50.0);
    ScenarioRunner runner(events, cluster, scenario);

    events.runUntil(500.0);
    EXPECT_NEAR(cluster.readyCapacity(), 8.0, 1e-9);
    // Recoveries at 700 / 750 / 800; Ready follows within a
    // heartbeat + controller tick.
    events.runUntil(730.0);
    EXPECT_NEAR(cluster.readyCapacity(), 16.0, 1e-9);
    events.runUntil(780.0);
    EXPECT_NEAR(cluster.readyCapacity(), 24.0, 1e-9);
    events.runUntil(830.0);
    EXPECT_NEAR(cluster.readyCapacity(), 32.0, 1e-9);
    EXPECT_EQ(cluster.invariantViolations(), 0u);
    // All pods find a home again.
    events.runUntil(1000.0);
    EXPECT_EQ(cluster.runningPods().size(), 4u);
}

// ---------------------------------------------------------------------
// Extended fault taxonomy: partitions, degrade, API outage, clock skew.
// ---------------------------------------------------------------------

namespace {

/** FakeTarget that also records the extended-taxonomy injections. */
class TaxonomyTarget : public FakeTarget
{
  public:
    using FakeTarget::FakeTarget;

    struct Extended
    {
        std::string kind;
        NodeId node = 0;
        double value = 0.0;
    };
    std::vector<Extended> extended;

    void injectPartition(NodeId node) override
    {
        extended.push_back({"partition", node, 0.0});
    }
    void injectPartitionHeal(NodeId node) override
    {
        extended.push_back({"heal", node, 0.0});
    }
    void injectDegrade(NodeId node, double factor) override
    {
        extended.push_back({"degrade", node, factor});
    }
    void injectClockSkew(NodeId node, double skew) override
    {
        extended.push_back({"skew", node, skew});
    }
    void injectApiOutageBegin() override
    {
        extended.push_back({"outage-begin", 0, 0.0});
    }
    void injectApiOutageEnd() override
    {
        extended.push_back({"outage-end", 0, 0.0});
    }
};

} // namespace

TEST(Scenario, PartitionWindowInjectsAndHeals)
{
    EventQueue events;
    TaxonomyTarget target(4);
    Scenario scenario;
    scenario.partitionNodes(10.0, {1, 2}, 50.0);
    ScenarioRunner runner(events, target, scenario);

    events.runUntil(20.0);
    EXPECT_EQ(runner.partitionedNodes(), (std::vector<NodeId>{1, 2}));
    ASSERT_EQ(target.extended.size(), 2u);
    EXPECT_EQ(target.extended[0].kind, "partition");

    events.runUntil(100.0);
    EXPECT_TRUE(runner.partitionedNodes().empty());
    ASSERT_EQ(target.extended.size(), 4u);
    EXPECT_EQ(target.extended[2].kind, "heal");
    // Partition counts as a failure instant; heal does not.
    EXPECT_DOUBLE_EQ(runner.firstFailureAt(), 10.0);
}

TEST(Scenario, PartitionZoneTakesExactlyTheZone)
{
    EventQueue events;
    TaxonomyTarget target(10);
    Scenario scenario;
    scenario.partitionZone(5.0, 2); // zoneCount 5: nodes 2 and 7
    ScenarioRunner runner(events, target, scenario);

    events.runUntil(6.0);
    EXPECT_EQ(runner.partitionedNodes(), (std::vector<NodeId>{2, 7}));
}

TEST(Scenario, DegradeClampsFactorIntoDomain)
{
    EventQueue events;
    TaxonomyTarget target(2);
    Scenario scenario;
    scenario.degradeNodes(1.0, {0}, 1e-9);  // clamps up to the floor
    scenario.degradeNodes(2.0, {1}, 42.0);  // clamps down to 1.0
    ScenarioRunner runner(events, target, scenario);
    events.runUntil(3.0);

    // A factor clamped to 1.0 is a restore; node 1 was never
    // degraded, so that step is a no-op and nothing reaches the
    // target for it.
    ASSERT_EQ(target.extended.size(), 1u);
    EXPECT_EQ(target.extended[0].kind, "degrade");
    EXPECT_DOUBLE_EQ(target.extended[0].value, kMinDegradeFactor);
    (void)runner;
}

TEST(Scenario, DegradeWindowRestoresAndTracesValues)
{
    EventQueue events;
    TaxonomyTarget target(3);
    Scenario scenario;
    scenario.degradeNodes(10.0, {0, 2}, 0.5, 40.0);
    ScenarioRunner runner(events, target, scenario);

    events.runUntil(60.0);
    ASSERT_EQ(target.extended.size(), 4u);
    EXPECT_DOUBLE_EQ(target.extended[0].value, 0.5);
    EXPECT_DOUBLE_EQ(target.extended[2].value, 1.0);

    size_t degrades = 0;
    size_t restores = 0;
    for (const auto &entry : runner.trace()) {
        if (entry.action == ScenarioAction::Degrade) {
            ++degrades;
            EXPECT_DOUBLE_EQ(entry.value, 0.5);
        }
        if (entry.action == ScenarioAction::Restore)
            ++restores;
    }
    EXPECT_EQ(degrades, 2u);
    EXPECT_EQ(restores, 2u);
}

TEST(Scenario, ApiOutageWindowsMerge)
{
    EventQueue events;
    TaxonomyTarget target(2);
    Scenario scenario;
    scenario.apiOutage(10.0, 50.0);  // [10, 60]
    scenario.apiOutage(30.0, 100.0); // [30, 130] — overlaps
    ScenarioRunner runner(events, target, scenario);

    events.runUntil(40.0);
    EXPECT_EQ(runner.apiOutageDepth(), 2u);
    events.runUntil(70.0);
    EXPECT_EQ(runner.apiOutageDepth(), 1u);
    events.runUntil(140.0);
    EXPECT_EQ(runner.apiOutageDepth(), 0u);

    // The target only ever sees the merged window: one begin, one end.
    std::vector<std::string> kinds;
    for (const auto &entry : target.extended)
        kinds.push_back(entry.kind);
    EXPECT_EQ(kinds,
              (std::vector<std::string>{"outage-begin", "outage-end"}));
}

TEST(Scenario, SkewClockRecordsValue)
{
    EventQueue events;
    TaxonomyTarget target(2);
    Scenario scenario;
    scenario.skewClock(5.0, 1, -42.0);
    scenario.skewClock(20.0, 1, 0.0);
    ScenarioRunner runner(events, target, scenario);
    events.runUntil(30.0);

    ASSERT_EQ(target.extended.size(), 2u);
    EXPECT_DOUBLE_EQ(target.extended[0].value, -42.0);
    EXPECT_DOUBLE_EQ(target.extended[1].value, 0.0);
    ASSERT_EQ(runner.trace().size(), 2u);
    EXPECT_EQ(runner.trace()[0].action, ScenarioAction::ClockSkew);
    EXPECT_DOUBLE_EQ(runner.trace()[0].value, -42.0);
    // Clock skew is not a failure instant.
    EXPECT_DOUBLE_EQ(runner.firstFailureAt(), -1.0);
}

TEST(Scenario, BuildersClampOutOfDomainInputs)
{
    EventQueue events;
    TaxonomyTarget target(4);
    Scenario scenario;
    scenario.failCapacityFraction(1.0, -0.5); // clamps to 0: no-op
    scenario.failCapacityFraction(2.0, 7.0);  // clamps to 1: everything
    scenario.rollingFail(10.0, 2, -5.0);      // interval clamps to 0
    scenario.flapKubelet(20.0, 0, -3.0);      // downtime clamps to 0
    ScenarioRunner runner(events, target, scenario);

    events.runUntil(1.5);
    EXPECT_TRUE(runner.downNodes().empty());
    events.runUntil(3.0);
    EXPECT_EQ(runner.downNodes().size(), 4u);

    // Steps carry the clamped values, deterministically.
    EXPECT_DOUBLE_EQ(scenario.steps()[0].fraction, 0.0);
    EXPECT_DOUBLE_EQ(scenario.steps()[1].fraction, 1.0);
    EXPECT_DOUBLE_EQ(scenario.steps()[2].interval, 0.0);
    EXPECT_DOUBLE_EQ(scenario.steps()[3].downtime, 0.0);
}

TEST(Scenario, NewFaultClassesAreDeterministicForASeed)
{
    // Identical seeds must produce identical injection traces across
    // independent runs — including every extended fault class and the
    // randomized selections interleaved between them.
    auto run = [](uint64_t seed) {
        EventQueue events;
        TaxonomyTarget target(12);
        Scenario scenario;
        scenario.failCount(10.0, 3);
        scenario.partitionNodes(20.0, {1, 4}, 60.0);
        scenario.degradeZone(30.0, 1, 0.5, 40.0);
        scenario.apiOutage(35.0, 30.0);
        scenario.skewClock(40.0, 7, -120.0);
        scenario.failCapacityFraction(50.0, 0.4);
        scenario.recoverAll(200.0, 5.0);
        ScenarioOptions options;
        options.seed = seed;
        ScenarioRunner runner(events, target, scenario, options);
        events.runUntil(300.0);
        return runner.trace();
    };

    const auto a = run(9);
    const auto b = run(9);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].action, b[i].action);
        EXPECT_EQ(a[i].node, b[i].node);
        EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
    }
    const auto c = run(10);
    bool same = a.size() == c.size();
    if (same) {
        for (size_t i = 0; i < a.size(); ++i) {
            if (a[i].action != c[i].action || a[i].node != c[i].node)
                same = false;
        }
    }
    EXPECT_FALSE(same);
}
