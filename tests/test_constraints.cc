/**
 * @file
 * Topology-aware packing tests: vacancy-allocator unit coverage,
 * constraint-respecting placement through the full Phoenix scheme and
 * the kube spread scheduler, PodDisruptionBudget bookkeeping, the
 * manifest constraint dialect (structured errors + round-trip), the
 * constraint-feasibility oracle on handmade and generated cases, and
 * the pinned end-to-end zone-kill demo: a minZoneSpread=2 critical
 * service keeps >= 1 replica serving through a full zone failure that
 * silences the unconstrained baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/case.h"
#include "check/generator.h"
#include "check/oracle.h"
#include "core/constraints.h"
#include "core/controller.h"
#include "core/schemes.h"
#include "kube/kube.h"
#include "kube/manifest.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::PodRef;

namespace {

sim::Application
oneServiceApp(double cpu, int replicas, int criticality = 1,
              double price = 1.0)
{
    sim::Application app;
    app.id = 0;
    app.name = "app";
    app.pricePerUnit = price;
    sim::Microservice ms;
    ms.id = 0;
    ms.name = "svc";
    ms.cpu = cpu;
    ms.criticality = criticality;
    ms.replicas = replicas;
    app.services.push_back(ms);
    return app;
}

} // namespace

// ---------------------------------------------------------------------
// VacancyAllocator
// ---------------------------------------------------------------------

TEST(VacancyAllocator, UnconstrainedAppsLeaveItEmpty)
{
    sim::ClusterState state;
    state.addNode(8.0);
    const std::vector<sim::Application> apps = {
        oneServiceApp(1.0, 2)};

    VacancyAllocator vacancy;
    vacancy.build(apps, state);
    EXPECT_TRUE(vacancy.empty());
    EXPECT_FALSE(vacancy.constrained(PodRef{0, 0, 0}));
    EXPECT_TRUE(vacancy.canPlace(PodRef{0, 0, 0}, 0));
    EXPECT_TRUE(vacancy.pdbAllows(PodRef{0, 0, 0}));
}

TEST(VacancyAllocator, PerNodeCapBlocksCohabitation)
{
    sim::ClusterState state;
    state.addNode(8.0);
    state.addNode(8.0);
    auto app = oneServiceApp(1.0, 2);
    app.services[0].maxPerNode = 1;
    const std::vector<sim::Application> apps = {app};

    VacancyAllocator vacancy;
    vacancy.build(apps, state);
    EXPECT_FALSE(vacancy.empty());
    EXPECT_TRUE(vacancy.constrained(PodRef{0, 0, 0}));

    EXPECT_TRUE(vacancy.canPlace(PodRef{0, 0, 0}, 0));
    vacancy.onPlace(PodRef{0, 0, 0}, 0);
    EXPECT_FALSE(vacancy.canPlace(PodRef{0, 0, 1}, 0));
    EXPECT_TRUE(vacancy.canPlace(PodRef{0, 0, 1}, 1));

    // Eviction restores the vacancy.
    vacancy.onEvict(PodRef{0, 0, 0}, 0);
    EXPECT_TRUE(vacancy.canPlace(PodRef{0, 0, 1}, 0));
}

TEST(VacancyAllocator, MinZoneSpreadImpliesPerZoneCap)
{
    // 3 replicas spanning >= 2 zones implies at most 3-2+1 = 2 per
    // zone.
    sim::ClusterState state;
    state.addNode(8.0, 0);
    state.addNode(8.0, 0);
    state.addNode(8.0, 1);
    state.addNode(8.0, 1);
    auto app = oneServiceApp(1.0, 3);
    app.services[0].minZoneSpread = 2;
    EXPECT_EQ(app.services[0].effectiveZoneCap(), 2);
    const std::vector<sim::Application> apps = {app};

    VacancyAllocator vacancy;
    vacancy.build(apps, state);
    vacancy.onPlace(PodRef{0, 0, 0}, 0);
    vacancy.onPlace(PodRef{0, 0, 1}, 1);
    // Zone 0 is at its cap of 2; zone 1 still has vacancy.
    EXPECT_FALSE(vacancy.canPlace(PodRef{0, 0, 2}, 0));
    EXPECT_FALSE(vacancy.canPlace(PodRef{0, 0, 2}, 1));
    EXPECT_TRUE(vacancy.canPlace(PodRef{0, 0, 2}, 2));
}

TEST(VacancyAllocator, GroupCapSpansServices)
{
    sim::ClusterState state;
    state.addNode(8.0);
    state.addNode(8.0);

    sim::Application app;
    app.id = 0;
    app.name = "grouped";
    sim::PlacementGroup group;
    group.id = 3;
    group.maxPerNode = 1;
    app.placementGroups.push_back(group);
    for (sim::MsId m = 0; m < 2; ++m) {
        sim::Microservice ms;
        ms.id = m;
        ms.name = m == 0 ? "web" : "api";
        ms.cpu = 1.0;
        ms.antiAffinityGroup = 3;
        app.services.push_back(ms);
    }
    const std::vector<sim::Application> apps = {app};

    VacancyAllocator vacancy;
    vacancy.build(apps, state);
    vacancy.onPlace(PodRef{0, 0, 0}, 0);
    // A *different service* of the same group is blocked on node 0.
    EXPECT_FALSE(vacancy.canPlace(PodRef{0, 1, 0}, 0));
    EXPECT_TRUE(vacancy.canPlace(PodRef{0, 1, 0}, 1));
}

TEST(VacancyAllocator, BuildSeedsCountsFromExistingAssignment)
{
    sim::ClusterState state;
    state.addNode(8.0);
    state.addNode(8.0);
    auto app = oneServiceApp(1.0, 2);
    app.services[0].maxPerNode = 1;
    const std::vector<sim::Application> apps = {app};
    ASSERT_TRUE(state.place(PodRef{0, 0, 0}, 0, 1.0));

    VacancyAllocator vacancy;
    vacancy.build(apps, state);
    // The pre-existing replica on node 0 already consumed the cap.
    EXPECT_FALSE(vacancy.canPlace(PodRef{0, 0, 1}, 0));
    EXPECT_TRUE(vacancy.canPlace(PodRef{0, 0, 1}, 1));
}

TEST(VacancyAllocator, PdbLedgerConsumesAndNeverRefunds)
{
    sim::ClusterState state;
    state.addNode(8.0);
    auto app = oneServiceApp(1.0, 3);
    app.services[0].pdbMaxUnavailable = 1;
    const std::vector<sim::Application> apps = {app};

    VacancyAllocator vacancy;
    vacancy.build(apps, state);
    // A PDB alone bounds disruption, not placement.
    EXPECT_FALSE(vacancy.constrained(PodRef{0, 0, 0}));
    EXPECT_TRUE(vacancy.pdbAllows(PodRef{0, 0, 0}));
    EXPECT_EQ(vacancy.pdbRemaining(PodRef{0, 0, 0}), 1);
    vacancy.consumePdb(PodRef{0, 0, 0});
    EXPECT_FALSE(vacancy.pdbAllows(PodRef{0, 0, 1}));
    EXPECT_EQ(vacancy.pdbRemaining(PodRef{0, 0, 1}), 0);
}

// ---------------------------------------------------------------------
// Constrained packing through the full Phoenix scheme
// ---------------------------------------------------------------------

TEST(ConstrainedPacking, PhoenixSpreadsReplicasAcrossZones)
{
    sim::ClusterState state;
    state.addNode(8.0, 0);
    state.addNode(8.0, 0);
    state.addNode(8.0, 1);
    state.addNode(8.0, 1);
    auto app = oneServiceApp(2.0, 2);
    app.services[0].minZoneSpread = 2;
    const std::vector<sim::Application> apps = {app};

    PhoenixScheme phoenix(Objective::Cost);
    const SchemeResult result = phoenix.apply(apps, state);
    ASSERT_TRUE(result.pack.complete);

    std::set<uint32_t> zones;
    for (const auto &[pod, node] : result.pack.state.assignment())
        zones.insert(result.pack.state.zoneOf(node));
    EXPECT_EQ(zones.size(), 2u);
}

TEST(ConstrainedPacking, PhoenixHonorsAntiAffinityMaxPerNode)
{
    sim::ClusterState state;
    for (int n = 0; n < 4; ++n)
        state.addNode(8.0);
    auto app = oneServiceApp(1.0, 3);
    app.services[0].maxPerNode = 1;
    const std::vector<sim::Application> apps = {app};

    PhoenixScheme phoenix(Objective::Fair);
    const SchemeResult result = phoenix.apply(apps, state);
    ASSERT_TRUE(result.pack.complete);

    std::set<sim::NodeId> nodes;
    for (const auto &[pod, node] : result.pack.state.assignment())
        nodes.insert(node);
    // 3 replicas, cap 1 per node -> 3 distinct nodes even though one
    // node could hold all of them by capacity.
    EXPECT_EQ(nodes.size(), 3u);
}

TEST(ConstrainedPacking, DeletesStayWithinDisruptionBudget)
{
    // A capacity crunch that forces the packer to preempt a budgeted
    // low-criticality service: the resulting action stream must obey
    // the oracle's PDB predicate (deletes per service <= budget unless
    // the service ends fully down).
    sim::ClusterState state;
    state.addNode(4.0);
    state.addNode(4.0);

    sim::Application victim = oneServiceApp(1.0, 4, 5, 0.5);
    victim.id = 0;
    victim.name = "victim";
    victim.services[0].pdbMaxUnavailable = 1;
    victim.services[0].quorum = 1;
    ASSERT_TRUE(state.place(PodRef{0, 0, 0}, 0, 1.0));
    ASSERT_TRUE(state.place(PodRef{0, 0, 1}, 0, 1.0));
    ASSERT_TRUE(state.place(PodRef{0, 0, 2}, 1, 1.0));
    ASSERT_TRUE(state.place(PodRef{0, 0, 3}, 1, 1.0));

    sim::Application critical = oneServiceApp(3.0, 1, 1, 5.0);
    critical.id = 1;
    critical.name = "critical";

    const std::vector<sim::Application> apps = {victim, critical};
    PhoenixScheme phoenix(Objective::Cost);
    const SchemeResult result = phoenix.apply(apps, state);

    size_t victim_deletes = 0;
    for (const Action &action : result.pack.actions) {
        if (action.kind == ActionKind::Delete &&
            action.pod.app == 0 && action.pod.ms == 0)
            ++victim_deletes;
    }
    size_t victim_placed = 0;
    for (const auto &[pod, node] : result.pack.state.assignment()) {
        (void)node;
        if (pod.app == 0 && pod.ms == 0)
            ++victim_placed;
    }
    if (victim_placed > 0) {
        EXPECT_LE(victim_deletes, 1u)
            << "preemption exceeded pdbMaxUnavailable";
    }
    // The critical service must have won its slot.
    EXPECT_TRUE(result.pack.state.isActive(PodRef{1, 0, 0}));
}

// ---------------------------------------------------------------------
// Kube scheduler + migration validation
// ---------------------------------------------------------------------

TEST(ConstrainedKube, SpreadSchedulerHonorsZoneSpread)
{
    sim::EventQueue events;
    kube::KubeConfig config;
    config.validateInvariants = true;
    kube::KubeCluster cluster(events, config);
    cluster.addNode(8.0, 0);
    cluster.addNode(8.0, 0);
    cluster.addNode(8.0, 1);
    cluster.addNode(8.0, 1);

    auto app = oneServiceApp(1.0, 2);
    app.services[0].minZoneSpread = 2;
    cluster.addApplication(app);
    events.runUntil(100.0);

    ASSERT_EQ(cluster.runningPods().size(), 2u);
    std::set<int> zones;
    for (const PodRef &pod : cluster.runningPods())
        zones.insert(cluster.nodeZone(cluster.pod(pod)->node));
    // Least-allocated scoring alone would pick nodes 0 and 1 (both
    // zone 0); the vacancy filter forces the second replica out.
    EXPECT_EQ(zones, (std::set<int>{0, 1}));
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

TEST(ConstrainedKube, MigrationWithoutVacancyIsRejected)
{
    sim::EventQueue events;
    kube::KubeConfig config;
    config.validateInvariants = true;
    kube::KubeCluster cluster(events, config);
    cluster.addNode(8.0, 0);
    cluster.addNode(8.0, 0);
    cluster.addNode(8.0, 1);

    auto app = oneServiceApp(1.0, 2);
    app.services[0].minZoneSpread = 2;
    cluster.addApplication(app);
    events.runUntil(100.0);
    ASSERT_EQ(cluster.runningPods().size(), 2u);

    // Find the replica serving from zone 1 and try to drag it into
    // zone 0, which already holds its sibling (zone cap is 1).
    PodRef zone1_pod{};
    for (const PodRef &pod : cluster.runningPods()) {
        if (cluster.nodeZone(cluster.pod(pod)->node) == 1)
            zone1_pod = pod;
    }
    const sim::NodeId before = cluster.pod(zone1_pod)->node;
    cluster.migratePod(zone1_pod, 1);
    events.runUntil(160.0);

    const kube::Pod *pod = cluster.pod(zone1_pod);
    ASSERT_NE(pod, nullptr);
    EXPECT_EQ(pod->phase, kube::PodPhase::Running);
    EXPECT_EQ(pod->node, before);
    EXPECT_EQ(cluster.invariantViolations(), 0u);
}

// ---------------------------------------------------------------------
// The pinned end-to-end demo: zone kill vs minZoneSpread
// ---------------------------------------------------------------------

namespace {

/** Two-zone rig: zone 0 is the *tightest* best-fit target, so an
 * unconstrained Phoenix packs both replicas there; only the spread
 * constraint pushes a replica into zone 1. The default scheduler is
 * off — placement flows exclusively through Phoenix pins. */
struct ZoneKillRig
{
    sim::EventQueue events;
    std::unique_ptr<kube::KubeCluster> cluster;
    std::unique_ptr<PhoenixController> controller;

    explicit ZoneKillRig(int min_zone_spread)
    {
        kube::KubeConfig config;
        config.enableDefaultScheduler = false;
        config.validateInvariants = true;
        cluster = std::make_unique<kube::KubeCluster>(events, config);
        cluster->addNode(2.0, 0);
        cluster->addNode(2.0, 0);
        cluster->addNode(8.0, 1);
        cluster->addNode(8.0, 1);

        auto app = oneServiceApp(1.5, 2, 1, 2.0);
        app.services[0].quorum = 1;
        app.services[0].minZoneSpread = min_zone_spread;
        cluster->addApplication(app);

        controller = std::make_unique<PhoenixController>(
            events, *cluster,
            std::make_unique<PhoenixScheme>(Objective::Cost));
    }

    /** Replicas actually serving: Running on a node whose kubelet is
     * alive (a Running pod on a dead node serves nothing). */
    size_t
    servingReplicas() const
    {
        size_t serving = 0;
        for (const PodRef &pod : cluster->runningPods()) {
            if (cluster->kubeletRunning(cluster->pod(pod)->node))
                ++serving;
        }
        return serving;
    }

    void
    killZone0()
    {
        cluster->stopKubelet(0);
        cluster->stopKubelet(1);
    }
};

} // namespace

TEST(ZoneKillDemo, UnconstrainedBaselineLosesEveryReplica)
{
    ZoneKillRig rig(/*min_zone_spread=*/0);
    rig.events.runUntil(200.0);
    ASSERT_EQ(rig.cluster->runningPods().size(), 2u);

    // Best-fit packs both replicas onto the tight zone-0 nodes.
    std::set<int> zones;
    for (const PodRef &pod : rig.cluster->runningPods())
        zones.insert(
            rig.cluster->nodeZone(rig.cluster->pod(pod)->node));
    ASSERT_EQ(zones, (std::set<int>{0}));

    rig.killZone0();
    rig.events.runUntil(205.0);
    // The whole service went dark with the zone.
    EXPECT_EQ(rig.servingReplicas(), 0u);

    // Phoenix eventually restores service on the surviving zone.
    rig.events.runUntil(800.0);
    EXPECT_GE(rig.servingReplicas(), 1u);
    EXPECT_EQ(rig.cluster->invariantViolations(), 0u);
}

TEST(ZoneKillDemo, MinZoneSpreadKeepsServingThroughZoneKill)
{
    ZoneKillRig rig(/*min_zone_spread=*/2);
    rig.events.runUntil(200.0);
    ASSERT_EQ(rig.cluster->runningPods().size(), 2u);

    // The spread constraint forced one replica into each zone.
    std::set<int> zones;
    for (const PodRef &pod : rig.cluster->runningPods())
        zones.insert(
            rig.cluster->nodeZone(rig.cluster->pod(pod)->node));
    ASSERT_EQ(zones, (std::set<int>{0, 1}));

    rig.killZone0();
    // Continuity: the zone-1 replica keeps serving at every instant —
    // through detection, the replan, and the drain window. The
    // implied per-zone cap (replicas - spread + 1 = 1) also means
    // Phoenix must NOT pile both replicas into the surviving zone.
    for (double t = 205.0; t <= 800.0; t += 10.0) {
        rig.events.runUntil(t);
        ASSERT_GE(rig.servingReplicas(), 1u) << "went dark at t=" << t;
        ASSERT_LE(rig.cluster->runningPods().size(), 2u);
    }
    EXPECT_EQ(rig.servingReplicas(), 1u);

    // Zone recovery: the second replica returns and the replica set
    // spans two zones again.
    rig.cluster->startKubelet(0);
    rig.cluster->startKubelet(1);
    rig.events.runUntil(1100.0);
    EXPECT_EQ(rig.servingReplicas(), 2u);
    std::set<int> after;
    for (const PodRef &pod : rig.cluster->runningPods())
        after.insert(
            rig.cluster->nodeZone(rig.cluster->pod(pod)->node));
    EXPECT_EQ(after, (std::set<int>{0, 1}));
    EXPECT_EQ(rig.cluster->invariantViolations(), 0u);
}

// ---------------------------------------------------------------------
// Manifest: structured errors + round-trip for the constraint dialect
// ---------------------------------------------------------------------

TEST(ConstraintManifest, UnknownZoneIsAStructuredError)
{
    const std::string text = "topology: t\n"
                             "zones: [east, west]\n"
                             "nodes:\n"
                             "  - count: 2\n"
                             "    cpus: 8.0\n"
                             "    zone: nowhere\n";
    const auto parse = kube::parseManifestStructured(text);
    ASSERT_EQ(parse.errors.size(), 1u);
    EXPECT_EQ(parse.errors[0].line, 6u);
    EXPECT_EQ(parse.errors[0].field, "zone");
    EXPECT_EQ(parse.errors[0].message, "unknown zone 'nowhere'");
    EXPECT_TRUE(parse.topology.empty());
}

TEST(ConstraintManifest, SpreadBeyondZoneCountIsAStructuredError)
{
    const std::string text = "topology: t\n"
                             "zones: [east, west]\n"
                             "nodes:\n"
                             "  - count: 2\n"
                             "    cpus: 8.0\n"
                             "---\n"
                             "application: a\n"
                             "services:\n"
                             "  - name: web\n"
                             "    cpu: 1.0\n"
                             "    replicas: 3\n"
                             "    minZoneSpread: 3\n";
    const auto parse = kube::parseManifestStructured(text);
    ASSERT_EQ(parse.errors.size(), 1u);
    EXPECT_EQ(parse.errors[0].line, 12u);
    EXPECT_EQ(parse.errors[0].field, "minZoneSpread");
    EXPECT_EQ(parse.errors[0].message,
              "minZoneSpread 3 of service 'web' exceeds zone count 2");
    // The offending app is rejected; the topology itself is fine.
    EXPECT_TRUE(parse.apps.empty());
    EXPECT_EQ(parse.topology.zones.size(), 2u);
}

TEST(ConstraintManifest, PdbBeyondReplicasIsAStructuredError)
{
    const std::string text = "application: a\n"
                             "services:\n"
                             "  - name: web\n"
                             "    cpu: 1.0\n"
                             "    replicas: 2\n"
                             "    pdbMaxUnavailable: 3\n";
    const auto parse = kube::parseManifestStructured(text);
    ASSERT_EQ(parse.errors.size(), 1u);
    EXPECT_EQ(parse.errors[0].line, 6u);
    EXPECT_EQ(parse.errors[0].field, "pdbMaxUnavailable");
    EXPECT_EQ(parse.errors[0].message,
              "pdbMaxUnavailable 3 exceeds replicas 2 of service "
              "'web'");
    EXPECT_TRUE(parse.apps.empty());
}

TEST(ConstraintManifest, DuplicateGroupIdIsAStructuredError)
{
    const std::string text = "application: a\n"
                             "groups:\n"
                             "  - id: 1\n"
                             "    maxPerNode: 1\n"
                             "  - id: 1\n"
                             "    maxPerNode: 2\n"
                             "services:\n"
                             "  - name: web\n"
                             "    cpu: 1.0\n";
    const auto parse = kube::parseManifestStructured(text);
    ASSERT_EQ(parse.errors.size(), 1u);
    EXPECT_EQ(parse.errors[0].line, 5u);
    EXPECT_EQ(parse.errors[0].field, "id");
    EXPECT_EQ(parse.errors[0].message, "duplicate group id 1");
    EXPECT_TRUE(parse.apps.empty());
}

TEST(ConstraintManifest, ConstrainedCloudLabManifestRoundTrips)
{
    // A CloudLab-shaped constrained deployment: explicit topology plus
    // every constraint key the dialect supports.
    const std::string text = "topology: cloudlab\n"
                             "zones: [east, west, central]\n"
                             "nodes:\n"
                             "  - count: 9\n"
                             "    cpus: 8.0\n"
                             "    zone: east\n"
                             "  - count: 8\n"
                             "    cpus: 8.0\n"
                             "    zone: west\n"
                             "  - count: 8\n"
                             "    cpus: 8.0\n"
                             "    zone: central\n"
                             "---\n"
                             "application: overleaf\n"
                             "price: 2.0\n"
                             "groups:\n"
                             "  - id: 1\n"
                             "    maxPerNode: 1\n"
                             "    maxPerZone: 2\n"
                             "services:\n"
                             "  - name: web\n"
                             "    cpu: 2.0\n"
                             "    criticality: 1\n"
                             "    replicas: 3\n"
                             "    group: 1\n"
                             "    minZoneSpread: 2\n"
                             "    pdbMaxUnavailable: 1\n"
                             "  - name: chat\n"
                             "    cpu: 0.5\n"
                             "    criticality: 5\n"
                             "    maxPerNode: 2\n"
                             "    maxPerZone: 3\n"
                             "    upstream: [web]\n"
                             "---\n"
                             "application: hotel\n"
                             "price: 1.4\n"
                             "phoenix: disabled\n"
                             "services:\n"
                             "  - name: search\n"
                             "    cpu: 1.25\n"
                             "    replicas: 2\n"
                             "    pdbMaxUnavailable: 2\n";
    const auto first = kube::parseManifestStructured(text);
    ASSERT_TRUE(first.ok()) << first.errors[0].toString();
    ASSERT_EQ(first.apps.size(), 2u);
    ASSERT_EQ(first.topology.zones.size(), 3u);
    ASSERT_EQ(first.topology.nodes.size(), 3u);

    const std::string rendered =
        kube::renderManifest(first.apps, first.topology);
    const auto second = kube::parseManifestStructured(rendered);
    ASSERT_TRUE(second.ok()) << rendered;

    // Topology survives.
    EXPECT_EQ(second.topology.zones, first.topology.zones);
    ASSERT_EQ(second.topology.nodes.size(),
              first.topology.nodes.size());
    for (size_t n = 0; n < first.topology.nodes.size(); ++n) {
        EXPECT_EQ(second.topology.nodes[n].count,
                  first.topology.nodes[n].count);
        EXPECT_EQ(second.topology.nodes[n].cpus,
                  first.topology.nodes[n].cpus);
        EXPECT_EQ(second.topology.nodes[n].zone,
                  first.topology.nodes[n].zone);
    }

    // Every constraint field survives.
    ASSERT_EQ(second.apps.size(), first.apps.size());
    for (size_t a = 0; a < first.apps.size(); ++a) {
        const auto &fa = first.apps[a];
        const auto &sa = second.apps[a];
        EXPECT_EQ(sa.name, fa.name);
        EXPECT_EQ(sa.pricePerUnit, fa.pricePerUnit);
        EXPECT_EQ(sa.phoenixEnabled, fa.phoenixEnabled);
        ASSERT_EQ(sa.placementGroups.size(),
                  fa.placementGroups.size());
        for (size_t g = 0; g < fa.placementGroups.size(); ++g) {
            EXPECT_EQ(sa.placementGroups[g].id,
                      fa.placementGroups[g].id);
            EXPECT_EQ(sa.placementGroups[g].maxPerNode,
                      fa.placementGroups[g].maxPerNode);
            EXPECT_EQ(sa.placementGroups[g].maxPerZone,
                      fa.placementGroups[g].maxPerZone);
        }
        ASSERT_EQ(sa.services.size(), fa.services.size());
        for (size_t m = 0; m < fa.services.size(); ++m) {
            const auto &fm = fa.services[m];
            const auto &sm = sa.services[m];
            EXPECT_EQ(sm.name, fm.name);
            EXPECT_EQ(sm.cpu, fm.cpu);
            EXPECT_EQ(sm.criticality, fm.criticality);
            EXPECT_EQ(sm.replicas, fm.replicas);
            EXPECT_EQ(sm.antiAffinityGroup, fm.antiAffinityGroup);
            EXPECT_EQ(sm.maxPerNode, fm.maxPerNode);
            EXPECT_EQ(sm.maxPerZone, fm.maxPerZone);
            EXPECT_EQ(sm.minZoneSpread, fm.minZoneSpread);
            EXPECT_EQ(sm.pdbMaxUnavailable, fm.pdbMaxUnavailable);
        }
        EXPECT_EQ(sa.hasDependencyGraph, fa.hasDependencyGraph);
    }
}

// ---------------------------------------------------------------------
// Constraint-feasibility oracle
// ---------------------------------------------------------------------

TEST(ConstraintOracle, HandmadeZoneSpreadCaseIsClean)
{
    check::CheckCase c;
    c.name = "constraints-zone-spread";
    c.lifecycle = true;
    c.nodeCapacities = {8, 8, 8, 8};
    c.nodeZones = {0, 0, 1, 1};
    auto app = oneServiceApp(2.0, 2, 1, 2.0);
    app.services[0].minZoneSpread = 2;
    app.services[0].quorum = 1;
    c.apps.push_back(app);
    check::CaseStep fail;
    fail.at = 200.0;
    fail.nodes = {0, 1};
    c.steps.push_back(fail);

    const auto result = check::checkCase(c);
    EXPECT_TRUE(result.ok())
        << (result.violations.empty()
                ? ""
                : result.violations[0].property + ": " +
                      result.violations[0].detail);
}

TEST(ConstraintOracle, GeneratedConstrainedCasesAreClean)
{
    // A tier-1 slice of the constrained fuzz sweep (the long run is
    // the constraint_fuzz_long ctest target): every generated case
    // with placement policies must pass the constraint-feasibility
    // and pdb-budget dimensions across all schemes.
    check::GeneratorOptions gen;
    gen.antiAffinityProbability = 0.5;
    gen.pdbProbability = 0.5;
    gen.zoneSpreadProbability = 0.5;
    gen.nodeCapProbability = 0.5;
    check::OracleOptions oracle;
    oracle.runLp = false; // keep the tier-1 run fast

    size_t constrained_cases = 0;
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        const check::CheckCase c = check::generateCase(seed, gen);
        if (c.constrained())
            ++constrained_cases;
        const auto result = check::checkCase(c, oracle);
        EXPECT_TRUE(result.ok())
            << "seed " << seed << ": "
            << (result.violations.empty()
                    ? ""
                    : result.violations[0].property + " [" +
                          result.violations[0].scheme + "] " +
                          result.violations[0].detail);
    }
    // The probabilities above make unconstrained cases vanishingly
    // rare; make sure the dimension actually exercised something.
    EXPECT_GE(constrained_cases, 20u);
}
