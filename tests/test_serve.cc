/**
 * @file
 * Tests for the serving layer (src/serve): request-class derivation,
 * windowed SLO accounting, criticality-aware admission control with
 * hysteresis and plan-aware shedding, the end-to-end serving harness
 * (determinism + exact admission accounting), and the phoenixd
 * command protocol.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "serve/daemon.h"
#include "serve/harness.h"
#include "serve/serve.h"
#include "serve/slo.h"
#include "util/json.h"

using namespace phoenix;
using namespace phoenix::serve;

namespace {

/** Two-service app: front (C1) and extras (C5), three request types —
 * one touching only front, one requiring both, one where extras is
 * optional. */
apps::ServiceApp
tinyApp(sim::AppId id)
{
    apps::ServiceApp sapp;
    sapp.app.id = id;
    sapp.app.name = "tiny" + std::to_string(id);
    sapp.app.pricePerUnit = 1.0;

    sim::Microservice front;
    front.id = 0;
    front.name = "front";
    front.cpu = 2.0;
    front.criticality = sim::kC1;
    sim::Microservice extras;
    extras.id = 1;
    extras.name = "extras";
    extras.cpu = 1.0;
    extras.criticality = 5;
    sapp.app.services = {front, extras};

    apps::RequestType core;
    core.name = "core";
    core.offeredRps = 10.0;
    core.path.push_back(apps::PathComponent{0, true, 1.0, 40.0});

    apps::RequestType both;
    both.name = "both";
    both.offeredRps = 4.0;
    both.path.push_back(apps::PathComponent{0, true, 0.6, 40.0});
    both.path.push_back(apps::PathComponent{1, true, 0.4, 20.0});

    apps::RequestType opt;
    opt.name = "opt";
    opt.offeredRps = 2.0;
    opt.path.push_back(apps::PathComponent{0, true, 0.8, 10.0});
    opt.path.push_back(apps::PathComponent{1, false, 0.2, 5.0});

    sapp.requests = {core, both, opt};
    sapp.criticalRequest = "core";
    return sapp;
}

RequestClass
classWith(sim::Criticality criticality,
          std::vector<apps::PathComponent> path = {})
{
    RequestClass cls;
    cls.appName = "app";
    cls.name = "c" + std::to_string(criticality);
    cls.criticality = criticality;
    cls.path = std::move(path);
    return cls;
}

} // namespace

// ---- Request-class derivation -------------------------------------

TEST(RequestClasses, CriticalityIsMaxOverRequiredComponents)
{
    const auto classes = buildRequestClasses({tinyApp(0), tinyApp(1)});
    ASSERT_EQ(classes.size(), 6u);

    // Dense indexing in testbed order.
    for (size_t i = 0; i < classes.size(); ++i)
        EXPECT_EQ(classes[i].index, i);

    EXPECT_EQ(classes[0].label(), "tiny0/core");
    EXPECT_EQ(classes[0].criticality, sim::kC1);

    // A required C5 dependency drags the class down to C5.
    EXPECT_EQ(classes[1].label(), "tiny0/both");
    EXPECT_EQ(classes[1].criticality, 5);

    // An optional C5 dependency does not.
    EXPECT_EQ(classes[2].label(), "tiny0/opt");
    EXPECT_EQ(classes[2].criticality, sim::kC1);

    // Second app instance keeps its own identity.
    EXPECT_EQ(classes[3].appName, "tiny1");
    EXPECT_EQ(classes[3].app, 1u);
}

TEST(RequestClasses, SloLatencyTargetsTrackNominalPathLatency)
{
    const auto classes = buildRequestClasses({tinyApp(0)});
    ASSERT_EQ(classes.size(), 3u);
    // 2x nominal (sum over all components), floored at 50 ms.
    EXPECT_NEAR(classes[0].slo.latencyP95Ms, 80.0, 1e-9);  // 2*40
    EXPECT_NEAR(classes[1].slo.latencyP95Ms, 120.0, 1e-9); // 2*60
    EXPECT_NEAR(classes[2].slo.latencyP95Ms, 50.0, 1e-9);  // floor
    for (const RequestClass &cls : classes)
        EXPECT_NEAR(cls.slo.availabilityTarget, 0.99, 1e-12);
}

// ---- Windowed SLO accounting --------------------------------------

TEST(SloTracker, WindowEvaluationAndViolationSeconds)
{
    RequestClass cls = classWith(sim::kC1);
    cls.slo.latencyP95Ms = 100.0;
    cls.slo.availabilityTarget = 0.99;
    SloTracker tracker({cls}, 5.0);

    // Healthy window: everything served, fast.
    for (int i = 0; i < 100; ++i)
        tracker.recordServed(0, 10.0);
    EXPECT_NEAR(tracker.closeWindow(), 0.0, 1e-12);

    // Availability breach: 2 shed of 100 -> 0.98 < 0.99.
    for (int i = 0; i < 98; ++i)
        tracker.recordServed(0, 10.0);
    tracker.recordShed(0);
    tracker.recordShed(0);
    EXPECT_NEAR(tracker.closeWindow(), 5.0, 1e-12);

    // Idle window: no demand, no violation.
    EXPECT_NEAR(tracker.closeWindow(), 0.0, 1e-12);

    // Latency breach: served but slow.
    for (int i = 0; i < 10; ++i)
        tracker.recordServed(0, 200.0);
    EXPECT_NEAR(tracker.closeWindow(), 5.0, 1e-12);

    // Total failure: one failed request, nothing served.
    tracker.recordFailed(0);
    EXPECT_NEAR(tracker.closeWindow(), 5.0, 1e-12);

    const auto reports = tracker.report();
    ASSERT_EQ(reports.size(), 1u);
    const ClassReport &rep = reports[0];
    EXPECT_EQ(rep.offered, 211u);
    EXPECT_EQ(rep.served, 208u);
    EXPECT_EQ(rep.shed, 2u);
    EXPECT_EQ(rep.failed, 1u);
    EXPECT_EQ(rep.windows, 5u);
    EXPECT_EQ(rep.violationWindows, 3u);
    EXPECT_NEAR(rep.sloViolationSeconds, 15.0, 1e-12);
    EXPECT_NEAR(rep.goodput(), 208.0 / 211.0, 1e-12);
    EXPECT_NEAR(rep.shedFraction(), 2.0 / 211.0, 1e-12);
    // Overall percentiles over every served latency.
    EXPECT_GT(rep.p50Ms, 0.0);
    EXPECT_LE(rep.p50Ms, rep.p95Ms);
    EXPECT_LE(rep.p95Ms, rep.p99Ms);
}

TEST(SloTracker, ViolationSecondsSplitByCriticality)
{
    RequestClass critical = classWith(sim::kC1);
    RequestClass degradable = classWith(5);
    SloTracker tracker({critical, degradable}, 10.0);

    tracker.recordServed(0, 1.0); // critical class fine
    tracker.recordShed(1);        // degradable class fully shed
    EXPECT_NEAR(tracker.closeWindow(), 10.0, 1e-12);

    EXPECT_NEAR(tracker.violationSeconds(/*critical=*/true), 0.0,
                1e-12);
    EXPECT_NEAR(tracker.violationSeconds(/*critical=*/false), 10.0,
                1e-12);
}

TEST(SloTracker, IdleRunReportsPerfectGoodput)
{
    SloTracker tracker({classWith(sim::kC1)}, 5.0);
    tracker.closeWindow();
    const auto reports = tracker.report();
    EXPECT_EQ(reports[0].offered, 0u);
    EXPECT_NEAR(reports[0].goodput(), 1.0, 1e-12);
    EXPECT_LT(reports[0].p95Ms, 0.0); // no-sample convention
}

// ---- Admission control --------------------------------------------

TEST(Admission, CapacityLevelDegradesWithReadyFraction)
{
    AdmissionController admission;
    EXPECT_EQ(admission.admitLevel(), sim::kLowestCriticality);

    // Full capacity admits everything.
    admission.observeCapacity(1.0);
    EXPECT_EQ(admission.admitLevel(), sim::kLowestCriticality);
    EXPECT_EQ(admission.decide(classWith(10)), AdmitDecision::Admit);

    // Half capacity: level = 1 + floor(9 * 0.5 / 0.95) = 5.
    admission.observeCapacity(0.5);
    EXPECT_EQ(admission.admitLevel(), 5);
    EXPECT_EQ(admission.decide(classWith(5)), AdmitDecision::Admit);
    EXPECT_EQ(admission.decide(classWith(6)),
              AdmitDecision::ShedCapacity);

    // Zero capacity: C1 only.
    admission.observeCapacity(0.0);
    EXPECT_EQ(admission.admitLevel(), sim::kC1);
    EXPECT_EQ(admission.decide(classWith(sim::kC1)),
              AdmitDecision::Admit);
    EXPECT_EQ(admission.decide(classWith(2)),
              AdmitDecision::ShedCapacity);
}

TEST(Admission, HysteresisDampsReadmission)
{
    AdmissionController admission;
    admission.observeCapacity(0.5);
    ASSERT_EQ(admission.admitLevel(), 5);

    // A wobble just above the drop point must not re-admit: the
    // margin-adjusted level does not clear the current one.
    admission.observeCapacity(0.55);
    EXPECT_EQ(admission.admitLevel(), 5);

    // A real recovery does, but only to the margin-adjusted level.
    admission.observeCapacity(0.60);
    EXPECT_EQ(admission.admitLevel(), 6);

    // Full recovery restores full service.
    admission.observeCapacity(1.0);
    EXPECT_EQ(admission.admitLevel(), sim::kLowestCriticality);
}

TEST(Admission, PlanAwareShedFailsFastOnSacrificedServices)
{
    AdmissionController admission;
    RequestClass needsBoth = classWith(
        3, {apps::PathComponent{0, true, 1.0, 10.0},
            apps::PathComponent{1, true, 1.0, 10.0}});
    needsBoth.app = 7;
    RequestClass needsFront =
        classWith(2, {apps::PathComponent{0, true, 1.0, 10.0},
                      apps::PathComponent{1, false, 1.0, 10.0}});
    needsFront.app = 7;

    // No plan yet: both admitted.
    EXPECT_FALSE(admission.hasPlan());
    EXPECT_EQ(admission.decide(needsBoth), AdmitDecision::Admit);

    // Planner sacrificed service 1: the class requiring it sheds
    // fail-fast, the one that only optionally touches it does not.
    admission.setPlannedServices(
        {AdmissionController::serviceKey(7, 0)});
    EXPECT_TRUE(admission.hasPlan());
    EXPECT_EQ(admission.decide(needsBoth), AdmitDecision::ShedPlan);
    EXPECT_EQ(admission.decide(needsFront), AdmitDecision::Admit);

    admission.clearPlan();
    EXPECT_EQ(admission.decide(needsBoth), AdmitDecision::Admit);
}

TEST(Admission, DisabledControllerAdmitsEverything)
{
    AdmissionConfig config;
    config.enabled = false;
    AdmissionController admission(config);
    admission.observeCapacity(0.0);
    admission.setPlannedServices({}); // ignored when disabled
    EXPECT_EQ(admission.admitLevel(), sim::kLowestCriticality);
    EXPECT_EQ(admission.decide(classWith(10, {apps::PathComponent{
                  0, true, 1.0, 1.0}})),
              AdmitDecision::Admit);
    EXPECT_FALSE(admission.hasPlan());
}

// ---- End-to-end harness -------------------------------------------

namespace {

ServeConfig
miniConfig(ServeScheme scheme)
{
    ServeConfig config;
    config.scheme = scheme;
    config.warmupSec = 300.0;
    config.endTime = 700.0;
    config.frontend.rpsScale = 0.2;
    config.frontend.seed = 42;
    config.frontend.admission.enabled = scheme != ServeScheme::Default;
    return config;
}

} // namespace

TEST(ServeHarness, HealthyClusterServesEverything)
{
    // Phoenix replans once at startup, and the planner's bin-packed
    // placement fits every pod — including the two 7.6-CPU HR1 pods
    // the spread scheduler strands (see the Default test below). A
    // healthy cluster under Phoenix then serves every request.
    const ServeResult result =
        runServe(miniConfig(ServeScheme::PhoenixCost));
    EXPECT_GT(result.offered, 0u);
    EXPECT_EQ(result.offered, result.served + result.shed +
                                  result.failed);
    EXPECT_EQ(result.shed, 0u);
    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(result.invariantViolations, 0u);
    EXPECT_NEAR(result.totalGoodput, 1.0, 1e-12);
    EXPECT_NEAR(result.shedFraction, 0.0, 1e-12);
    EXPECT_EQ(result.criticalViolationSeconds, 0.0);
    EXPECT_LT(result.firstFailureAt, 0.0); // no scenario
    // 29 CloudLab request classes, every one exercised.
    EXPECT_EQ(result.classes.size(), 29u);
    for (const ClassReport &rep : result.classes)
        EXPECT_GT(rep.offered, 0u) << rep.meta.label();
}

TEST(ServeHarness, SpreadSchedulerStrandsLargePodsUnderDefault)
{
    // The kube default scheduler spreads (least-allocated scoring), so
    // by the time HR1's 7.6-CPU frontend and reservation pods come up
    // in PodRef order every node has some usage and neither ever
    // binds. All four HR1 request classes route through at least one
    // of the stranded services and fail outright; every other class
    // is untouched. This is the placement-fragility motivation for
    // planner-driven placement, pinned as serving-layer behavior.
    const ServeResult result =
        runServe(miniConfig(ServeScheme::Default));
    EXPECT_EQ(result.offered, result.served + result.shed +
                                  result.failed);
    EXPECT_EQ(result.shed, 0u);
    EXPECT_EQ(result.invariantViolations, 0u);
    EXPECT_GT(result.failed, 0u);
    size_t failedClasses = 0;
    for (const ClassReport &rep : result.classes) {
        EXPECT_GT(rep.offered, 0u) << rep.meta.label();
        if (rep.failed > 0) {
            ++failedClasses;
            // Down from the first request: all-or-nothing.
            EXPECT_EQ(rep.failed, rep.offered) << rep.meta.label();
            EXPECT_EQ(rep.served, 0u) << rep.meta.label();
            EXPECT_EQ(rep.meta.app, 4) << rep.meta.label(); // HR1
        }
    }
    EXPECT_EQ(failedClasses, 4u);
}

TEST(ServeHarness, RunsAreDeterministic)
{
    const ServeResult a = runServe(miniConfig(ServeScheme::PhoenixCost));
    const ServeResult b = runServe(miniConfig(ServeScheme::PhoenixCost));
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.failed, b.failed);
    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (size_t i = 0; i < a.classes.size(); ++i) {
        EXPECT_EQ(a.classes[i].offered, b.classes[i].offered);
        EXPECT_EQ(a.classes[i].p95Ms, b.classes[i].p95Ms); // exact
        EXPECT_EQ(a.classes[i].sloViolationSeconds,
                  b.classes[i].sloViolationSeconds);
    }

    // A different seed moves the arrival draws.
    ServeConfig other = miniConfig(ServeScheme::PhoenixCost);
    other.frontend.seed = 43;
    const ServeResult c = runServe(other);
    EXPECT_NE(a.offered, c.offered);
}

TEST(ServeHarness, CapacityCrunchProtectsCriticalClasses)
{
    // Half the cluster fails mid-trace; under PhoenixCost the shed
    // lands on degradable classes and every critical class keeps
    // serving (strictly less SLO damage than the no-admission run
    // would take — the bench smoke gate covers the full comparison).
    ServeConfig config = miniConfig(ServeScheme::PhoenixCost);
    config.endTime = 900.0;
    config.scenario.failCapacityFraction(500.0, 0.5);
    config.scenarioOptions.seed = 7;
    const ServeResult result = runServe(config);

    EXPECT_EQ(result.offered, result.served + result.shed +
                                  result.failed);
    EXPECT_GT(result.shed, 0u);
    EXPECT_EQ(result.invariantViolations, 0u);
    EXPECT_GT(result.replans, 0u);
    EXPECT_NEAR(result.firstFailureAt, 500.0, 1e-9);
    // Critical traffic keeps flowing.
    EXPECT_GT(result.criticalGoodput, 0.8);
    EXPECT_LT(result.criticalViolationSeconds,
              result.nonCriticalViolationSeconds);
}

// ---- Daemon protocol ----------------------------------------------

namespace {

util::JsonValue
reply(ServeDaemon &daemon, const std::string &line)
{
    util::JsonValue parsed;
    const std::string text = daemon.handleLine(line);
    EXPECT_TRUE(util::parseJson(text, parsed)) << text;
    return parsed;
}

bool
okOf(const util::JsonValue &parsed)
{
    const util::JsonValue *ok = parsed.field("ok");
    return ok && ok->kind == util::JsonValue::Kind::Bool &&
           ok->boolean;
}

} // namespace

TEST(ServeDaemon, LifecycleRoundTrip)
{
    ServeDaemon daemon;

    auto loaded = reply(daemon, R"({"cmd":"load-testbed"})");
    EXPECT_TRUE(okOf(loaded));
    EXPECT_GT(loaded.numberAt("nodes"), 0.0);

    auto controller = reply(
        daemon, R"({"cmd":"start-controller","scheme":"PhoenixCost"})");
    EXPECT_TRUE(okOf(controller));

    auto serve = reply(
        daemon,
        R"({"cmd":"serve-start","duration":200,"shape":"diurnal"})");
    EXPECT_TRUE(okOf(serve));
    EXPECT_NEAR(serve.numberAt("classes"), 29.0, 1e-12);

    auto advanced =
        reply(daemon, R"({"cmd":"advance","seconds":250})");
    EXPECT_NEAR(advanced.numberAt("t"), 250.0, 1e-9);
    EXPECT_NEAR(daemon.now(), 250.0, 1e-9);

    auto observed = reply(daemon, R"({"cmd":"observe"})");
    EXPECT_GT(observed.numberAt("running"), 0.0);
    EXPECT_GT(observed.numberAt("ready_capacity"), 0.0);

    auto stats = reply(daemon, R"({"cmd":"stats"})");
    EXPECT_GT(stats.numberAt("offered"), 0.0);
    const util::JsonValue *classes = stats.field("classes");
    ASSERT_NE(classes, nullptr);
    EXPECT_TRUE(classes->isArray());
    EXPECT_EQ(classes->items.size(), 29u);

    EXPECT_TRUE(okOf(reply(daemon, R"({"cmd":"shutdown"})")));
    EXPECT_TRUE(daemon.shuttingDown());
}

TEST(ServeDaemon, IngestManifestSurfacesStructuredErrors)
{
    ServeDaemon daemon;
    const std::string manifest = "application: good\\n"
                                 "services:\\n"
                                 "  - name: web\\n"
                                 "    cpu: 2.0\\n"
                                 "---\\n"
                                 "application: broken\\n"
                                 "services:\\n"
                                 "  - name: a\\n"
                                 "    cpu: nope\\n";
    auto parsed = reply(daemon, std::string(R"({"cmd":"ingest-manifest","text":")") +
                                    manifest + R"("})");
    EXPECT_FALSE(okOf(parsed)); // a document was rejected
    // Accepted apps are reported by name; the broken doc is absent.
    const util::JsonValue *apps = parsed.field("apps");
    ASSERT_NE(apps, nullptr);
    ASSERT_EQ(apps->items.size(), 1u);
    EXPECT_EQ(apps->items[0].kind, util::JsonValue::Kind::String);
    EXPECT_EQ(apps->items[0].text, "good");

    const util::JsonValue *errors = parsed.field("errors");
    ASSERT_NE(errors, nullptr);
    ASSERT_EQ(errors->items.size(), 1u);
    EXPECT_NEAR(errors->items[0].numberAt("line"), 9.0, 1e-12);
    EXPECT_EQ(errors->items[0].stringAt("field"), "cpu");
}

TEST(ServeDaemon, RejectsMalformedCommands)
{
    ServeDaemon daemon;
    auto bad = reply(daemon, "not json at all");
    EXPECT_FALSE(okOf(bad));
    EXPECT_FALSE(bad.stringAt("error").empty());

    auto unknown = reply(daemon, R"({"cmd":"frobnicate"})");
    EXPECT_FALSE(okOf(unknown));

    // serve-start before any testbed/manifest is an error, not a crash.
    auto early = reply(daemon, R"({"cmd":"serve-start"})");
    EXPECT_FALSE(okOf(early));
}

TEST(ServeDaemon, ReplStopsOnShutdown)
{
    ServeDaemon daemon;
    std::istringstream in(
        "{\"cmd\":\"load-testbed\"}\n"
        "{\"cmd\":\"shutdown\"}\n"
        "{\"cmd\":\"observe\"}\n"); // never reached
    std::ostringstream out;
    EXPECT_EQ(daemon.repl(in, out), 0);
    // One reply line per consumed command, none after shutdown.
    size_t lines = 0;
    std::istringstream replies(out.str());
    std::string line;
    while (std::getline(replies, line))
        ++lines;
    EXPECT_EQ(lines, 2u);
}
