/**
 * @file
 * Tests for the chaos-testing service (§5): failure-degree sweeps,
 * utility scoring, and detection of bad criticality tagging.
 */

#include <gtest/gtest.h>

#include "apps/hotel.h"
#include "apps/overleaf.h"
#include "core/chaos.h"

using namespace phoenix;
using namespace phoenix::core;
using namespace phoenix::apps;

TEST(Chaos, DefaultUtilityWeighsServedTraffic)
{
    std::vector<TrafficPoint> traffic;
    traffic.push_back({"a", 10.0, 10.0, 1.0, 5.0});
    traffic.push_back({"b", 10.0, 0.0, 0.0, -1.0});
    // Half the offered load served at utility 1 -> 0.5.
    EXPECT_NEAR(defaultUtility(traffic), 0.5, 1e-9);
    EXPECT_NEAR(defaultUtility({}), 0.0, 1e-9);
}

TEST(Chaos, WellTaggedOverleafPasses)
{
    ServiceApp sapp = makeOverleaf(0);
    assignCpuByTraffic(sapp, 30.0, 0.5);
    const ChaosReport report = runChaosSuite(sapp);
    EXPECT_TRUE(report.taggingEffective);
    ASSERT_FALSE(report.trials.empty());
    // Mild failures keep utility high; degradation is monotone-ish.
    EXPECT_GT(report.trials.front().utility, 0.7);
    for (const auto &trial : report.trials) {
        if (trial.failureDegree <= 0.5) {
            EXPECT_TRUE(trial.criticalGoalMet)
                << "degree " << trial.failureDegree;
        }
    }
}

TEST(Chaos, WellTaggedHotelReservationPasses)
{
    ServiceApp sapp = makeHotelReservation(1, true);
    assignCpuByTraffic(sapp, 30.0, 0.5);
    const ChaosReport report = runChaosSuite(sapp);
    EXPECT_TRUE(report.taggingEffective);
}

TEST(Chaos, MistaggedCriticalServiceIsCaught)
{
    // Tag the reservation service (required by the critical request)
    // as C5: chaos must flag the tagging as ineffective.
    ServiceApp sapp = makeHotelReservation(1, true);
    sapp.app.services[hotel::kReservation].criticality = 5;
    assignCpuByTraffic(sapp, 30.0, 0.5);

    const ChaosReport report = runChaosSuite(sapp);
    EXPECT_FALSE(report.taggingEffective);
    EXPECT_FALSE(report.violations.empty());
}

TEST(Chaos, SparseMsIdsDegradeByTagNotByIndex)
{
    // MsIds far beyond services.size(): the manifests and the Alibaba
    // generator both produce sparse ids, so the suite must resolve a
    // degraded service's demand through an id -> index map (indexing
    // services[] by MsId reads out of bounds here).
    ServiceApp sapp;
    sapp.app.name = "sparse";
    sapp.app.services.resize(3);
    const sim::MsId ids[3] = {2, 7, 11};
    const int tags[3] = {1, 3, 5};
    for (size_t i = 0; i < 3; ++i) {
        sapp.app.services[i].id = ids[i];
        sapp.app.services[i].cpu = 10.0;
        sapp.app.services[i].criticality = tags[i];
    }
    RequestType request;
    request.name = "critical";
    request.offeredRps = 100.0;
    request.path.push_back({2, true, 1.0, 5.0});
    sapp.requests.push_back(request);
    sapp.criticalRequest = "critical";

    ChaosConfig config;
    config.degrees = {0.3};
    const ChaosReport report = runChaosSuite(sapp, config);
    ASSERT_EQ(report.trials.size(), 1u);
    // Budget 21 of 30 CPU: shedding the single C5 service (10 CPU)
    // suffices — C3 and the critical C1 service stay up.
    EXPECT_EQ(report.trials[0].lowestDisabledLevel, 5);
    EXPECT_TRUE(report.trials[0].criticalGoalMet);
    EXPECT_TRUE(report.taggingEffective);
    EXPECT_GT(report.trials[0].utility, 0.9);
}

TEST(Chaos, UtilityDegradesWithFailureDegree)
{
    ServiceApp sapp = makeOverleaf(0);
    assignCpuByTraffic(sapp, 30.0, 0.5);
    ChaosConfig config;
    config.degrees = {0.0, 0.3, 0.6};
    const ChaosReport report = runChaosSuite(sapp, config);
    ASSERT_EQ(report.trials.size(), 3u);
    EXPECT_GE(report.trials[0].utility,
              report.trials[1].utility - 1e-9);
    EXPECT_GE(report.trials[1].utility,
              report.trials[2].utility - 1e-9);
    // At zero failure nothing is disabled.
    EXPECT_EQ(report.trials[0].lowestDisabledLevel, 0);
    EXPECT_NEAR(report.trials[0].utility, 1.0, 1e-6);
}

TEST(Chaos, CustomUtilityFunction)
{
    ServiceApp sapp = makeOverleaf(0);
    assignCpuByTraffic(sapp, 30.0, 0.5);
    ChaosConfig config;
    config.degrees = {0.4};
    bool called = false;
    config.utility = [&](const std::vector<TrafficPoint> &) {
        called = true;
        return 0.42;
    };
    const ChaosReport report = runChaosSuite(sapp, config);
    EXPECT_TRUE(called);
    EXPECT_NEAR(report.trials[0].utility, 0.42, 1e-9);
}
