/**
 * @file
 * Cross-scheme property tests: for every resilience scheme, over
 * randomized environments and failure draws, the planned cluster
 * state must satisfy the structural invariants (capacity bounds,
 * healthy-node placement, replica/quorum consistency, replayable
 * action logs, and intra-app criticality monotonicity for the
 * criticality-aware schemes).
 */

#include <gtest/gtest.h>

#include <memory>

#include "adaptlab/environment.h"
#include "adaptlab/runner.h"
#include "check/case.h"
#include "check/generator.h"
#include "core/preemption.h"
#include "core/schemes.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "util/rng.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::Application;
using sim::ClusterState;
using sim::PodRef;

namespace {

std::vector<std::unique_ptr<ResilienceScheme>>
allSchemes()
{
    auto schemes = makeAllSchemes(false);
    schemes.push_back(std::make_unique<KubePreemptionScheme>());
    return schemes;
}

/** Structural invariants every scheme's output must satisfy. */
void
checkStateInvariants(const std::vector<Application> &apps,
                     const ClusterState &state,
                     const std::string &scheme)
{
    for (size_t n = 0; n < state.nodeCount(); ++n) {
        const auto id = static_cast<sim::NodeId>(n);
        EXPECT_LE(state.used(id), state.node(id).capacity + 1e-6)
            << scheme << " overfills node " << n;
        if (!state.isHealthy(id)) {
            EXPECT_TRUE(state.podsOn(id).empty())
                << scheme << " placed pods on failed node " << n;
        }
    }
    for (const auto &[pod, node] : state.assignment()) {
        EXPECT_LT(pod.app, apps.size()) << scheme;
        EXPECT_LT(pod.ms, apps[pod.app].services.size()) << scheme;
        EXPECT_LT(static_cast<int>(pod.replica),
                  std::max(apps[pod.app].services[pod.ms].replicas, 1))
            << scheme;
        EXPECT_TRUE(state.isHealthy(node)) << scheme;
        // Recorded pod size matches the descriptor (per-replica cpu).
        EXPECT_NEAR(state.podCpu(pod),
                    apps[pod.app].services[pod.ms].cpu, 1e-9)
            << scheme;
    }
}

/** Replaying the action log on the input state gives the output. */
void
checkActionReplay(const std::vector<Application> &apps,
                  const ClusterState &before, const SchemeResult &result,
                  const std::string &scheme)
{
    ClusterState replay = before;
    for (const Action &action : result.pack.actions) {
        switch (action.kind) {
          case ActionKind::Delete:
            EXPECT_TRUE(replay.evict(action.pod)) << scheme;
            break;
          case ActionKind::Migrate: {
            const double cpu = replay.podCpu(action.pod);
            EXPECT_TRUE(replay.evict(action.pod)) << scheme;
            EXPECT_TRUE(replay.place(action.pod, action.to, cpu))
                << scheme;
            break;
          }
          case ActionKind::Restart:
            EXPECT_TRUE(replay.place(
                action.pod, action.to,
                apps[action.pod.app].services[action.pod.ms].cpu))
                << scheme;
            break;
        }
    }
    EXPECT_EQ(replay.assignment(), result.pack.state.assignment())
        << scheme << " action log does not reproduce its state";
}

} // namespace

class SchemeProperties : public ::testing::TestWithParam<int>
{
};

TEST_P(SchemeProperties, InvariantsAcrossRandomEnvironments)
{
    const int seed = GetParam();
    util::Rng rng(seed * 7001 + 5);

    adaptlab::EnvironmentConfig config;
    config.nodeCount = 30 + static_cast<size_t>(rng.uniformInt(0, 50));
    config.nodeCapacity = 32.0;
    config.demandFraction = rng.uniform(0.5, 0.9);
    config.seed = static_cast<uint64_t>(seed) + 1;
    config.alibaba.appCount = static_cast<int>(rng.uniformInt(3, 8));
    config.alibaba.sizeScale = 0.03;
    config.resources.maxCpu = 16.0;
    const adaptlab::Environment env =
        adaptlab::buildEnvironment(config);

    ClusterState failed = env.cluster;
    sim::FailureInjector injector{util::Rng(seed + 99)};
    injector.failCapacityFraction(failed, rng.uniform(0.1, 0.8));

    for (const auto &scheme : allSchemes()) {
        const SchemeResult result = scheme->apply(env.apps, failed);
        ASSERT_FALSE(result.failed) << scheme->name();
        checkStateInvariants(env.apps, result.pack.state,
                             scheme->name());
        checkActionReplay(env.apps, failed, result, scheme->name());

        // Quorum consistency: any microservice reported active has at
        // least its quorum of replicas placed (activeSetFromCluster
        // enforces this by construction; assert the placed counts
        // directly as a cross-check).
        const auto active = result.activeSet(env.apps);
        std::map<std::pair<sim::AppId, sim::MsId>, int> placed;
        for (const auto &[pod, node] :
             result.pack.state.assignment()) {
            (void)node;
            ++placed[{pod.app, pod.ms}];
        }
        for (size_t a = 0; a < env.apps.size(); ++a) {
            for (const auto &ms : env.apps[a].services) {
                if (!active[a][ms.id])
                    continue;
                const auto key = std::make_pair(
                    static_cast<sim::AppId>(a), ms.id);
                EXPECT_GE(placed[key], ms.quorumCount())
                    << scheme->name();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeProperties, ::testing::Range(0, 12));

class PhoenixMonotonicity : public ::testing::TestWithParam<int>
{
};

TEST_P(PhoenixMonotonicity, MoreCapacityNeverHurtsAvailability)
{
    // Phoenix availability is monotone in surviving capacity for a
    // fixed failure draw prefix (failing strictly more nodes cannot
    // improve the plan).
    const int seed = GetParam();
    adaptlab::EnvironmentConfig config;
    config.nodeCount = 60;
    config.nodeCapacity = 32.0;
    config.seed = static_cast<uint64_t>(seed) * 13 + 3;
    config.alibaba.appCount = 6;
    config.alibaba.sizeScale = 0.03;
    config.resources.maxCpu = 16.0;
    const adaptlab::Environment env =
        adaptlab::buildEnvironment(config);

    // One shuffled node order; fail growing prefixes of it.
    std::vector<sim::NodeId> order = env.cluster.healthyNodes();
    util::Rng rng(seed + 7);
    rng.shuffle(order);

    PhoenixScheme phoenix(Objective::Fair);
    double last_avail = 1.1;
    for (size_t kill = 0; kill <= 48; kill += 12) {
        ClusterState state = env.cluster;
        for (size_t k = 0; k < kill; ++k)
            state.failNode(order[k]);
        const double avail = sim::criticalFractionAvailability(
            env.apps, phoenix.apply(env.apps, state).activeSet(env.apps));
        EXPECT_LE(avail, last_avail + 0.05)
            << "availability rose when failing MORE nodes (kill="
            << kill << ")";
        last_avail = avail;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhoenixMonotonicity,
                         ::testing::Range(0, 8));

namespace {

/** Field-wise action equality (Action carries no operator==). */
void
expectSameActions(const std::vector<Action> &flat,
                  const std::vector<Action> &ref, const char *what)
{
    ASSERT_EQ(flat.size(), ref.size()) << what;
    for (size_t i = 0; i < flat.size(); ++i) {
        EXPECT_EQ(flat[i].kind, ref[i].kind) << what << " action " << i;
        EXPECT_EQ(flat[i].pod, ref[i].pod) << what << " action " << i;
        EXPECT_EQ(flat[i].from, ref[i].from) << what << " action " << i;
        EXPECT_EQ(flat[i].to, ref[i].to) << what << " action " << i;
    }
}

} // namespace

/**
 * The flat hot path (CSR + indexed heaps + dense packer bookkeeping)
 * must be indistinguishable from the reference containers in every
 * output byte: same global rank, same action sequence, same final
 * state. The op counters double as an algorithm-identity check — both
 * implementations take the same number of queue operations and
 * best-fit probes, while the flat path does zero per-visit child
 * sorting (that is the optimization).
 */
class BitIdentity : public ::testing::TestWithParam<int>
{
};

TEST_P(BitIdentity, FlatMatchesReferenceImplementation)
{
    const int seed = GetParam();
    util::Rng rng(seed * 90001 + 17);

    adaptlab::EnvironmentConfig config;
    config.nodeCount = 20 + static_cast<size_t>(rng.uniformInt(0, 60));
    config.nodeCapacity = 32.0;
    config.demandFraction = rng.uniform(0.4, 0.95);
    config.seed = static_cast<uint64_t>(seed) * 3 + 11;
    config.alibaba.appCount = static_cast<int>(rng.uniformInt(2, 9));
    config.alibaba.sizeScale = 0.03;
    config.resources.maxCpu = 16.0;
    const adaptlab::Environment env =
        adaptlab::buildEnvironment(config);

    ClusterState failed = env.cluster;
    sim::FailureInjector injector{util::Rng(seed + 1234)};
    injector.failCapacityFraction(failed, rng.uniform(0.05, 0.85));

    // Cover the ablation knobs too: each must stay bit-identical.
    PlannerOptions planner_opts;
    planner_opts.eagerDfsDescend = seed % 2 == 0;
    planner_opts.stopAtFirstOverflow = seed % 5 == 0;
    PackingOptions packing_opts;
    packing_opts.abortOnUnplaceable = seed % 7 == 0;

    PlannerOptions ref_planner = planner_opts;
    ref_planner.referenceImpl = true;
    PackingOptions ref_packing = packing_opts;
    ref_packing.referenceImpl = true;

    for (const Objective objective : {Objective::Fair, Objective::Cost}) {
        PhoenixScheme flat(objective, planner_opts, packing_opts);
        PhoenixScheme ref(objective, ref_planner, ref_packing);
        // Apply twice so the flat scheme's second pass runs entirely on
        // recycled scratch buffers — identity must survive reuse.
        (void)flat.apply(env.apps, failed);
        const SchemeResult a = flat.apply(env.apps, failed);
        const SchemeResult b = ref.apply(env.apps, failed);
        const char *what =
            objective == Objective::Fair ? "fair" : "cost";

        ASSERT_EQ(a.plan, b.plan) << what;
        expectSameActions(a.pack.actions, b.pack.actions, what);
        EXPECT_EQ(a.pack.state.assignment(),
                  b.pack.state.assignment())
            << what;
        EXPECT_EQ(a.pack.placed, b.pack.placed) << what;
        EXPECT_EQ(a.pack.complete, b.pack.complete) << what;

        // Algorithm identity: same queue traffic and probe counts...
        EXPECT_EQ(a.planOps.heapPushes, b.planOps.heapPushes) << what;
        EXPECT_EQ(a.planOps.heapPops, b.planOps.heapPops) << what;
        EXPECT_EQ(a.pack.ops.bestFitProbes, b.pack.ops.bestFitProbes)
            << what;
        // ...while the flat path never copies/sorts successor lists.
        EXPECT_EQ(a.planOps.childSortElems, 0u) << what;

        // Zone-sharded plan→pack: partitioned estimator arenas + zoned
        // capacity index must be byte-identical to the monolithic flat
        // path in every output AND every op counter (queries decompose
        // exactly over the partition).
        PlannerOptions shard_planner = planner_opts;
        shard_planner.shardCount = 1 + static_cast<size_t>(seed % 4);
        PackingOptions shard_packing = packing_opts;
        shard_packing.zoneShards = 1 + static_cast<size_t>(seed % 5);
        PhoenixScheme sharded(objective, shard_planner, shard_packing);
        const SchemeResult s = sharded.apply(env.apps, failed);
        ASSERT_EQ(s.plan, a.plan) << what << " sharded";
        expectSameActions(s.pack.actions, a.pack.actions, what);
        EXPECT_EQ(s.pack.state.assignment(),
                  a.pack.state.assignment())
            << what << " sharded";
        EXPECT_EQ(s.pack.placed, a.pack.placed) << what << " sharded";
        EXPECT_EQ(s.pack.complete, a.pack.complete)
            << what << " sharded";
        EXPECT_EQ(s.planOps.heapPushes, a.planOps.heapPushes)
            << what << " sharded";
        EXPECT_EQ(s.planOps.heapPops, a.planOps.heapPops)
            << what << " sharded";
        EXPECT_EQ(s.pack.ops.bestFitProbes, a.pack.ops.bestFitProbes)
            << what << " sharded";
        EXPECT_EQ(s.pack.ops.kvOps, a.pack.ops.kvOps)
            << what << " sharded";

        // Incremental replan: a warm second pass (caches primed by the
        // first) must reproduce the monolithic outputs exactly — only
        // its op counters may shrink.
        PlannerOptions inc_planner = planner_opts;
        inc_planner.incremental = true;
        PackingOptions inc_packing = packing_opts;
        inc_packing.incremental = true;
        inc_packing.zoneShards = 1 + static_cast<size_t>(seed % 3);
        PhoenixScheme warm(objective, inc_planner, inc_packing);
        (void)warm.apply(env.apps, failed);
        const SchemeResult w = warm.apply(env.apps, failed);
        ASSERT_EQ(w.plan, a.plan) << what << " incremental";
        expectSameActions(w.pack.actions, a.pack.actions, what);
        EXPECT_EQ(w.pack.state.assignment(),
                  a.pack.state.assignment())
            << what << " incremental";
        EXPECT_EQ(w.pack.placed, a.pack.placed)
            << what << " incremental";
        EXPECT_EQ(w.pack.complete, a.pack.complete)
            << what << " incremental";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIdentity, ::testing::Range(0, 50));

/**
 * Bit-identity must also hold when placement is constrained: generated
 * topologies with anti-affinity groups, PDBs, and zone-spread caps
 * route packing through the vacancy allocator's feasibility walk, and
 * that walk must visit (and count) identically under the reference
 * containers, the flat hot path, the zone-sharded index, and a warm
 * incremental replan.
 */
class ConstrainedBitIdentity : public ::testing::TestWithParam<int>
{
};

TEST_P(ConstrainedBitIdentity, ConstrainedPackingIsBitIdentical)
{
    const int seed = GetParam();
    check::GeneratorOptions gen;
    gen.antiAffinityProbability = 0.5;
    gen.pdbProbability = 0.5;
    gen.zoneSpreadProbability = 0.5;
    gen.nodeCapProbability = 0.5;
    gen.maxNodes = 16;
    gen.maxApps = 5;
    const check::CheckCase c =
        check::generateCase(static_cast<uint64_t>(seed) * 61 + 5, gen);

    // Seed an initial placement epoch, then replay the failure script
    // over it, so the schemes replan against a cluster that already
    // holds constrained placements (the vacancy allocator's
    // build-from-assignment path).
    PhoenixScheme seeder(Objective::Cost);
    ClusterState failed =
        seeder.apply(c.apps, c.emptyCluster()).pack.state;
    c.replaySteps(failed);

    PlannerOptions ref_planner;
    ref_planner.referenceImpl = true;
    PackingOptions ref_packing;
    ref_packing.referenceImpl = true;

    for (const Objective objective : {Objective::Fair, Objective::Cost}) {
        PhoenixScheme flat(objective);
        PhoenixScheme ref(objective, ref_planner, ref_packing);
        const SchemeResult a = flat.apply(c.apps, failed);
        const SchemeResult b = ref.apply(c.apps, failed);
        const char *what =
            objective == Objective::Fair ? "fair" : "cost";

        ASSERT_EQ(a.plan, b.plan) << what;
        expectSameActions(a.pack.actions, b.pack.actions, what);
        EXPECT_EQ(a.pack.state.assignment(),
                  b.pack.state.assignment())
            << what;
        EXPECT_EQ(a.pack.placed, b.pack.placed) << what;
        EXPECT_EQ(a.pack.complete, b.pack.complete) << what;
        EXPECT_EQ(a.planOps.heapPushes, b.planOps.heapPushes) << what;
        EXPECT_EQ(a.planOps.heapPops, b.planOps.heapPops) << what;
        EXPECT_EQ(a.pack.ops.bestFitProbes, b.pack.ops.bestFitProbes)
            << what;

        // Zone-sharded plan->pack over the constrained feasibility
        // walk: same outputs, same probe counts.
        PlannerOptions shard_planner;
        shard_planner.shardCount = 1 + static_cast<size_t>(seed % 4);
        PackingOptions shard_packing;
        shard_packing.zoneShards = 1 + static_cast<size_t>(seed % 5);
        PhoenixScheme sharded(objective, shard_planner, shard_packing);
        const SchemeResult s = sharded.apply(c.apps, failed);
        ASSERT_EQ(s.plan, a.plan) << what << " sharded";
        expectSameActions(s.pack.actions, a.pack.actions, what);
        EXPECT_EQ(s.pack.state.assignment(),
                  a.pack.state.assignment())
            << what << " sharded";
        EXPECT_EQ(s.pack.complete, a.pack.complete)
            << what << " sharded";
        EXPECT_EQ(s.pack.ops.bestFitProbes, a.pack.ops.bestFitProbes)
            << what << " sharded";

        // Warm incremental replan: caches primed by a first pass must
        // not drift constrained placements on the second.
        PlannerOptions inc_planner;
        inc_planner.incremental = true;
        PackingOptions inc_packing;
        inc_packing.incremental = true;
        inc_packing.zoneShards = 1 + static_cast<size_t>(seed % 3);
        PhoenixScheme warm(objective, inc_planner, inc_packing);
        (void)warm.apply(c.apps, failed);
        const SchemeResult w = warm.apply(c.apps, failed);
        ASSERT_EQ(w.plan, a.plan) << what << " incremental";
        expectSameActions(w.pack.actions, a.pack.actions, what);
        EXPECT_EQ(w.pack.state.assignment(),
                  a.pack.state.assignment())
            << what << " incremental";
        EXPECT_EQ(w.pack.complete, a.pack.complete)
            << what << " incremental";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstrainedBitIdentity,
                         ::testing::Range(0, 50));
