/**
 * @file
 * Tests for the resilience schemes: Phoenix (Fair/Cost), the
 * non-cooperative baselines (Fair, Priority, Default) and the exact LP
 * formulations, plus cross-checks between the heuristic and the LP on
 * small instances.
 */

#include <gtest/gtest.h>

#include "core/schemes.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "util/rng.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::ActiveSet;
using sim::Application;
using sim::ClusterState;
using sim::MsId;
using sim::PodRef;

namespace {

Application
makeApp(sim::AppId id, const std::vector<int> &tags,
        const std::vector<double> &cpus, double price = 1.0)
{
    Application app;
    app.id = id;
    app.name = "app" + std::to_string(id);
    app.pricePerUnit = price;
    app.services.resize(tags.size());
    for (MsId m = 0; m < tags.size(); ++m) {
        app.services[m].id = m;
        app.services[m].criticality = tags[m];
        app.services[m].cpu = cpus[m];
    }
    return app;
}

ClusterState
makeCluster(size_t nodes, double capacity)
{
    ClusterState cluster;
    for (size_t n = 0; n < nodes; ++n)
        cluster.addNode(capacity);
    return cluster;
}

/** Place every service (pre-failure steady state) via PhoenixFair. */
ClusterState
placeAll(const std::vector<Application> &apps, ClusterState cluster)
{
    PhoenixScheme scheme(Objective::Fair);
    const SchemeResult result = scheme.apply(apps, cluster);
    return result.pack.state;
}

} // namespace

TEST(PhoenixScheme, ActivatesEverythingWhenCapacitySuffices)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 2, 3}, {2, 2, 2}),
        makeApp(1, {1, 2}, {2, 2})};
    auto cluster = makeCluster(4, 4.0);

    PhoenixScheme scheme(Objective::Fair);
    const SchemeResult result = scheme.apply(apps, cluster);
    EXPECT_TRUE(result.pack.complete);
    const ActiveSet active = result.activeSet(apps);
    EXPECT_NEAR(sim::criticalServiceAvailability(apps, active), 1.0,
                1e-9);
    EXPECT_EQ(result.pack.state.assignment().size(), 5u);
}

TEST(PhoenixScheme, DegradesLowCriticalityFirst)
{
    // One app, capacity for only 2 of 4 equal-size containers.
    auto apps = std::vector<Application>{
        makeApp(0, {1, 1, 4, 5}, {2, 2, 2, 2})};
    auto cluster = makeCluster(1, 4.0);

    PhoenixScheme scheme(Objective::Fair);
    const SchemeResult result = scheme.apply(apps, cluster);
    const ActiveSet active = result.activeSet(apps);
    EXPECT_TRUE(active[0][0]);
    EXPECT_TRUE(active[0][1]);
    EXPECT_FALSE(active[0][2]);
    EXPECT_FALSE(active[0][3]);
    EXPECT_TRUE(sim::respectsCriticalityOrder(apps, active));
}

TEST(PhoenixScheme, CostVariantFavoursPayingApp)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 1}, {2, 2}, 1.0),
        makeApp(1, {1, 1}, {2, 2}, 4.0)};
    auto cluster = makeCluster(1, 4.0);

    PhoenixScheme cost(Objective::Cost);
    const ActiveSet active = cost.apply(apps, cluster).activeSet(apps);
    EXPECT_TRUE(active[1][0]);
    EXPECT_TRUE(active[1][1]);
    EXPECT_FALSE(active[0][0]);
}

TEST(PhoenixScheme, ReplanAfterFailureRestoresCriticalServices)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 3, 5}, {2, 2, 2}),
        makeApp(1, {1, 4}, {2, 2})};
    auto cluster = placeAll(apps, makeCluster(5, 2.0));
    EXPECT_EQ(cluster.assignment().size(), 5u);

    // Kill 3 of 5 nodes: 4 units left, exactly the two C1 services.
    sim::FailureInjector injector{util::Rng(1)};
    injector.failCapacityFraction(cluster, 0.6);

    PhoenixScheme scheme(Objective::Fair);
    const ActiveSet active =
        scheme.apply(apps, cluster).activeSet(apps);
    EXPECT_NEAR(sim::criticalServiceAvailability(apps, active), 1.0,
                1e-9);
}

TEST(FairScheme, IgnoresCriticalityButSharesEvenly)
{
    auto apps = std::vector<Application>{
        makeApp(0, {5, 5, 5, 5}, {2, 2, 2, 2}),
        makeApp(1, {1, 1, 1, 1}, {2, 2, 2, 2})};
    auto cluster = makeCluster(2, 4.0); // capacity 8 = half demand

    FairScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    const auto usage = sim::perAppUsage(apps, result.activeSet(apps));
    EXPECT_NEAR(usage[0], 4.0, 1e-9);
    EXPECT_NEAR(usage[1], 4.0, 1e-9);
}

TEST(PriorityScheme, AllowsCriticalityHogging)
{
    // App 0 is all-C1 and big; app 1 has C2 services. Priority gives
    // app 0 everything (no per-app quota).
    auto apps = std::vector<Application>{
        makeApp(0, {1, 1, 1, 1}, {2, 2, 2, 2}),
        makeApp(1, {2, 2}, {2, 2})};
    auto cluster = makeCluster(2, 4.0);

    PriorityScheme scheme;
    const auto usage =
        sim::perAppUsage(apps, scheme.apply(apps, cluster).activeSet(apps));
    EXPECT_NEAR(usage[0], 8.0, 1e-9);
    EXPECT_NEAR(usage[1], 0.0, 1e-9);
}

TEST(DefaultScheme, NeverDeletesAndSpreads)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 5}, {2, 2})};
    auto cluster = makeCluster(2, 4.0);
    cluster.place(PodRef{0, 1}, 0, 2.0); // low-criticality pod running

    DefaultScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    // Nothing deleted; pending pod placed on the emptier node.
    EXPECT_TRUE(result.pack.state.isActive(PodRef{0, 1}));
    EXPECT_TRUE(result.pack.state.isActive(PodRef{0, 0}));
    EXPECT_EQ(result.pack.state.nodeOf(PodRef{0, 0}), sim::NodeId{1});
    for (const Action &action : result.pack.actions)
        EXPECT_EQ(action.kind, ActionKind::Restart);
}

TEST(DefaultScheme, LeavesUnfittablePending)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 1}, {3, 3})};
    auto cluster = makeCluster(1, 4.0);

    DefaultScheme scheme;
    const SchemeResult result = scheme.apply(apps, cluster);
    EXPECT_FALSE(result.pack.complete);
    EXPECT_EQ(result.pack.state.assignment().size(), 1u);
}

TEST(LpScheme, MatchesCostOptimumOnSmallInstance)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 2}, {3, 3}, 1.0),
        makeApp(1, {1, 2}, {3, 3}, 2.0)};
    auto cluster = makeCluster(2, 4.0); // 8 units, demand 12

    LpScheme lp(Objective::Cost);
    const SchemeResult result = lp.apply(apps, cluster);
    ASSERT_FALSE(result.failed);
    const ActiveSet active = result.activeSet(apps);
    // Optimal revenue: app1 fully on (2*6=12) + nothing else fits a
    // node (3+3 on one node... nodes are 4 each, so one 3-unit pod per
    // node). Best integer packing: both app1 services (revenue 12).
    EXPECT_TRUE(active[1][0]);
    EXPECT_TRUE(active[1][1]);
    EXPECT_FALSE(active[0][0]);
    EXPECT_TRUE(sim::respectsCriticalityOrder(apps, active));
}

TEST(LpScheme, RespectsDependencyConstraint)
{
    auto app = makeApp(0, {1, 1, 1}, {2, 2, 2});
    app.hasDependencyGraph = true;
    app.dag = graph::DiGraph(3);
    app.dag.addEdge(0, 1);
    app.dag.addEdge(1, 2);
    auto apps = std::vector<Application>{app};
    auto cluster = makeCluster(1, 6.0);

    LpScheme lp(Objective::Cost);
    const SchemeResult result = lp.apply(apps, cluster);
    ASSERT_FALSE(result.failed);
    EXPECT_TRUE(sim::respectsDependencies(apps, result.activeSet(apps)));
}

TEST(LpScheme, RefusesOversizedInstances)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 1}, {1, 1})};
    auto cluster = makeCluster(10, 4.0);

    LpSchemeOptions options;
    options.maxPlacementVars = 5; // 2 services x 10 nodes = 20 > 5
    LpScheme lp(Objective::Cost, options);
    const SchemeResult result = lp.apply(apps, cluster);
    EXPECT_TRUE(result.failed);
}

TEST(CrossCheck, PhoenixCostTracksLpCostRevenue)
{
    // On small random instances Phoenix's heuristic revenue should be
    // close to (and never wildly above) the LP optimum.
    util::Rng rng(17);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<Application> apps;
        const int app_count = 2;
        for (int a = 0; a < app_count; ++a) {
            std::vector<int> tags;
            std::vector<double> cpus;
            const int services =
                static_cast<int>(rng.uniformInt(2, 4));
            for (int m = 0; m < services; ++m) {
                tags.push_back(static_cast<int>(rng.uniformInt(1, 3)));
                cpus.push_back(
                    std::round(rng.uniform(1.0, 3.0)));
            }
            apps.push_back(
                makeApp(static_cast<sim::AppId>(a), tags, cpus,
                        std::round(rng.uniform(1.0, 4.0))));
        }
        auto cluster = makeCluster(3, 4.0);

        LpScheme lp(Objective::Cost);
        PhoenixScheme phoenix(Objective::Cost);
        const SchemeResult lp_result = lp.apply(apps, cluster);
        const SchemeResult px_result = phoenix.apply(apps, cluster);
        ASSERT_FALSE(lp_result.failed);

        const double lp_rev =
            sim::revenue(apps, lp_result.activeSet(apps));
        const double px_rev =
            sim::revenue(apps, px_result.activeSet(apps));
        // LP is the optimum; heuristic must not beat it (modulo eps)
        // and should land in the same ballpark.
        EXPECT_LE(px_rev, lp_rev + 1e-6) << "trial " << trial;
        EXPECT_GE(px_rev, 0.5 * lp_rev - 1e-6) << "trial " << trial;
    }
}

TEST(DiffStates, ProducesMinimalActions)
{
    auto apps = std::vector<Application>{
        makeApp(0, {1, 1, 1}, {1, 1, 1})};
    ClusterState from = makeCluster(2, 4.0);
    from.place(PodRef{0, 0}, 0, 1.0);
    from.place(PodRef{0, 1}, 0, 1.0);

    ClusterState to = makeCluster(2, 4.0);
    to.place(PodRef{0, 0}, 0, 1.0);  // unchanged
    to.place(PodRef{0, 1}, 1, 1.0);  // migrated
    to.place(PodRef{0, 2}, 1, 1.0);  // restarted

    const auto actions = diffStates(apps, from, to);
    size_t deletes = 0;
    size_t migrations = 0;
    size_t restarts = 0;
    for (const Action &action : actions) {
        switch (action.kind) {
          case ActionKind::Delete: ++deletes; break;
          case ActionKind::Migrate: ++migrations; break;
          case ActionKind::Restart: ++restarts; break;
        }
    }
    EXPECT_EQ(deletes, 0u);
    EXPECT_EQ(migrations, 1u);
    EXPECT_EQ(restarts, 1u);
}

TEST(MakeAllSchemes, FigureOrder)
{
    const auto with_lps = makeAllSchemes(true);
    ASSERT_EQ(with_lps.size(), 7u);
    EXPECT_EQ(with_lps[0]->name(), "PhoenixFair");
    EXPECT_EQ(with_lps[1]->name(), "PhoenixCost");
    EXPECT_EQ(with_lps[2]->name(), "Fair");
    EXPECT_EQ(with_lps[3]->name(), "Priority");
    EXPECT_EQ(with_lps[4]->name(), "Default");
    EXPECT_EQ(with_lps[5]->name(), "LPFair");
    EXPECT_EQ(with_lps[6]->name(), "LPCost");
    EXPECT_EQ(makeAllSchemes(false).size(), 5u);
}
