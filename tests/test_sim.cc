/**
 * @file
 * Tests for the cluster substrate: state bookkeeping, failure
 * injection, operator metrics, and the discrete-event engine.
 */

#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "util/rng.h"

using namespace phoenix;
using namespace phoenix::sim;

namespace {

Application
taggedApp(AppId id, const std::vector<int> &tags,
          const std::vector<double> &cpus = {})
{
    Application app;
    app.id = id;
    app.services.resize(tags.size());
    for (MsId m = 0; m < tags.size(); ++m) {
        app.services[m].id = m;
        app.services[m].criticality = tags[m];
        app.services[m].cpu = m < cpus.size() ? cpus[m] : 1.0;
    }
    return app;
}

} // namespace

TEST(ClusterState, PlacementBookkeeping)
{
    ClusterState cluster;
    const NodeId n0 = cluster.addNode(10.0);
    const NodeId n1 = cluster.addNode(5.0);

    EXPECT_TRUE(cluster.place(PodRef{0, 0}, n0, 4.0));
    EXPECT_TRUE(cluster.place(PodRef{0, 1}, n0, 6.0));
    EXPECT_FALSE(cluster.place(PodRef{0, 2}, n0, 0.5)); // full
    EXPECT_FALSE(cluster.place(PodRef{0, 0}, n1, 1.0)); // already placed

    EXPECT_NEAR(cluster.used(n0), 10.0, 1e-9);
    EXPECT_NEAR(cluster.remaining(n0), 0.0, 1e-9);
    EXPECT_EQ(cluster.nodeOf(PodRef{0, 1}), n0);
    EXPECT_NEAR(cluster.podCpu(PodRef{0, 1}), 6.0, 1e-9);

    EXPECT_TRUE(cluster.evict(PodRef{0, 0}));
    EXPECT_FALSE(cluster.evict(PodRef{0, 0}));
    EXPECT_NEAR(cluster.remaining(n0), 4.0, 1e-9);
}

TEST(ClusterState, FailAndRestore)
{
    ClusterState cluster;
    const NodeId n0 = cluster.addNode(10.0);
    cluster.addNode(10.0);
    cluster.place(PodRef{0, 0}, n0, 3.0);
    cluster.place(PodRef{0, 1}, n0, 2.0);

    const auto evicted = cluster.failNode(n0);
    EXPECT_EQ(evicted.size(), 2u);
    EXPECT_FALSE(cluster.isHealthy(n0));
    EXPECT_FALSE(cluster.isActive(PodRef{0, 0}));
    EXPECT_NEAR(cluster.remaining(n0), 0.0, 1e-9);
    EXPECT_NEAR(cluster.healthyCapacity(), 10.0, 1e-9);
    EXPECT_FALSE(cluster.place(PodRef{0, 0}, n0, 1.0));

    cluster.restoreNode(n0);
    EXPECT_TRUE(cluster.isHealthy(n0));
    EXPECT_TRUE(cluster.place(PodRef{0, 0}, n0, 1.0));
    // Double-fail is a no-op.
    cluster.failNode(n0);
    EXPECT_TRUE(cluster.failNode(n0).empty());
}

TEST(ClusterState, UtilizationExcludesFailedNodes)
{
    ClusterState cluster;
    cluster.addNode(10.0);
    cluster.addNode(10.0);
    cluster.place(PodRef{0, 0}, 0, 5.0);
    EXPECT_NEAR(cluster.utilization(), 0.25, 1e-9);
    cluster.failNode(1);
    EXPECT_NEAR(cluster.utilization(), 0.5, 1e-9);
}

TEST(FailureInjector, HitsCapacityTarget)
{
    ClusterState cluster;
    for (int n = 0; n < 100; ++n)
        cluster.addNode(10.0);
    FailureInjector injector{util::Rng(3)};
    const auto event = injector.failCapacityFraction(cluster, 0.4);
    EXPECT_GE(event.failedCapacity, 0.4 * 1000.0 - 1e-9);
    // At 10 units per node, no more than one node of overshoot.
    EXPECT_LE(event.failedCapacity, 0.4 * 1000.0 + 10.0 + 1e-9);
    EXPECT_NEAR(cluster.healthyCapacity(),
                1000.0 - event.failedCapacity, 1e-9);

    const auto restored = injector.restoreAll(cluster);
    EXPECT_EQ(restored.size(), event.failedNodes.size());
    EXPECT_NEAR(cluster.healthyCapacity(), 1000.0, 1e-9);
}

TEST(FailureInjector, NodeCountVariant)
{
    ClusterState cluster;
    for (int n = 0; n < 10; ++n)
        cluster.addNode(5.0);
    FailureInjector injector{util::Rng(4)};
    const auto event = injector.failNodeCount(cluster, 3);
    EXPECT_EQ(event.failedNodes.size(), 3u);
    EXPECT_EQ(cluster.healthyNodes().size(), 7u);
    // Requesting more than available fails everything.
    const auto rest = injector.failNodeCount(cluster, 100);
    EXPECT_EQ(rest.failedNodes.size(), 7u);
}

TEST(Metrics, CriticalAvailabilityAllOrNothing)
{
    auto apps = std::vector<Application>{taggedApp(0, {1, 1, 2}),
                                         taggedApp(1, {1, 3})};
    ActiveSet active = emptyActiveSet(apps);
    EXPECT_NEAR(criticalServiceAvailability(apps, active), 0.0, 1e-9);

    active[0][0] = true;
    active[0][1] = true; // both C1 of app0 up
    active[1][0] = true; // app1's single C1 up
    EXPECT_NEAR(criticalServiceAvailability(apps, active), 1.0, 1e-9);

    active[0][1] = false; // one C1 down -> app0 unavailable
    EXPECT_NEAR(criticalServiceAvailability(apps, active), 0.5, 1e-9);
}

TEST(Metrics, RevenueNormalization)
{
    auto app0 = taggedApp(0, {1, 2}, {2.0, 2.0});
    auto app1 = taggedApp(1, {1}, {4.0});
    app0.pricePerUnit = 2.0; // full revenue 8
    app1.pricePerUnit = 1.0; // full revenue 4
    auto apps = std::vector<Application>{app0, app1};

    ActiveSet active = emptyActiveSet(apps);
    active[0][0] = true;
    active[1][0] = true;
    EXPECT_NEAR(revenue(apps, active), 8.0, 1e-9);
    EXPECT_NEAR(revenueNormalized(apps, active), 8.0 / 12.0, 1e-9);
}

TEST(Metrics, FairShareDeviationSplitsSign)
{
    auto apps = std::vector<Application>{
        taggedApp(0, {1, 1}, {5.0, 5.0}), taggedApp(1, {1}, {10.0})};
    // Capacity 10: water-fill share 5 each.
    ActiveSet active = emptyActiveSet(apps);
    active[0][0] = true;
    active[0][1] = true; // app0 uses 10 (5 above share)
    const auto dev = fairShareDeviation(apps, active, 10.0);
    EXPECT_NEAR(dev.positive, 0.5, 1e-9); // +5 normalized by 10
    EXPECT_NEAR(dev.negative, 0.5, 1e-9); // app1 5 below share
}

TEST(Metrics, DependencyCheck)
{
    Application app = taggedApp(0, {1, 2, 2});
    app.hasDependencyGraph = true;
    app.dag = graph::DiGraph(3);
    app.dag.addEdge(0, 1);
    app.dag.addEdge(1, 2);
    auto apps = std::vector<Application>{app};

    ActiveSet active = emptyActiveSet(apps);
    active[0][2] = true; // active with no active predecessor
    EXPECT_FALSE(respectsDependencies(apps, active));
    active[0][1] = true;
    EXPECT_FALSE(respectsDependencies(apps, active)); // 1 lacks pred
    active[0][0] = true;
    EXPECT_TRUE(respectsDependencies(apps, active));
}

TEST(EventQueue, OrderingAndTime)
{
    EventQueue queue;
    std::vector<int> fired;
    queue.schedule(5.0, [&] { fired.push_back(2); });
    queue.schedule(1.0, [&] { fired.push_back(1); });
    queue.schedule(5.0, [&] { fired.push_back(3); }); // FIFO tie-break
    queue.runAll();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
    EXPECT_NEAR(queue.now(), 5.0, 1e-9);
}

TEST(EventQueue, HandlersScheduleMoreEvents)
{
    EventQueue queue;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 5)
            queue.scheduleAfter(10.0, tick);
    };
    queue.scheduleAfter(10.0, tick);
    queue.runUntil(35.0);
    EXPECT_EQ(count, 3);
    EXPECT_NEAR(queue.now(), 35.0, 1e-9);
    queue.runUntil(100.0);
    EXPECT_EQ(count, 5);
}

TEST(EventQueue, PastEventsClampToNow)
{
    EventQueue queue;
    queue.schedule(10.0, [] {});
    queue.runAll();
    bool fired = false;
    queue.schedule(1.0, [&] { fired = true; }); // in the past
    queue.runAll();
    EXPECT_TRUE(fired);
    EXPECT_NEAR(queue.now(), 10.0, 1e-9);
}

TEST(EventQueue, SameTimestampFifo)
{
    // Events scheduled for the same instant fire in schedule order —
    // the contract src/serve leans on: the capacity refresh is armed
    // before the arrival streams, so a request arriving at a refresh
    // instant sees that instant's ready state.
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        queue.schedule(5.0, [&order, i] { order.push_back(i); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, HandlerScheduledSameInstantRunsAfterExisting)
{
    // A handler scheduling another event *at the current instant*
    // runs it after everything already queued for that instant, and
    // still within the same runUntil call.
    EventQueue queue;
    std::vector<std::string> order;
    queue.schedule(5.0, [&] {
        order.push_back("first");
        queue.schedule(5.0, [&] { order.push_back("nested"); });
    });
    queue.schedule(5.0, [&] { order.push_back("second"); });
    queue.runUntil(5.0);
    EXPECT_EQ(order, (std::vector<std::string>{"first", "second",
                                               "nested"}));
    EXPECT_LT(queue.nextEventAt(), 0.0);
}
