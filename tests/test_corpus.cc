/**
 * @file
 * Regression-corpus replay: every minimized repro committed under
 * tests/corpus/ must load, round-trip through the case serializer, and
 * pass the full differential oracle. Each file is a shrunk witness of
 * a bug that has been fixed (or of an oracle-soundness boundary that
 * was tightened) — a failure here means a regression re-introduced it.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/case.h"
#include "check/oracle.h"

using namespace phoenix;
using check::CheckCase;
using check::OracleOptions;

namespace {

namespace fs = std::filesystem;

std::vector<fs::path>
corpusFiles()
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(PHOENIX_CORPUS_DIR)) {
        if (entry.path().extension() == ".json")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(CorpusReplay, CorpusIsNotEmpty)
{
    // The committed corpus must at least carry the named regressions
    // for the bugs previous PRs fixed.
    const auto files = corpusFiles();
    ASSERT_GE(files.size(), 5u);
    bool has_pr2 = false;
    bool has_pr3 = false;
    for (const auto &path : files) {
        const std::string stem = path.stem().string();
        has_pr2 = has_pr2 || stem == "pr2-noncontiguous-appid";
        has_pr3 = has_pr3 || stem == "pr3-migrate-while-starting";
    }
    EXPECT_TRUE(has_pr2);
    EXPECT_TRUE(has_pr3);
}

TEST(CorpusReplay, EveryEntryParsesAndRoundTrips)
{
    for (const auto &path : corpusFiles()) {
        SCOPED_TRACE(path.filename().string());
        std::string error;
        const auto parsed = CheckCase::fromJson(slurp(path), &error);
        ASSERT_TRUE(parsed.has_value()) << error;
        EXPECT_FALSE(parsed->name.empty());
        EXPECT_FALSE(parsed->nodeCapacities.empty());
        EXPECT_FALSE(parsed->apps.empty());

        const auto again = CheckCase::fromJson(parsed->toJson(), &error);
        ASSERT_TRUE(again.has_value()) << error;
        EXPECT_EQ(again->toJson(), parsed->toJson());
    }
}

TEST(CorpusReplay, EveryEntryPassesTheOracle)
{
    OracleOptions options;
    for (const auto &path : corpusFiles()) {
        SCOPED_TRACE(path.filename().string());
        std::string error;
        const auto parsed = CheckCase::fromJson(slurp(path), &error);
        ASSERT_TRUE(parsed.has_value()) << error;

        const auto result = check::checkCase(*parsed, options);
        for (const auto &violation : result.violations) {
            ADD_FAILURE() << violation.property << " ["
                          << violation.scheme << "] "
                          << violation.detail;
        }
    }
}
