/**
 * @file
 * Tests for the continuous chaos soak (src/exp/soak.h): schedule
 * generation (determinism, per-node exclusivity, bounded disturbance),
 * clean soaks across schemes, run-to-run determinism of the full
 * harness, and the injected-fault path through the src/check oracle
 * and shrinker.
 */

#include <gtest/gtest.h>

#include <set>

#include "check/oracle.h"
#include "check/shrink.h"
#include "exp/soak.h"

using namespace phoenix;
using exp::SoakConfig;
using exp::SoakResult;
using exp::SoakWave;
using exp::SoakWaveKind;

namespace {

SoakConfig
smokeConfig(uint64_t seed = 7)
{
    SoakConfig config;
    config.seed = seed;
    config.hours = 0.6;
    config.meanWaveGap = 120.0;
    return config;
}

} // namespace

TEST(SoakWaves, ScheduleIsDeterministicAndBounded)
{
    SoakConfig config;
    config.seed = 11;
    config.hours = 2.0;
    config.meanWaveGap = 120.0;
    const auto a = exp::generateSoakWaves(config);
    const auto b = exp::generateSoakWaves(config);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
        EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
        EXPECT_EQ(a[i].nodes, b[i].nodes);
        EXPECT_DOUBLE_EQ(a[i].factor, b[i].factor);
        EXPECT_DOUBLE_EQ(a[i].skew, b[i].skew);
    }

    // The disturbance bound holds at every wave boundary (the extreme
    // points of the step function).
    const auto max_disturbed = static_cast<size_t>(
        config.maxDisturbedFraction *
        static_cast<double>(config.testbed.nodeCount));
    for (const SoakWave &wave : a) {
        EXPECT_LE(exp::disturbedNodesAt(a, wave.at + 1e-9),
                  max_disturbed);
    }

    // Windows never overlap per node: claims are exclusive.
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = i + 1; j < a.size(); ++j) {
            if (a[i].at + a[i].duration <= a[j].at ||
                a[j].at + a[j].duration <= a[i].at)
                continue;
            for (sim::NodeId n : a[i].nodes) {
                EXPECT_EQ(std::count(a[j].nodes.begin(),
                                     a[j].nodes.end(), n),
                          0);
            }
        }
    }
}

TEST(SoakWaves, LongScheduleCoversTheTaxonomy)
{
    SoakConfig config;
    config.seed = 7;
    config.hours = 4.0;
    config.meanWaveGap = 120.0;
    const auto waves = exp::generateSoakWaves(config);
    std::set<SoakWaveKind> kinds;
    for (const SoakWave &wave : waves)
        kinds.insert(wave.kind);
    // Every fault class of the taxonomy shows up in a long soak.
    EXPECT_EQ(kinds.size(), 6u);
}

TEST(SoakWaves, ZoneScheduleEmitsCorrelatedZoneFailures)
{
    SoakConfig config;
    config.seed = 7;
    config.hours = 4.0;
    config.meanWaveGap = 120.0;
    config.zoneCount = 5;
    const auto waves = exp::generateSoakWaves(config);

    const size_t zone_size =
        config.testbed.nodeCount / config.zoneCount;
    size_t zone_waves = 0;
    for (const SoakWave &wave : waves) {
        if (wave.kind != SoakWaveKind::ZoneFail)
            continue;
        ++zone_waves;
        // A zone-correlated wave takes down one whole failure domain
        // (every node of one zone), never a partial one.
        ASSERT_EQ(wave.nodes.size(), zone_size);
        const auto zone = wave.nodes.front() % config.zoneCount;
        for (sim::NodeId n : wave.nodes)
            EXPECT_EQ(n % config.zoneCount, zone);
    }
    EXPECT_GT(zone_waves, 0u);

    // The guarded draw keeps the classic stream free of zone waves.
    SoakConfig classic = config;
    classic.zoneCount = 0;
    for (const SoakWave &wave : exp::generateSoakWaves(classic))
        EXPECT_NE(wave.kind, SoakWaveKind::ZoneFail);
}

TEST(Soak, ConstrainedZoneSoakRunsClean)
{
    // Zone-correlated failures against the spread/PDB-constrained
    // testbed: the whole convergence battery plus the constraint-cap
    // and stranded-constraint dimensions must stay quiet — after
    // every zone kill heals, the constrained C1 pairs must span two
    // zones again.
    SoakConfig config = smokeConfig();
    config.zoneCount = 5;
    const SoakResult result = exp::runSoak(config);
    EXPECT_TRUE(result.ok())
        << result.violationCount << " violations, first: "
        << (result.violations.empty()
                ? "-"
                : result.violations.front().property + " " +
                      result.violations.front().detail);
    EXPECT_GT(result.waves.size(), 0u);
    EXPECT_GT(result.checkTicks, 0u);
}

TEST(Soak, ConstrainedReproCarriesTopology)
{
    SoakConfig config = smokeConfig();
    config.zoneCount = 5;
    const auto waves = exp::generateSoakWaves(config);
    ASSERT_FALSE(waves.empty());
    const check::CheckCase repro = exp::makeSoakRepro(
        config, waves, config.hours * 3600.0);

    // Zone labels and the constrained overlay survive the bridge into
    // the differential oracle, so a soak violation shrinks under the
    // same placement policies it was found with.
    EXPECT_EQ(repro.nodeZones.size(), config.testbed.nodeCount);
    EXPECT_TRUE(repro.constrained());
    bool spread_seen = false;
    for (const auto &app : repro.apps) {
        for (const auto &ms : app.services)
            spread_seen = spread_seen || ms.minZoneSpread == 2;
    }
    EXPECT_TRUE(spread_seen);

    const auto parsed = check::CheckCase::fromJson(repro.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->toJson(), repro.toJson());
    EXPECT_EQ(parsed->nodeZones, repro.nodeZones);
}

TEST(Soak, SmokeRunsCleanAcrossSchemes)
{
    for (const auto scheme :
         {exp::RecoveryScheme::PhoenixCost,
          exp::RecoveryScheme::Default}) {
        SoakConfig config = smokeConfig();
        config.scheme = scheme;
        const SoakResult result = exp::runSoak(config);
        EXPECT_TRUE(result.ok())
            << recoverySchemeName(scheme) << ": "
            << result.violationCount << " violations, first: "
            << (result.violations.empty()
                    ? "-"
                    : result.violations.front().property + " " +
                          result.violations.front().detail);
        EXPECT_GT(result.waves.size(), 0u);
        EXPECT_GT(result.checkTicks, 0u);
        EXPECT_EQ(result.waveRecords.size(), result.waves.size());
    }
}

TEST(Soak, RunIsDeterministicForASeed)
{
    const SoakConfig config = smokeConfig(13);
    const SoakResult a = exp::runSoak(config);
    const SoakResult b = exp::runSoak(config);
    EXPECT_EQ(a.waves.size(), b.waves.size());
    EXPECT_EQ(a.violationCount, b.violationCount);
    EXPECT_EQ(a.evictedPods, b.evictedPods);
    EXPECT_EQ(a.replans, b.replans);
    EXPECT_EQ(a.maxPending, b.maxPending);
    EXPECT_DOUBLE_EQ(a.minAvailability, b.minAvailability);
    EXPECT_DOUBLE_EQ(a.meanAvailability, b.meanAvailability);
    ASSERT_EQ(a.waveRecords.size(), b.waveRecords.size());
    for (size_t i = 0; i < a.waveRecords.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.waveRecords[i].readyCapacityStart,
                         b.waveRecords[i].readyCapacityStart);
        EXPECT_DOUBLE_EQ(a.waveRecords[i].readyCapacityEnd,
                         b.waveRecords[i].readyCapacityEnd);
        EXPECT_EQ(a.waveRecords[i].evictionsDuring,
                  b.waveRecords[i].evictionsDuring);
    }
}

TEST(Soak, InjectedFaultIsCaughtAndShrinks)
{
    SoakConfig config = smokeConfig();
    config.hours = 0.3;
    config.injectFault = true;
    config.injectTightCapacityFraction = 0.3;
    const SoakResult result = exp::runSoak(config);
    ASSERT_FALSE(result.ok());
    ASSERT_FALSE(result.violations.empty());
    EXPECT_EQ(result.violations.front().property,
              "injected-tight-capacity");
    EXPECT_GE(result.firstViolationAt, 0.0);

    // The soak's fault script bridges into the differential oracle:
    // the repro violates the same injected invariant there, and the
    // shrinker reduces it while preserving the violation.
    check::CheckCase repro = exp::makeSoakRepro(
        config, result.waves, result.firstViolationAt);
    repro.name = "soak-injected";
    check::OracleOptions oracle;
    oracle.runLp = false;
    oracle.lifecycle = false;
    oracle.injectTightCapacityFraction =
        config.injectTightCapacityFraction;
    const auto checked = check::checkCase(repro, oracle);
    ASSERT_FALSE(checked.ok());

    const auto shrunk = check::shrinkCase(repro, oracle);
    EXPECT_FALSE(shrunk.properties.empty());
    EXPECT_LE(shrunk.shrunk.serviceCount(), repro.serviceCount());
    const auto recheck = check::checkCase(shrunk.shrunk, oracle);
    EXPECT_FALSE(recheck.ok());

    // Round-trips through the corpus format.
    const auto parsed =
        check::CheckCase::fromJson(shrunk.shrunk.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->toJson(), shrunk.shrunk.toJson());
}
