/**
 * @file
 * Tests for the Phoenix packing scheduler (Algorithm 2): best-fit,
 * repacking/migration, deletion of lower-ranked containers, and the
 * capacity/consistency invariants of the produced plans.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/packing.h"
#include "core/planner.h"
#include "util/rng.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::Application;
using sim::ClusterState;
using sim::MsId;
using sim::NodeId;
using sim::PodRef;

namespace {

Application
makeApp(sim::AppId id, const std::vector<double> &cpus)
{
    Application app;
    app.id = id;
    app.services.resize(cpus.size());
    for (MsId m = 0; m < cpus.size(); ++m) {
        app.services[m].id = m;
        app.services[m].cpu = cpus[m];
        app.services[m].criticality = 1;
    }
    return app;
}

/** Validate plan/state consistency: capacities honoured, actions sane. */
void
checkInvariants(const std::vector<Application> &apps,
                const ClusterState &before, const PackResult &result)
{
    (void)apps;
    // No node over capacity; placements only on healthy nodes.
    for (size_t n = 0; n < result.state.nodeCount(); ++n) {
        const auto id = static_cast<NodeId>(n);
        EXPECT_LE(result.state.used(id),
                  result.state.node(id).capacity + 1e-6);
        if (!result.state.isHealthy(id)) {
            EXPECT_TRUE(result.state.podsOn(id).empty());
        }
    }
    // Replaying the action log on `before` reproduces the final state.
    ClusterState replay = before;
    for (const Action &action : result.actions) {
        switch (action.kind) {
          case ActionKind::Delete:
            EXPECT_TRUE(replay.evict(action.pod));
            break;
          case ActionKind::Migrate: {
            const double cpu = replay.podCpu(action.pod);
            EXPECT_TRUE(replay.evict(action.pod));
            EXPECT_TRUE(replay.place(action.pod, action.to, cpu));
            break;
          }
          case ActionKind::Restart:
            EXPECT_TRUE(replay.place(
                action.pod, action.to,
                apps[action.pod.app].services[action.pod.ms].totalCpu()));
            break;
        }
    }
    EXPECT_EQ(replay.assignment(), result.state.assignment());
}

} // namespace

TEST(Packing, BestFitPrefersTightestNode)
{
    auto apps = std::vector<Application>{makeApp(0, {3.0})};
    ClusterState cluster;
    cluster.addNode(10.0);
    cluster.addNode(4.0); // tightest node that fits
    cluster.addNode(8.0);

    PackingScheduler packer;
    const GlobalRank ranked{PodRef{0, 0}};
    const PackResult result = packer.pack(apps, cluster, ranked);
    ASSERT_TRUE(result.complete);
    EXPECT_EQ(result.state.nodeOf(PodRef{0, 0}), NodeId{1});
    checkInvariants(apps, cluster, result);
}

TEST(Packing, KeepsAlreadyRunningContainers)
{
    auto apps = std::vector<Application>{makeApp(0, {3.0, 2.0})};
    ClusterState cluster;
    cluster.addNode(10.0);
    cluster.place(PodRef{0, 0}, 0, 3.0);

    PackingScheduler packer;
    const GlobalRank ranked{PodRef{0, 0}, PodRef{0, 1}};
    const PackResult result = packer.pack(apps, cluster, ranked);
    ASSERT_TRUE(result.complete);
    EXPECT_EQ(result.placed, 2u);
    EXPECT_EQ(result.state.nodeOf(PodRef{0, 0}), NodeId{0});
    // No action should touch the already-running pod.
    for (const Action &action : result.actions)
        EXPECT_FALSE(action.pod == (PodRef{0, 0}));
    checkInvariants(apps, cluster, result);
}

TEST(Packing, MigrationFreesFragmentedCapacity)
{
    // Node 0 (cap 6) holds pods 2+2; node 1 (cap 7) holds a 3.
    // Incoming container of size 5 fits nowhere by best-fit (free
    // space is 2 and 4) but fits on node 0 after migrating its two
    // 2-unit pods onto node 1.
    auto apps = std::vector<Application>{makeApp(0, {2.0, 2.0, 3.0, 5.0})};
    ClusterState cluster;
    cluster.addNode(6.0);
    cluster.addNode(7.0);
    cluster.place(PodRef{0, 0}, 0, 2.0);
    cluster.place(PodRef{0, 1}, 0, 2.0);
    cluster.place(PodRef{0, 2}, 1, 3.0);

    PackingScheduler packer;
    const GlobalRank ranked{PodRef{0, 3}};
    const PackResult result = packer.pack(apps, cluster, ranked);
    ASSERT_TRUE(result.complete);
    EXPECT_TRUE(result.state.isActive(PodRef{0, 3}));
    // All previously running pods must still be active (migrated, not
    // deleted).
    EXPECT_TRUE(result.state.isActive(PodRef{0, 0}));
    EXPECT_TRUE(result.state.isActive(PodRef{0, 1}));
    EXPECT_TRUE(result.state.isActive(PodRef{0, 2}));
    bool saw_migration = false;
    for (const Action &action : result.actions)
        saw_migration |= action.kind == ActionKind::Migrate;
    EXPECT_TRUE(saw_migration);
    checkInvariants(apps, cluster, result);
}

TEST(Packing, MigrationDisabledFallsBackToDeletion)
{
    auto apps = std::vector<Application>{makeApp(0, {2.0, 2.0, 3.0, 5.0})};
    ClusterState cluster;
    cluster.addNode(6.0);
    cluster.addNode(6.0);
    cluster.place(PodRef{0, 0}, 0, 2.0);
    cluster.place(PodRef{0, 1}, 0, 2.0);
    cluster.place(PodRef{0, 2}, 1, 3.0);

    PackingOptions options;
    options.allowMigrations = false;
    PackingScheduler packer(options);
    // Rank the incoming pod above the small ones so deletion targets
    // the unranked/lower-ranked pods.
    const GlobalRank ranked{PodRef{0, 3}, PodRef{0, 0}, PodRef{0, 1},
                            PodRef{0, 2}};
    const PackResult result = packer.pack(apps, cluster, ranked);
    EXPECT_TRUE(result.state.isActive(PodRef{0, 3}));
    bool saw_delete = false;
    for (const Action &action : result.actions)
        saw_delete |= action.kind == ActionKind::Delete;
    EXPECT_TRUE(saw_delete);
    checkInvariants(apps, cluster, result);
}

TEST(Packing, DeletesLowestRankedFirst)
{
    // Node of size 10 holds ranked pods A(4, rank1), B(4, rank2) and
    // unranked U(2). Incoming I(4, rank0) must evict U then B, not A.
    auto apps = std::vector<Application>{
        makeApp(0, {4.0, 4.0, 2.0, 4.0})};
    ClusterState cluster;
    cluster.addNode(10.0);
    cluster.place(PodRef{0, 0}, 0, 4.0); // A
    cluster.place(PodRef{0, 1}, 0, 4.0); // B
    cluster.place(PodRef{0, 2}, 0, 2.0); // U (unranked)

    PackingScheduler packer;
    const GlobalRank ranked{PodRef{0, 3}, PodRef{0, 0}, PodRef{0, 1}};
    const PackResult result = packer.pack(apps, cluster, ranked);
    EXPECT_TRUE(result.state.isActive(PodRef{0, 3}));
    EXPECT_TRUE(result.state.isActive(PodRef{0, 0}));
    EXPECT_FALSE(result.state.isActive(PodRef{0, 2})); // U deleted first
    EXPECT_FALSE(result.state.isActive(PodRef{0, 1})); // then B
    checkInvariants(apps, cluster, result);
}

TEST(Packing, NeverDeletesHigherRankedForLower)
{
    // Capacity for one pod only; rank order must win.
    auto apps = std::vector<Application>{makeApp(0, {4.0, 4.0})};
    ClusterState cluster;
    cluster.addNode(4.0);
    cluster.place(PodRef{0, 0}, 0, 4.0);

    PackingScheduler packer;
    const GlobalRank ranked{PodRef{0, 0}, PodRef{0, 1}};
    const PackResult result = packer.pack(apps, cluster, ranked);
    EXPECT_TRUE(result.state.isActive(PodRef{0, 0}));
    EXPECT_FALSE(result.state.isActive(PodRef{0, 1}));
    EXPECT_FALSE(result.complete);
    checkInvariants(apps, cluster, result);
}

TEST(Packing, IncompleteWhenTrulyOverCapacity)
{
    auto apps = std::vector<Application>{makeApp(0, {4.0, 4.0, 4.0})};
    ClusterState cluster;
    cluster.addNode(9.0);

    PackingScheduler packer;
    const GlobalRank ranked{PodRef{0, 0}, PodRef{0, 1}, PodRef{0, 2}};
    const PackResult result = packer.pack(apps, cluster, ranked);
    EXPECT_FALSE(result.complete);
    EXPECT_EQ(result.placed, 2u);
    checkInvariants(apps, cluster, result);
}

TEST(Packing, EmptyRankIsNoop)
{
    auto apps = std::vector<Application>{makeApp(0, {1.0})};
    ClusterState cluster;
    cluster.addNode(4.0);
    cluster.place(PodRef{0, 0}, 0, 1.0);

    PackingScheduler packer;
    const PackResult result = packer.pack(apps, cluster, {});
    EXPECT_TRUE(result.complete);
    EXPECT_TRUE(result.actions.empty());
    EXPECT_TRUE(result.state.isActive(PodRef{0, 0}));
}

class PackingRandomized : public ::testing::TestWithParam<int>
{
};

TEST_P(PackingRandomized, InvariantsHoldUnderRandomFailures)
{
    util::Rng rng(GetParam() * 2654435761u + 3);

    // Random apps.
    const int app_count = static_cast<int>(rng.uniformInt(1, 4));
    std::vector<Application> apps;
    for (int a = 0; a < app_count; ++a) {
        const int services = static_cast<int>(rng.uniformInt(2, 12));
        std::vector<double> cpus;
        for (int m = 0; m < services; ++m)
            cpus.push_back(rng.uniform(0.5, 4.0));
        apps.push_back(makeApp(static_cast<sim::AppId>(a), cpus));
        for (auto &ms : apps.back().services) {
            ms.criticality =
                static_cast<int>(rng.uniformInt(1, 5));
        }
    }

    // Random cluster, initial placement of everything via a planner
    // pass, then random node failures.
    ClusterState cluster;
    const int nodes = static_cast<int>(rng.uniformInt(3, 12));
    for (int n = 0; n < nodes; ++n)
        cluster.addNode(rng.uniform(4.0, 12.0));

    Planner planner;
    FairObjective fair;
    const GlobalRank initial =
        planner.plan(apps, fair, cluster.healthyCapacity());
    PackingScheduler packer;
    PackResult placed = packer.pack(apps, cluster, initial);

    ClusterState failed = placed.state;
    const int kill = static_cast<int>(rng.uniformInt(0, nodes - 1));
    std::vector<NodeId> ids = failed.healthyNodes();
    rng.shuffle(ids);
    for (int k = 0; k < kill; ++k)
        failed.failNode(ids[k]);

    // Replan on the degraded cluster.
    const GlobalRank replan =
        planner.plan(apps, fair, failed.healthyCapacity());
    const PackResult result = packer.pack(apps, failed, replan);

    checkInvariants(apps, failed, result);
    // placed counts ranked pods only and never exceeds the rank size.
    EXPECT_LE(result.placed, replan.size());
    // Every pod the plan kept or placed is on a healthy node.
    for (const auto &[pod, node] : result.state.assignment()) {
        (void)pod;
        EXPECT_TRUE(result.state.isHealthy(node));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackingRandomized,
                         ::testing::Range(0, 40));
