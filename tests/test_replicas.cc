/**
 * @file
 * Tests for the Appendix D multi-replica extension: replica-aware
 * active sets, quorum semantics, replica-aware packing (all-or-quorum
 * per microservice with a top-up pass), and the placed-usage fairness
 * metric.
 */

#include <gtest/gtest.h>

#include "core/packing.h"
#include "core/planner.h"
#include "core/schemes.h"
#include "sim/metrics.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::Application;
using sim::ClusterState;
using sim::MsId;
using sim::PodRef;

namespace {

Application
replicatedApp(sim::AppId id, double cpu, int replicas, int quorum = 0)
{
    Application app;
    app.id = id;
    app.services.resize(1);
    app.services[0].id = 0;
    app.services[0].cpu = cpu;
    app.services[0].replicas = replicas;
    app.services[0].quorum = quorum;
    app.services[0].criticality = 1;
    return app;
}

} // namespace

TEST(Replicas, QuorumCountDefaultsToAllReplicas)
{
    sim::Microservice ms;
    ms.replicas = 4;
    EXPECT_EQ(ms.quorumCount(), 4);
    ms.quorum = 2;
    EXPECT_EQ(ms.quorumCount(), 2);
    ms.quorum = 9; // nonsense quorum above replica count clamps
    EXPECT_EQ(ms.quorumCount(), 4);
    ms.replicas = 1;
    ms.quorum = 0;
    EXPECT_EQ(ms.quorumCount(), 1);
    EXPECT_NEAR(ms.quorumCpu(), ms.cpu, 1e-12);
}

TEST(Replicas, ActiveSetRequiresQuorum)
{
    auto apps = std::vector<Application>{replicatedApp(0, 1.0, 3, 2)};
    ClusterState cluster;
    cluster.addNode(10.0);

    cluster.place(PodRef{0, 0, 0}, 0, 1.0);
    auto active = sim::activeSetFromCluster(apps, cluster);
    EXPECT_FALSE(active[0][0]); // 1 of quorum 2

    cluster.place(PodRef{0, 0, 1}, 0, 1.0);
    active = sim::activeSetFromCluster(apps, cluster);
    EXPECT_TRUE(active[0][0]); // quorum met
}

TEST(Replicas, ActiveSetRequiresAllWithoutQuorum)
{
    auto apps = std::vector<Application>{replicatedApp(0, 1.0, 3)};
    ClusterState cluster;
    cluster.addNode(10.0);
    cluster.place(PodRef{0, 0, 0}, 0, 1.0);
    cluster.place(PodRef{0, 0, 1}, 0, 1.0);
    EXPECT_FALSE(sim::activeSetFromCluster(apps, cluster)[0][0]);
    cluster.place(PodRef{0, 0, 2}, 0, 1.0);
    EXPECT_TRUE(sim::activeSetFromCluster(apps, cluster)[0][0]);
}

TEST(Replicas, PackerPlacesAllReplicasWhenCapacityAllows)
{
    auto apps = std::vector<Application>{replicatedApp(0, 2.0, 4, 2)};
    ClusterState cluster;
    cluster.addNode(8.0);

    PackingScheduler packer;
    const PackResult result =
        packer.pack(apps, cluster, {PodRef{0, 0}});
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.state.assignment().size(), 4u);
    EXPECT_TRUE(
        sim::activeSetFromCluster(apps, result.state)[0][0]);
}

TEST(Replicas, PackerSettlesForQuorumUnderPressure)
{
    // Capacity for 2 of 4 replicas; quorum 2 -> active at reduced
    // replication.
    auto apps = std::vector<Application>{replicatedApp(0, 2.0, 4, 2)};
    ClusterState cluster;
    cluster.addNode(4.0);

    PackingScheduler packer;
    const PackResult result =
        packer.pack(apps, cluster, {PodRef{0, 0}});
    EXPECT_FALSE(result.complete); // not all replicas placed
    EXPECT_EQ(result.placed, 1u);  // ...but the ms is viable
    EXPECT_EQ(result.state.assignment().size(), 2u);
    EXPECT_TRUE(
        sim::activeSetFromCluster(apps, result.state)[0][0]);
}

TEST(Replicas, SubQuorumGetsCleanedUp)
{
    // Room for only 1 replica with quorum 2: nothing should stay.
    auto apps = std::vector<Application>{replicatedApp(0, 2.0, 4, 2)};
    ClusterState cluster;
    cluster.addNode(2.0);

    PackingScheduler packer;
    const PackResult result =
        packer.pack(apps, cluster, {PodRef{0, 0}});
    EXPECT_FALSE(result.complete);
    EXPECT_EQ(result.placed, 0u);
    EXPECT_TRUE(result.state.assignment().empty());
}

TEST(Replicas, QuorumFirstThenTopUp)
{
    // Two microservices, each 2 replicas (quorum 1), node fits 3 pods:
    // both services must reach quorum before either gets its second
    // replica.
    Application app;
    app.id = 0;
    app.services.resize(2);
    for (MsId m = 0; m < 2; ++m) {
        app.services[m].id = m;
        app.services[m].cpu = 2.0;
        app.services[m].replicas = 2;
        app.services[m].quorum = 1;
        app.services[m].criticality = 1;
    }
    auto apps = std::vector<Application>{app};
    ClusterState cluster;
    cluster.addNode(6.0);

    PackingScheduler packer;
    const PackResult result =
        packer.pack(apps, cluster, {PodRef{0, 0}, PodRef{0, 1}});
    const auto active = sim::activeSetFromCluster(apps, result.state);
    EXPECT_TRUE(active[0][0]);
    EXPECT_TRUE(active[0][1]); // not starved by ms0's top-up
    EXPECT_EQ(result.state.assignment().size(), 3u);
}

TEST(Replicas, PlannerReservesQuorumDemand)
{
    // Aggregate capacity fits the quorum (2x2=4) but not all replicas
    // (4x2=8): the planner must still rank the service.
    auto apps = std::vector<Application>{replicatedApp(0, 2.0, 4, 2)};
    Planner planner;
    FairObjective fair;
    EXPECT_EQ(planner.plan(apps, fair, 4.0).size(), 1u);
    EXPECT_EQ(planner.plan(apps, fair, 3.0).size(), 0u);
}

TEST(Replicas, FairShareDeviationUsesPlacedResources)
{
    // App 0 active at quorum (2 of 4 replicas placed): deviation must
    // reflect the 4 placed units, not the 8-unit full demand.
    auto apps = std::vector<Application>{replicatedApp(0, 2.0, 4, 2),
                                         replicatedApp(1, 2.0, 4, 2)};
    ClusterState cluster;
    cluster.addNode(8.0);
    cluster.place(PodRef{0, 0, 0}, 0, 2.0);
    cluster.place(PodRef{0, 0, 1}, 0, 2.0);
    cluster.place(PodRef{1, 0, 0}, 0, 2.0);
    cluster.place(PodRef{1, 0, 1}, 0, 2.0);

    const auto dev = sim::fairShareDeviationPlaced(apps, cluster);
    // Fair share 4 each; both use exactly 4.
    EXPECT_NEAR(dev.positive, 0.0, 1e-9);
    EXPECT_NEAR(dev.negative, 0.0, 1e-9);
}

TEST(Replicas, PhoenixSchemeEndToEndWithReplicas)
{
    auto apps = std::vector<Application>{replicatedApp(0, 1.0, 6, 3),
                                         replicatedApp(1, 1.0, 6, 3)};
    apps[0].services[0].criticality = 1;
    apps[1].services[0].criticality = 1;
    ClusterState cluster;
    cluster.addNode(4.0);
    cluster.addNode(4.0);

    // 8 capacity, full demand 12, quorum demand 6: both apps activate.
    PhoenixScheme phoenix(Objective::Fair);
    const SchemeResult result = phoenix.apply(apps, cluster);
    const auto active = result.activeSet(apps);
    EXPECT_TRUE(active[0][0]);
    EXPECT_TRUE(active[1][0]);
    EXPECT_GE(result.pack.state.assignment().size(), 6u);
}

TEST(Replicas, LpSchemeRefusesMultiReplicaInstances)
{
    auto apps = std::vector<Application>{replicatedApp(0, 1.0, 3, 2)};
    ClusterState cluster;
    cluster.addNode(8.0);
    LpScheme lp(Objective::Cost);
    EXPECT_TRUE(lp.apply(apps, cluster).failed);
}
