/**
 * @file
 * Tests for the utility layer: RNG determinism and distribution sanity,
 * statistics helpers, the sorted key/value container, and table output.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "util/bucketed_kv.h"
#include "util/heap.h"
#include "util/rng.h"
#include "util/sorted_kv.h"
#include "util/stats.h"
#include "util/table.h"

using namespace phoenix::util;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
    Rng c(124);
    EXPECT_NE(Rng(123)(), c());
}

TEST(Rng, SplitmixMixIsStatelessAndMatchesStep)
{
    // The stateless finalizer mixes exactly like one splitmix64 step.
    uint64_t state = 42;
    const uint64_t stepped = splitmix64(state);
    EXPECT_EQ(splitmix64Mix(42), stepped);
    EXPECT_EQ(splitmix64Mix(42), splitmix64Mix(42));
    EXPECT_NE(splitmix64Mix(42), splitmix64Mix(43));
}

TEST(Rng, CellSeedHasNoAdditiveStructure)
{
    // Regression for the old sweep seeding (base + t*7919 +
    // rate*1000): additive formulas let different cells — and sweeps
    // with different bases — land on the same seed. cellSeed must
    // separate all of these.
    std::set<uint64_t> seeds;
    size_t cells = 0;
    for (uint64_t base : {100ull, 500ull, 507ull, 900ull}) {
        for (uint64_t rate_bits : {1ull, 2ull, 4046ull, 8092ull}) {
            for (uint64_t t = 0; t < 100; ++t) {
                seeds.insert(cellSeed(base, rate_bits, t));
                ++cells;
            }
        }
    }
    EXPECT_EQ(seeds.size(), cells);

    // Coordinate order matters: (a, b) and (b, a) are different cells.
    EXPECT_NE(cellSeed(1, 2, 3), cellSeed(1, 3, 2));
    // And the arity matters too.
    EXPECT_NE(cellSeed(1, 2), cellSeed(1, 2, 0));
}

TEST(Rng, DoubleBitsIsExact)
{
    EXPECT_EQ(doubleBits(0.5), 0x3fe0000000000000ull);
    EXPECT_NE(doubleBits(0.5), doubleBits(0.5000000000000001));
    EXPECT_EQ(doubleBits(0.0), 0ull);
}

TEST(Rng, UniformRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const int64_t v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
    }
}

TEST(Rng, UniformMeanConverges)
{
    Rng rng(2);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.uniform(10.0, 20.0));
    EXPECT_NEAR(stat.mean(), 15.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(3);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.exponential(0.5));
    EXPECT_NEAR(stat.mean(), 2.0, 0.1);
}

TEST(Rng, BoundedParetoStaysInBounds)
{
    Rng rng(4);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.boundedPareto(0.1, 32.0, 1.15);
        EXPECT_GE(x, 0.1 - 1e-9);
        EXPECT_LE(x, 32.0 + 1e-9);
    }
}

TEST(Rng, ZipfSkewsTowardLowRanks)
{
    Rng rng(5);
    size_t low = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i) {
        const uint64_t rank = rng.zipf(1000, 1.5);
        EXPECT_GE(rank, 1u);
        EXPECT_LE(rank, 1000u);
        if (rank <= 10)
            ++low;
    }
    // With skew 1.5, the top-10 ranks should dominate.
    EXPECT_GT(low, trials / 2u);
}

TEST(Rng, WeightedChoiceRespectsWeights)
{
    Rng rng(6);
    std::vector<double> weights{1.0, 0.0, 9.0};
    size_t counts[3] = {0, 0, 0};
    for (int i = 0; i < 10000; ++i)
        ++counts[rng.weightedChoice(weights)];
    EXPECT_EQ(counts[1], 0u);
    EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(7);
    std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = items;
    rng.shuffle(copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, items);
}

TEST(Stats, MeanStdPercentile)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_NEAR(mean(xs), 3.0, 1e-9);
    EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(percentile(xs, 0), 1.0, 1e-9);
    EXPECT_NEAR(percentile(xs, 50), 3.0, 1e-9);
    EXPECT_NEAR(percentile(xs, 100), 5.0, 1e-9);
    EXPECT_NEAR(percentile(xs, 25), 2.0, 1e-9);
    EXPECT_NEAR(sum(xs), 15.0, 1e-9);
    EXPECT_NEAR(mean({}), 0.0, 1e-9);
    // Empty-sample convention: kNoSample, never a fake 0.
    EXPECT_NEAR(percentile({}, 50), kNoSample, 1e-9);
}

TEST(Stats, PercentileEdgeCases)
{
    const std::vector<double> xs{1, 2, 3, 4, 5};
    // q outside [0, 100] clamps to the extremes.
    EXPECT_NEAR(percentile(xs, -10.0), 1.0, 1e-9);
    EXPECT_NEAR(percentile(xs, 250.0), 5.0, 1e-9);
    // NaN q is unanswerable.
    EXPECT_NEAR(percentile(xs, std::nan("")), kNoSample, 1e-9);
    // NaN observations are dropped, not sorted.
    const double nan = std::nan("");
    EXPECT_NEAR(percentile({nan, 2.0, nan, 4.0}, 100.0), 4.0, 1e-9);
    EXPECT_NEAR(percentile({nan, nan}, 50.0), kNoSample, 1e-9);
    // Infinities order normally.
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(percentile({-inf, 1.0, 2.0}, 0.0), -inf);
    EXPECT_EQ(percentile({1.0, inf}, 100.0), inf);
    // Single observation answers every quantile.
    EXPECT_NEAR(percentile({7.0}, 0.0), 7.0, 1e-9);
    EXPECT_NEAR(percentile({7.0}, 50.0), 7.0, 1e-9);
    EXPECT_NEAR(percentile({7.0}, 100.0), 7.0, 1e-9);
}

TEST(Stats, RunningStatMatchesBatch)
{
    phoenix::util::Rng rng(8);
    std::vector<double> xs;
    RunningStat stat;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform(-5, 20);
        xs.push_back(x);
        stat.add(x);
    }
    EXPECT_NEAR(stat.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(stat.stddev(), stddev(xs), 1e-6);
    EXPECT_EQ(stat.count(), xs.size());
    EXPECT_NEAR(stat.min(), *std::min_element(xs.begin(), xs.end()),
                1e-12);
    EXPECT_NEAR(stat.max(), *std::max_element(xs.begin(), xs.end()),
                1e-12);
}

TEST(Stats, HistogramPercentiles)
{
    Histogram hist(0.0, 100.0, 100);
    for (int i = 0; i < 1000; ++i)
        hist.add(static_cast<double>(i % 100));
    EXPECT_EQ(hist.total(), 1000u);
    EXPECT_NEAR(hist.percentile(50), 50.0, 2.0);
    EXPECT_NEAR(hist.percentile(95), 95.0, 2.0);
    // Clamping.
    hist.add(-10.0);
    hist.add(500.0);
    EXPECT_EQ(hist.total(), 1002u);
}

TEST(Stats, HistogramEdgeCases)
{
    // Empty: kNoSample, matching util::percentile.
    Histogram empty(0.0, 10.0, 10);
    EXPECT_NEAR(empty.percentile(50), kNoSample, 1e-9);

    // q clamps; NaN q is unanswerable, NaN observations are ignored.
    Histogram hist(0.0, 10.0, 10);
    hist.add(std::nan(""));
    EXPECT_EQ(hist.total(), 0u);
    hist.add(5.0);
    EXPECT_NEAR(hist.percentile(-5.0), hist.percentile(0.0), 1e-9);
    EXPECT_NEAR(hist.percentile(900.0), hist.percentile(100.0), 1e-9);
    EXPECT_NEAR(hist.percentile(std::nan("")), kNoSample, 1e-9);

    // Zero buckets collapse to one.
    Histogram single(0.0, 10.0, 0);
    single.add(3.0);
    single.add(8.0);
    EXPECT_EQ(single.total(), 2u);
    EXPECT_EQ(single.buckets().size(), 1u);
    EXPECT_NEAR(single.percentile(50), 5.0, 1e-9);

    // lo == hi (and lo > hi): a single degenerate point at lo, with
    // no division by the zero bucket width.
    Histogram degenerate(4.0, 4.0, 8);
    degenerate.add(4.0);
    degenerate.add(100.0);
    EXPECT_EQ(degenerate.total(), 2u);
    EXPECT_NEAR(degenerate.percentile(50), 4.0, 1e-9);
    Histogram inverted(6.0, 2.0, 4);
    inverted.add(1.0);
    EXPECT_NEAR(inverted.percentile(99), 6.0, 1e-9);
}

TEST(SortedKv, BestFitQueries)
{
    SortedKv<double, uint32_t> kv;
    kv.insert(4.0, 1);
    kv.insert(2.0, 2);
    kv.insert(8.0, 3);

    auto hit = kv.firstAtLeast(3.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->second, 1u);

    EXPECT_EQ(kv.largest()->second, 3u);
    EXPECT_FALSE(kv.firstAtLeast(9.0).has_value());

    EXPECT_TRUE(kv.erase(4.0, 1));
    EXPECT_FALSE(kv.erase(4.0, 1));
    EXPECT_EQ(kv.firstAtLeast(3.0)->second, 3u);
    EXPECT_EQ(kv.size(), 2u);
}

TEST(SortedKv, DuplicateKeys)
{
    SortedKv<double, uint32_t> kv;
    kv.insert(5.0, 7);
    kv.insert(5.0, 3);
    kv.insert(5.0, 3);
    EXPECT_EQ(kv.size(), 3u);
    // Smallest value among equal keys returned first.
    EXPECT_EQ(kv.firstAtLeast(5.0)->second, 3u);
    EXPECT_TRUE(kv.erase(5.0, 3));
    EXPECT_EQ(kv.size(), 2u);
}

TEST(IndexedDaryHeap, BasicOrderAndMembership)
{
    IndexedDaryHeap<int> heap;
    heap.reset(8);
    heap.push(3, 10);
    heap.push(1, 10); // tie on key: smaller id pops first
    heap.push(5, 2);
    EXPECT_EQ(heap.size(), 3u);
    EXPECT_TRUE(heap.contains(5));
    EXPECT_FALSE(heap.contains(0));
    EXPECT_EQ(heap.keyOf(3), 10);

    EXPECT_EQ(heap.pop(), 5u);
    EXPECT_EQ(heap.pop(), 1u);
    heap.erase(3);
    EXPECT_TRUE(heap.empty());

    // reset() makes ids reusable with fresh keys.
    heap.reset(4);
    heap.push(0, -5);
    heap.pushOrUpdate(0, 7); // re-key upward
    heap.push(2, 6);
    EXPECT_EQ(heap.pop(), 2u);
    EXPECT_EQ(heap.pop(), 0u);
}

TEST(IndexedDaryHeap, MatchesSetOracleUnderRandomOps)
{
    // The heap replaces std::set<pair<Key, Id>> in the planner; the
    // bit-identity suite needs their pop orders byte-identical, so
    // drive both through a random op mix and compare every answer.
    Rng rng(42);
    constexpr uint32_t kIds = 200;
    IndexedDaryHeap<int> heap;
    heap.reset(kIds);
    std::set<std::pair<int, uint32_t>> oracle;
    std::vector<int> key_of(kIds, 0);

    for (int op = 0; op < 20000; ++op) {
        const auto id =
            static_cast<uint32_t>(rng.uniformInt(0, kIds - 1));
        const int choice = static_cast<int>(rng.uniformInt(0, 3));
        if (choice == 0 && !heap.contains(id)) {
            const int key = static_cast<int>(rng.uniformInt(-50, 50));
            heap.push(id, key);
            oracle.emplace(key, id);
            key_of[id] = key;
        } else if (choice == 1 && heap.contains(id)) {
            heap.erase(id);
            oracle.erase({key_of[id], id});
        } else if (choice == 2 && !heap.empty()) {
            const auto expect = *oracle.begin();
            EXPECT_EQ(heap.keyOf(heap.top()), expect.first);
            EXPECT_EQ(heap.pop(), expect.second);
            oracle.erase(oracle.begin());
        } else if (choice == 3) {
            const int key = static_cast<int>(rng.uniformInt(-50, 50));
            if (heap.contains(id))
                oracle.erase({key_of[id], id});
            heap.pushOrUpdate(id, key);
            oracle.emplace(key, id);
            key_of[id] = key;
        }
        ASSERT_EQ(heap.size(), oracle.size());
    }
    // Drain: full pop sequence must equal the set's iteration order.
    while (!heap.empty()) {
        EXPECT_EQ(heap.pop(), oracle.begin()->second);
        oracle.erase(oracle.begin());
    }
}

TEST(BucketedKv, BestFitQueriesMatchSortedKv)
{
    BucketedKv<uint32_t> kv;
    kv.configure(10.0, 8);
    kv.insert(4.0, 1);
    kv.insert(2.0, 2);
    kv.insert(8.0, 3);

    auto hit = kv.firstAtLeast(3.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->second, 1u);
    EXPECT_EQ(kv.largest()->second, 3u);
    EXPECT_FALSE(kv.firstAtLeast(9.0).has_value());

    EXPECT_TRUE(kv.erase(4.0, 1));
    EXPECT_FALSE(kv.erase(4.0, 1));
    EXPECT_EQ(kv.firstAtLeast(3.0)->second, 3u);
    EXPECT_EQ(kv.size(), 2u);

    // Duplicate keys: smallest value among equal keys comes first.
    kv.insert(5.0, 7);
    kv.insert(5.0, 3);
    kv.insert(5.0, 3);
    EXPECT_EQ(kv.firstAtLeast(5.0)->second, 3u);
    EXPECT_TRUE(kv.erase(5.0, 3));
    EXPECT_EQ(kv.firstAtLeast(5.0)->second, 3u);
}

TEST(BucketedKv, MatchesMultisetOracleUnderRandomOps)
{
    // Same total order as the multiset-backed SortedKv — including
    // scan order, which the packer's repack/delete stages rely on.
    Rng rng(1337);
    using Pair = std::pair<double, uint32_t>;
    for (const double max_key : {1.0, 32.0, 4096.0}) {
        BucketedKv<uint32_t> kv;
        kv.configure(max_key, 256);
        std::multiset<Pair> oracle;
        std::vector<Pair> live;

        for (int op = 0; op < 8000; ++op) {
            const int choice = static_cast<int>(rng.uniformInt(0, 4));
            if (choice <= 1 || live.empty()) {
                // Quantized keys so exact-pair erases and duplicate
                // keys actually occur.
                const double key =
                    max_key *
                    static_cast<double>(rng.uniformInt(0, 64)) / 64.0;
                const auto value =
                    static_cast<uint32_t>(rng.uniformInt(0, 30));
                kv.insert(key, value);
                oracle.emplace(key, value);
                live.emplace_back(key, value);
            } else if (choice == 2) {
                const size_t pick = static_cast<size_t>(
                    rng.uniformInt(0, live.size() - 1));
                const Pair victim = live[pick];
                EXPECT_TRUE(kv.erase(victim.first, victim.second));
                oracle.erase(oracle.find(victim));
                live[pick] = live.back();
                live.pop_back();
            } else if (choice == 3) {
                const double bound = rng.uniform(0.0, max_key * 1.1);
                const auto hit = kv.firstAtLeast(bound);
                const auto expect =
                    oracle.lower_bound(Pair(bound, 0));
                if (expect == oracle.end()) {
                    EXPECT_FALSE(hit.has_value()) << "bound " << bound;
                } else {
                    ASSERT_TRUE(hit.has_value()) << "bound " << bound;
                    EXPECT_EQ(*hit, *expect);
                }
            } else {
                const auto hit = kv.largest();
                if (oracle.empty()) {
                    EXPECT_FALSE(hit.has_value());
                } else {
                    ASSERT_TRUE(hit.has_value());
                    EXPECT_EQ(*hit, *oracle.rbegin());
                }
            }
            ASSERT_EQ(kv.size(), oracle.size());
        }

        // Full ascending scan == multiset iteration order.
        std::vector<Pair> ascending;
        kv.scanAtLeast(0.0, [&](const Pair &entry) {
            ascending.push_back(entry);
            return true;
        });
        EXPECT_EQ(ascending,
                  std::vector<Pair>(oracle.begin(), oracle.end()));

        // Full descending scan == reverse iteration order.
        std::vector<Pair> descending;
        kv.scanDescending([&](const Pair &entry) {
            descending.push_back(entry);
            return true;
        });
        EXPECT_EQ(descending,
                  std::vector<Pair>(oracle.rbegin(), oracle.rend()));
    }
}

TEST(BucketedKv, ReconfigureClearsAndReuses)
{
    BucketedKv<uint32_t> kv;
    kv.configure(16.0, 1000);
    for (int i = 0; i < 100; ++i)
        kv.insert(static_cast<double>(i % 17), i);
    EXPECT_EQ(kv.size(), 100u);
    kv.configure(16.0, 1000);
    EXPECT_TRUE(kv.empty());
    EXPECT_FALSE(kv.firstAtLeast(0.0).has_value());
    kv.insert(3.0, 9);
    EXPECT_EQ(kv.largest()->second, 9u);
}

TEST(Table, AlignedOutputAndCsv)
{
    Table table({"scheme", "availability"});
    table.row().cell("PhoenixFair").cell(0.91, 2);
    table.row().cell("Default").cell(0.4, 2);

    std::ostringstream oss;
    table.print(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("PhoenixFair"), std::string::npos);
    EXPECT_NE(text.find("0.91"), std::string::npos);

    std::ostringstream csv;
    table.printCsv(csv);
    EXPECT_EQ(csv.str(),
              "scheme,availability\nPhoenixFair,0.91\nDefault,0.40\n");
    EXPECT_EQ(table.rowCount(), 2u);
}
