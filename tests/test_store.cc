/**
 * @file
 * Tests for the persistence store (core/store.h), the manifest loader
 * (kube/manifest.h), the RTO tracker (core/rto.h) and the §5 partial
 * tagging / subscription semantics.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "apps/overleaf.h"
#include "core/planner.h"
#include "core/rto.h"
#include "core/schemes.h"
#include "core/store.h"
#include "kube/manifest.h"

using namespace phoenix;
using namespace phoenix::core;
using sim::Application;
using sim::MsId;

namespace {

std::vector<Application>
sampleApps()
{
    apps::ServiceApp overleaf = apps::makeOverleaf(1);
    apps::assignCpuByTraffic(overleaf, 25.0, 0.5);
    overleaf.app.id = 0;
    overleaf.app.pricePerUnit = 1.75;

    Application plain;
    plain.id = 1;
    plain.name = "legacy app"; // space exercises escaping
    plain.phoenixEnabled = false;
    plain.services.resize(2);
    for (MsId m = 0; m < 2; ++m) {
        plain.services[m].id = m;
        plain.services[m].name = "svc" + std::to_string(m);
        plain.services[m].cpu = 1.5 + m;
        plain.services[m].criticality = 3;
        plain.services[m].replicas = 2 + static_cast<int>(m);
        plain.services[m].quorum = 1;
    }
    return {overleaf.app, plain};
}

} // namespace

TEST(Store, RoundTripPreservesEverything)
{
    const auto apps = sampleApps();
    const std::string text = serializeApps(apps);
    std::string error;
    const auto loaded = deserializeApps(text, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    ASSERT_EQ(loaded->size(), apps.size());

    for (size_t a = 0; a < apps.size(); ++a) {
        const auto &in = apps[a];
        const auto &out = (*loaded)[a];
        EXPECT_EQ(out.name, in.name);
        EXPECT_NEAR(out.pricePerUnit, in.pricePerUnit, 1e-9);
        EXPECT_EQ(out.phoenixEnabled, in.phoenixEnabled);
        EXPECT_EQ(out.hasDependencyGraph, in.hasDependencyGraph);
        ASSERT_EQ(out.services.size(), in.services.size());
        for (MsId m = 0; m < in.services.size(); ++m) {
            EXPECT_EQ(out.services[m].name, in.services[m].name);
            EXPECT_NEAR(out.services[m].cpu, in.services[m].cpu, 1e-9);
            EXPECT_EQ(out.services[m].criticality,
                      in.services[m].criticality);
            EXPECT_EQ(out.services[m].replicas,
                      in.services[m].replicas);
            EXPECT_EQ(out.services[m].quorum, in.services[m].quorum);
        }
        if (in.hasDependencyGraph) {
            EXPECT_EQ(out.dag.edgeCount(), in.dag.edgeCount());
            for (MsId u = 0; u < in.dag.nodeCount(); ++u) {
                for (MsId v : in.dag.successors(u))
                    EXPECT_TRUE(out.dag.hasEdge(u, v));
            }
        }
    }
}

TEST(Store, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(deserializeApps("", &error).has_value());
    EXPECT_FALSE(deserializeApps("not-a-store\n", &error).has_value());
    EXPECT_FALSE(
        deserializeApps("phoenix-store v1\nms 0 x 1 1 1 0\n", &error)
            .has_value()); // ms outside app
    EXPECT_FALSE(deserializeApps(
                     "phoenix-store v1\napp 0 a 1 1 0\n", &error)
                     .has_value()); // unterminated
    EXPECT_FALSE(deserializeApps("phoenix-store v1\n"
                                 "app 0 a 1 1 0\nms 1 x 1 1 1 0\nend\n",
                                 &error)
                     .has_value()); // non-contiguous ids
}

TEST(Store, FileRoundTrip)
{
    const auto apps = sampleApps();
    const std::string path = "/tmp/phoenix_store_test.txt";
    ASSERT_TRUE(saveAppsToFile(apps, path));
    std::string error;
    const auto loaded = loadAppsFromFile(path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->size(), apps.size());
    std::remove(path.c_str());
    EXPECT_FALSE(loadAppsFromFile(path).has_value());
}

TEST(Manifest, ParsesApplications)
{
    const std::string text = R"(# sample manifest
application: shop
price: 2.5
phoenix: enabled
services:
  - name: front
    cpu: 2.0
    criticality: 1
    replicas: 2
  - name: api
    cpu: 1.5
    criticality: 2
    upstream: [front]
  - name: recs
    cpu: 0.5
    criticality: 5
    upstream: [api]
---
application: legacy
phoenix: disabled
services:
  - name: monolith
    cpu: 4.0
)";
    std::string error;
    const auto apps = kube::parseManifest(text, &error);
    ASSERT_TRUE(apps.has_value()) << error;
    ASSERT_EQ(apps->size(), 2u);

    const auto &shop = (*apps)[0];
    EXPECT_EQ(shop.name, "shop");
    EXPECT_NEAR(shop.pricePerUnit, 2.5, 1e-9);
    EXPECT_TRUE(shop.phoenixEnabled);
    ASSERT_EQ(shop.services.size(), 3u);
    EXPECT_EQ(shop.services[0].replicas, 2);
    EXPECT_TRUE(shop.hasDependencyGraph);
    EXPECT_TRUE(shop.dag.hasEdge(0, 1));
    EXPECT_TRUE(shop.dag.hasEdge(1, 2));

    const auto &legacy = (*apps)[1];
    EXPECT_FALSE(legacy.phoenixEnabled);
    EXPECT_FALSE(legacy.hasDependencyGraph);
    // Untagged service defaults to C1.
    EXPECT_EQ(legacy.services[0].criticality, sim::kC1);
}

TEST(Manifest, RejectsBrokenInput)
{
    std::string error;
    EXPECT_FALSE(kube::parseManifest("application: x\n", &error)
                     .has_value()); // no services
    EXPECT_FALSE(
        kube::parseManifest("application: x\nservices:\n"
                            "  - name: a\n    cpu: 1\n"
                            "  - name: a\n    cpu: 1\n",
                            &error)
            .has_value()); // duplicate name
    EXPECT_FALSE(
        kube::parseManifest("application: x\nservices:\n"
                            "  - name: a\n    cpu: 1\n"
                            "    upstream: [ghost]\n",
                            &error)
            .has_value()); // unknown upstream
    EXPECT_FALSE(
        kube::parseManifest("application: x\nservices:\n"
                            "  - name: a\n",
                            &error)
            .has_value()); // missing cpu
}

TEST(PartialTagging, UnsubscribedAppsAreNeverDegradedFirst)
{
    // App 0 subscribed with a C5 service; app 1 unsubscribed with a
    // (nominally) C5 service. Capacity for three containers: the
    // subscribed app's C5 must be the one left out.
    Application subscribed;
    subscribed.id = 0;
    subscribed.services = {{0, "front", 2.0, 1, 1, 0},
                           {1, "extras", 2.0, 5, 1, 0}};
    Application legacy = subscribed;
    legacy.id = 1;
    legacy.phoenixEnabled = false;

    std::vector<Application> apps{subscribed, legacy};
    sim::ClusterState cluster;
    cluster.addNode(6.0);

    PhoenixScheme phoenix(Objective::Cost);
    const auto active = phoenix.apply(apps, cluster).activeSet(apps);
    EXPECT_TRUE(active[0][0]);
    EXPECT_FALSE(active[0][1]); // subscribed C5 degraded
    EXPECT_TRUE(active[1][0]);
    EXPECT_TRUE(active[1][1]); // unsubscribed treated as critical
}

TEST(Rto, TracksPerLevelRecovery)
{
    Application app;
    app.id = 0;
    app.services = {{0, "a", 1.0, 1, 1, 0},
                    {1, "b", 1.0, 2, 1, 0},
                    {2, "c", 1.0, 5, 1, 0}};
    std::vector<Application> apps{app};
    RtoTracker tracker(apps);

    auto snapshot = [&](bool a, bool b, bool c) {
        sim::ActiveSet active = sim::emptyActiveSet(apps);
        active[0][0] = a;
        active[0][1] = b;
        active[0][2] = c;
        return active;
    };

    tracker.record(0.0, snapshot(true, true, true));
    // Failure at t=100; C1 back at 160, C2 at 220, C5 never.
    tracker.record(120.0, snapshot(false, false, false));
    tracker.record(160.0, snapshot(true, false, false));
    tracker.record(220.0, snapshot(true, true, false));
    tracker.record(400.0, snapshot(true, true, false));

    EXPECT_NEAR(tracker.recoveryTime(0, 1, 100.0), 60.0, 1e-9);
    EXPECT_NEAR(tracker.recoveryTime(0, 2, 100.0), 120.0, 1e-9);
    EXPECT_LT(tracker.recoveryTime(0, 5, 100.0), 0.0);

    std::map<sim::AppId, RtoPolicy> policies;
    policies[0].maxSeconds = {{1, 90.0}, {2, 100.0}, {5, 600.0}};
    const auto outcomes = tracker.evaluate(policies, 100.0);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_FALSE(outcomes[0].violated); // C1: 60 <= 90
    EXPECT_TRUE(outcomes[1].violated);  // C2: 120 > 100
    EXPECT_TRUE(outcomes[2].violated);  // C5: never recovered
}

TEST(Manifest, StructuredErrorsCarryLineAndField)
{
    // Three documents: a good one, one with a bad numeric cpu, and a
    // duplicate of the first. The structured parser keeps the good
    // app and reports both errors with their line and field.
    const std::string text = "application: good\n"   // line 1
                             "services:\n"           // line 2
                             "  - name: web\n"       // line 3
                             "    cpu: 2.0\n"        // line 4
                             "---\n"                 // line 5
                             "application: broken\n" // line 6
                             "services:\n"           // line 7
                             "  - name: a\n"         // line 8
                             "    cpu: nope\n"       // line 9
                             "---\n"                 // line 10
                             "application: good\n"   // line 11
                             "services:\n"           // line 12
                             "  - name: web\n"       // line 13
                             "    cpu: 1.0\n";       // line 14
    const kube::ManifestParse parsed =
        kube::parseManifestStructured(text);
    ASSERT_EQ(parsed.apps.size(), 1u);
    EXPECT_EQ(parsed.apps[0].name, "good");
    ASSERT_EQ(parsed.errors.size(), 2u);

    EXPECT_EQ(parsed.errors[0].line, 9u);
    EXPECT_EQ(parsed.errors[0].field, "cpu");
    EXPECT_NE(parsed.errors[0].message.find("nope"),
              std::string::npos);

    // The duplicate fires when the last document finalizes (EOF).
    EXPECT_EQ(parsed.errors[1].line, 14u);
    EXPECT_EQ(parsed.errors[1].field, "application");
    EXPECT_NE(parsed.errors[1].message.find("duplicate application"),
              std::string::npos);
    EXPECT_NE(parsed.errors[1].toString().find("line 14"),
              std::string::npos);
}

TEST(Manifest, StructuredDuplicateServicePointsAtEntry)
{
    // The duplicate-name error blames the second declaration line,
    // not the document separator or EOF.
    const std::string text = "application: x\n" // line 1
                             "services:\n"      // line 2
                             "  - name: a\n"    // line 3
                             "    cpu: 1\n"     // line 4
                             "  - name: a\n"    // line 5
                             "    cpu: 1\n";    // line 6
    const kube::ManifestParse parsed =
        kube::parseManifestStructured(text);
    EXPECT_TRUE(parsed.apps.empty());
    ASSERT_EQ(parsed.errors.size(), 1u);
    EXPECT_EQ(parsed.errors[0].line, 5u);
    EXPECT_EQ(parsed.errors[0].field, "name");
}

TEST(Manifest, StructuredRecoversAcrossDocuments)
{
    // A malformed middle document (missing cpu) must not poison the
    // documents on either side, and the error points at the entry's
    // declaration line.
    const std::string text = "application: one\n" // line 1
                             "services:\n"        // line 2
                             "  - name: a\n"      // line 3
                             "    cpu: 1\n"       // line 4
                             "---\n"              // line 5
                             "application: two\n" // line 6
                             "services:\n"        // line 7
                             "  - name: b\n"      // line 8
                             "---\n"              // line 9
                             "application: three\n"
                             "services:\n"
                             "  - name: c\n"
                             "    cpu: 3\n";
    const kube::ManifestParse parsed =
        kube::parseManifestStructured(text);
    ASSERT_EQ(parsed.apps.size(), 2u);
    EXPECT_EQ(parsed.apps[0].name, "one");
    EXPECT_EQ(parsed.apps[1].name, "three");
    // Ids are contiguous over the accepted apps.
    EXPECT_EQ(parsed.apps[0].id, 0u);
    EXPECT_EQ(parsed.apps[1].id, 1u);
    ASSERT_EQ(parsed.errors.size(), 1u);
    EXPECT_EQ(parsed.errors[0].line, 8u);
    EXPECT_EQ(parsed.errors[0].field, "cpu");
}
