file(REMOVE_RECURSE
  "../bench/bench_table1"
  "../bench/bench_table1.pdb"
  "CMakeFiles/bench_table1.dir/bench_table1.cc.o"
  "CMakeFiles/bench_table1.dir/bench_table1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
