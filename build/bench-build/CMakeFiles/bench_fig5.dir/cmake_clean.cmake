file(REMOVE_RECURSE
  "../bench/bench_fig5"
  "../bench/bench_fig5.pdb"
  "CMakeFiles/bench_fig5.dir/bench_fig5.cc.o"
  "CMakeFiles/bench_fig5.dir/bench_fig5.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
