file(REMOVE_RECURSE
  "../bench/bench_fig7"
  "../bench/bench_fig7.pdb"
  "CMakeFiles/bench_fig7.dir/bench_fig7.cc.o"
  "CMakeFiles/bench_fig7.dir/bench_fig7.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
