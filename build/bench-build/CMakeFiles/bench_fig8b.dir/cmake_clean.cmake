file(REMOVE_RECURSE
  "../bench/bench_fig8b"
  "../bench/bench_fig8b.pdb"
  "CMakeFiles/bench_fig8b.dir/bench_fig8b.cc.o"
  "CMakeFiles/bench_fig8b.dir/bench_fig8b.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
