file(REMOVE_RECURSE
  "../bench/bench_standalone"
  "../bench/bench_standalone.pdb"
  "CMakeFiles/bench_standalone.dir/bench_standalone.cc.o"
  "CMakeFiles/bench_standalone.dir/bench_standalone.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_standalone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
