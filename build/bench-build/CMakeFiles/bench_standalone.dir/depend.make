# Empty dependencies file for bench_standalone.
# This may be replaced when dependencies are built.
