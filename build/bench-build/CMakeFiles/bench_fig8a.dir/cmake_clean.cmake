file(REMOVE_RECURSE
  "../bench/bench_fig8a"
  "../bench/bench_fig8a.pdb"
  "CMakeFiles/bench_fig8a.dir/bench_fig8a.cc.o"
  "CMakeFiles/bench_fig8a.dir/bench_fig8a.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
