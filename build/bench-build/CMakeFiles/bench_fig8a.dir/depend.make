# Empty dependencies file for bench_fig8a.
# This may be replaced when dependencies are built.
