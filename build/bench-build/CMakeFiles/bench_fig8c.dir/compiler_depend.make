# Empty compiler generated dependencies file for bench_fig8c.
# This may be replaced when dependencies are built.
