file(REMOVE_RECURSE
  "../bench/bench_fig8c"
  "../bench/bench_fig8c.pdb"
  "CMakeFiles/bench_fig8c.dir/bench_fig8c.cc.o"
  "CMakeFiles/bench_fig8c.dir/bench_fig8c.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
