file(REMOVE_RECURSE
  "../bench/bench_fig17"
  "../bench/bench_fig17.pdb"
  "CMakeFiles/bench_fig17.dir/bench_fig17.cc.o"
  "CMakeFiles/bench_fig17.dir/bench_fig17.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
