# Empty dependencies file for adaptlab_sweep.
# This may be replaced when dependencies are built.
