file(REMOVE_RECURSE
  "CMakeFiles/adaptlab_sweep.dir/adaptlab_sweep.cpp.o"
  "CMakeFiles/adaptlab_sweep.dir/adaptlab_sweep.cpp.o.d"
  "adaptlab_sweep"
  "adaptlab_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptlab_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
