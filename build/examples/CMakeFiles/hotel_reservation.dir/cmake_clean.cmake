file(REMOVE_RECURSE
  "CMakeFiles/hotel_reservation.dir/hotel_reservation.cpp.o"
  "CMakeFiles/hotel_reservation.dir/hotel_reservation.cpp.o.d"
  "hotel_reservation"
  "hotel_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
