# Empty compiler generated dependencies file for hotel_reservation.
# This may be replaced when dependencies are built.
