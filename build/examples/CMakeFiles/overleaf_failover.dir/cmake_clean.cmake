file(REMOVE_RECURSE
  "CMakeFiles/overleaf_failover.dir/overleaf_failover.cpp.o"
  "CMakeFiles/overleaf_failover.dir/overleaf_failover.cpp.o.d"
  "overleaf_failover"
  "overleaf_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overleaf_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
