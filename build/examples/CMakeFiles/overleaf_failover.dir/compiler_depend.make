# Empty compiler generated dependencies file for overleaf_failover.
# This may be replaced when dependencies are built.
