# Empty compiler generated dependencies file for phoenix_kube.
# This may be replaced when dependencies are built.
