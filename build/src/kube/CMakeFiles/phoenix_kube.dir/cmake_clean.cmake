file(REMOVE_RECURSE
  "CMakeFiles/phoenix_kube.dir/kube.cc.o"
  "CMakeFiles/phoenix_kube.dir/kube.cc.o.d"
  "CMakeFiles/phoenix_kube.dir/manifest.cc.o"
  "CMakeFiles/phoenix_kube.dir/manifest.cc.o.d"
  "libphoenix_kube.a"
  "libphoenix_kube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_kube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
