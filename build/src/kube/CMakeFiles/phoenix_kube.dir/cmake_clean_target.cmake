file(REMOVE_RECURSE
  "libphoenix_kube.a"
)
