
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cloudlab.cc" "src/apps/CMakeFiles/phoenix_apps.dir/cloudlab.cc.o" "gcc" "src/apps/CMakeFiles/phoenix_apps.dir/cloudlab.cc.o.d"
  "/root/repo/src/apps/hotel.cc" "src/apps/CMakeFiles/phoenix_apps.dir/hotel.cc.o" "gcc" "src/apps/CMakeFiles/phoenix_apps.dir/hotel.cc.o.d"
  "/root/repo/src/apps/loadgen.cc" "src/apps/CMakeFiles/phoenix_apps.dir/loadgen.cc.o" "gcc" "src/apps/CMakeFiles/phoenix_apps.dir/loadgen.cc.o.d"
  "/root/repo/src/apps/overleaf.cc" "src/apps/CMakeFiles/phoenix_apps.dir/overleaf.cc.o" "gcc" "src/apps/CMakeFiles/phoenix_apps.dir/overleaf.cc.o.d"
  "/root/repo/src/apps/service_app.cc" "src/apps/CMakeFiles/phoenix_apps.dir/service_app.cc.o" "gcc" "src/apps/CMakeFiles/phoenix_apps.dir/service_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/phoenix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/phoenix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/phoenix_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/phoenix_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
