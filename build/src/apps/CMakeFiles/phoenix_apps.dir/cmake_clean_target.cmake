file(REMOVE_RECURSE
  "libphoenix_apps.a"
)
