file(REMOVE_RECURSE
  "CMakeFiles/phoenix_apps.dir/cloudlab.cc.o"
  "CMakeFiles/phoenix_apps.dir/cloudlab.cc.o.d"
  "CMakeFiles/phoenix_apps.dir/hotel.cc.o"
  "CMakeFiles/phoenix_apps.dir/hotel.cc.o.d"
  "CMakeFiles/phoenix_apps.dir/loadgen.cc.o"
  "CMakeFiles/phoenix_apps.dir/loadgen.cc.o.d"
  "CMakeFiles/phoenix_apps.dir/overleaf.cc.o"
  "CMakeFiles/phoenix_apps.dir/overleaf.cc.o.d"
  "CMakeFiles/phoenix_apps.dir/service_app.cc.o"
  "CMakeFiles/phoenix_apps.dir/service_app.cc.o.d"
  "libphoenix_apps.a"
  "libphoenix_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
