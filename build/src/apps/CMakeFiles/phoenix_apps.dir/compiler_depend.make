# Empty compiler generated dependencies file for phoenix_apps.
# This may be replaced when dependencies are built.
