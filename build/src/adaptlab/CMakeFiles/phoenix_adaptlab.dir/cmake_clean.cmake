file(REMOVE_RECURSE
  "CMakeFiles/phoenix_adaptlab.dir/environment.cc.o"
  "CMakeFiles/phoenix_adaptlab.dir/environment.cc.o.d"
  "CMakeFiles/phoenix_adaptlab.dir/replay.cc.o"
  "CMakeFiles/phoenix_adaptlab.dir/replay.cc.o.d"
  "CMakeFiles/phoenix_adaptlab.dir/runner.cc.o"
  "CMakeFiles/phoenix_adaptlab.dir/runner.cc.o.d"
  "libphoenix_adaptlab.a"
  "libphoenix_adaptlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_adaptlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
