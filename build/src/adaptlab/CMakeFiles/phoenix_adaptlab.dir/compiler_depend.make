# Empty compiler generated dependencies file for phoenix_adaptlab.
# This may be replaced when dependencies are built.
