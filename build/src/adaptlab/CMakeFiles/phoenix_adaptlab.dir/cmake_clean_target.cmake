file(REMOVE_RECURSE
  "libphoenix_adaptlab.a"
)
