file(REMOVE_RECURSE
  "CMakeFiles/phoenix_util.dir/log.cc.o"
  "CMakeFiles/phoenix_util.dir/log.cc.o.d"
  "CMakeFiles/phoenix_util.dir/stats.cc.o"
  "CMakeFiles/phoenix_util.dir/stats.cc.o.d"
  "CMakeFiles/phoenix_util.dir/table.cc.o"
  "CMakeFiles/phoenix_util.dir/table.cc.o.d"
  "libphoenix_util.a"
  "libphoenix_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
