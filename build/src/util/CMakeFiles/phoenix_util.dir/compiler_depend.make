# Empty compiler generated dependencies file for phoenix_util.
# This may be replaced when dependencies are built.
