file(REMOVE_RECURSE
  "libphoenix_util.a"
)
