# Empty compiler generated dependencies file for phoenix_lp.
# This may be replaced when dependencies are built.
