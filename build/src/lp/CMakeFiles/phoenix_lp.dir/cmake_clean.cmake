file(REMOVE_RECURSE
  "CMakeFiles/phoenix_lp.dir/branch_bound.cc.o"
  "CMakeFiles/phoenix_lp.dir/branch_bound.cc.o.d"
  "CMakeFiles/phoenix_lp.dir/model.cc.o"
  "CMakeFiles/phoenix_lp.dir/model.cc.o.d"
  "CMakeFiles/phoenix_lp.dir/simplex.cc.o"
  "CMakeFiles/phoenix_lp.dir/simplex.cc.o.d"
  "CMakeFiles/phoenix_lp.dir/waterfill.cc.o"
  "CMakeFiles/phoenix_lp.dir/waterfill.cc.o.d"
  "libphoenix_lp.a"
  "libphoenix_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
