file(REMOVE_RECURSE
  "libphoenix_lp.a"
)
