# Empty compiler generated dependencies file for phoenix_core.
# This may be replaced when dependencies are built.
