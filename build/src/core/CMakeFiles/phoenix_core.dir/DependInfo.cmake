
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chaos.cc" "src/core/CMakeFiles/phoenix_core.dir/chaos.cc.o" "gcc" "src/core/CMakeFiles/phoenix_core.dir/chaos.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/phoenix_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/phoenix_core.dir/controller.cc.o.d"
  "/root/repo/src/core/packing.cc" "src/core/CMakeFiles/phoenix_core.dir/packing.cc.o" "gcc" "src/core/CMakeFiles/phoenix_core.dir/packing.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/phoenix_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/phoenix_core.dir/planner.cc.o.d"
  "/root/repo/src/core/preemption.cc" "src/core/CMakeFiles/phoenix_core.dir/preemption.cc.o" "gcc" "src/core/CMakeFiles/phoenix_core.dir/preemption.cc.o.d"
  "/root/repo/src/core/rto.cc" "src/core/CMakeFiles/phoenix_core.dir/rto.cc.o" "gcc" "src/core/CMakeFiles/phoenix_core.dir/rto.cc.o.d"
  "/root/repo/src/core/schemes.cc" "src/core/CMakeFiles/phoenix_core.dir/schemes.cc.o" "gcc" "src/core/CMakeFiles/phoenix_core.dir/schemes.cc.o.d"
  "/root/repo/src/core/store.cc" "src/core/CMakeFiles/phoenix_core.dir/store.cc.o" "gcc" "src/core/CMakeFiles/phoenix_core.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/phoenix_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/kube/CMakeFiles/phoenix_kube.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phoenix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/phoenix_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/phoenix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/phoenix_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
