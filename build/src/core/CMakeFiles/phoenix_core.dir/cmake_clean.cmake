file(REMOVE_RECURSE
  "CMakeFiles/phoenix_core.dir/chaos.cc.o"
  "CMakeFiles/phoenix_core.dir/chaos.cc.o.d"
  "CMakeFiles/phoenix_core.dir/controller.cc.o"
  "CMakeFiles/phoenix_core.dir/controller.cc.o.d"
  "CMakeFiles/phoenix_core.dir/packing.cc.o"
  "CMakeFiles/phoenix_core.dir/packing.cc.o.d"
  "CMakeFiles/phoenix_core.dir/planner.cc.o"
  "CMakeFiles/phoenix_core.dir/planner.cc.o.d"
  "CMakeFiles/phoenix_core.dir/preemption.cc.o"
  "CMakeFiles/phoenix_core.dir/preemption.cc.o.d"
  "CMakeFiles/phoenix_core.dir/rto.cc.o"
  "CMakeFiles/phoenix_core.dir/rto.cc.o.d"
  "CMakeFiles/phoenix_core.dir/schemes.cc.o"
  "CMakeFiles/phoenix_core.dir/schemes.cc.o.d"
  "CMakeFiles/phoenix_core.dir/store.cc.o"
  "CMakeFiles/phoenix_core.dir/store.cc.o.d"
  "libphoenix_core.a"
  "libphoenix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
