file(REMOVE_RECURSE
  "libphoenix_core.a"
)
