file(REMOVE_RECURSE
  "libphoenix_graph.a"
)
