# Empty dependencies file for phoenix_graph.
# This may be replaced when dependencies are built.
