file(REMOVE_RECURSE
  "CMakeFiles/phoenix_graph.dir/digraph.cc.o"
  "CMakeFiles/phoenix_graph.dir/digraph.cc.o.d"
  "libphoenix_graph.a"
  "libphoenix_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
