file(REMOVE_RECURSE
  "libphoenix_workloads.a"
)
