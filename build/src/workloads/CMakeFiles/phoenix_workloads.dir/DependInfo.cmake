
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/alibaba.cc" "src/workloads/CMakeFiles/phoenix_workloads.dir/alibaba.cc.o" "gcc" "src/workloads/CMakeFiles/phoenix_workloads.dir/alibaba.cc.o.d"
  "/root/repo/src/workloads/coverage.cc" "src/workloads/CMakeFiles/phoenix_workloads.dir/coverage.cc.o" "gcc" "src/workloads/CMakeFiles/phoenix_workloads.dir/coverage.cc.o.d"
  "/root/repo/src/workloads/resources.cc" "src/workloads/CMakeFiles/phoenix_workloads.dir/resources.cc.o" "gcc" "src/workloads/CMakeFiles/phoenix_workloads.dir/resources.cc.o.d"
  "/root/repo/src/workloads/tagging.cc" "src/workloads/CMakeFiles/phoenix_workloads.dir/tagging.cc.o" "gcc" "src/workloads/CMakeFiles/phoenix_workloads.dir/tagging.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/phoenix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/phoenix_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/phoenix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/phoenix_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
