# Empty compiler generated dependencies file for phoenix_workloads.
# This may be replaced when dependencies are built.
