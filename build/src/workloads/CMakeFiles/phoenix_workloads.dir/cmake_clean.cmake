file(REMOVE_RECURSE
  "CMakeFiles/phoenix_workloads.dir/alibaba.cc.o"
  "CMakeFiles/phoenix_workloads.dir/alibaba.cc.o.d"
  "CMakeFiles/phoenix_workloads.dir/coverage.cc.o"
  "CMakeFiles/phoenix_workloads.dir/coverage.cc.o.d"
  "CMakeFiles/phoenix_workloads.dir/resources.cc.o"
  "CMakeFiles/phoenix_workloads.dir/resources.cc.o.d"
  "CMakeFiles/phoenix_workloads.dir/tagging.cc.o"
  "CMakeFiles/phoenix_workloads.dir/tagging.cc.o.d"
  "libphoenix_workloads.a"
  "libphoenix_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
