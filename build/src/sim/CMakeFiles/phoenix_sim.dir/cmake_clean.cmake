file(REMOVE_RECURSE
  "CMakeFiles/phoenix_sim.dir/cluster.cc.o"
  "CMakeFiles/phoenix_sim.dir/cluster.cc.o.d"
  "CMakeFiles/phoenix_sim.dir/failure.cc.o"
  "CMakeFiles/phoenix_sim.dir/failure.cc.o.d"
  "CMakeFiles/phoenix_sim.dir/metrics.cc.o"
  "CMakeFiles/phoenix_sim.dir/metrics.cc.o.d"
  "libphoenix_sim.a"
  "libphoenix_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
