file(REMOVE_RECURSE
  "libphoenix_sim.a"
)
