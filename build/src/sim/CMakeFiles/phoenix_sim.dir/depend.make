# Empty dependencies file for phoenix_sim.
# This may be replaced when dependencies are built.
