
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/phoenix_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/phoenix_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/failure.cc" "src/sim/CMakeFiles/phoenix_sim.dir/failure.cc.o" "gcc" "src/sim/CMakeFiles/phoenix_sim.dir/failure.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/phoenix_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/phoenix_sim.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/phoenix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/phoenix_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/phoenix_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
