# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("graph")
subdirs("lp")
subdirs("sim")
subdirs("workloads")
subdirs("kube")
subdirs("core")
subdirs("apps")
subdirs("adaptlab")
