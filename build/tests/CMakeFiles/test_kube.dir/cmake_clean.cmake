file(REMOVE_RECURSE
  "CMakeFiles/test_kube.dir/test_kube.cc.o"
  "CMakeFiles/test_kube.dir/test_kube.cc.o.d"
  "test_kube"
  "test_kube.pdb"
  "test_kube[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
