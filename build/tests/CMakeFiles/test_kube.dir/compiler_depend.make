# Empty compiler generated dependencies file for test_kube.
# This may be replaced when dependencies are built.
