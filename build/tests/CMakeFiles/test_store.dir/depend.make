# Empty dependencies file for test_store.
# This may be replaced when dependencies are built.
