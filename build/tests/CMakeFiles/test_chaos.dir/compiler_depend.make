# Empty compiler generated dependencies file for test_chaos.
# This may be replaced when dependencies are built.
