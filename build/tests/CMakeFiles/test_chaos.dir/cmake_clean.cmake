file(REMOVE_RECURSE
  "CMakeFiles/test_chaos.dir/test_chaos.cc.o"
  "CMakeFiles/test_chaos.dir/test_chaos.cc.o.d"
  "test_chaos"
  "test_chaos.pdb"
  "test_chaos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
