file(REMOVE_RECURSE
  "CMakeFiles/test_adaptlab.dir/test_adaptlab.cc.o"
  "CMakeFiles/test_adaptlab.dir/test_adaptlab.cc.o.d"
  "test_adaptlab"
  "test_adaptlab.pdb"
  "test_adaptlab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
