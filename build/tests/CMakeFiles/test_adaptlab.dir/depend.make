# Empty dependencies file for test_adaptlab.
# This may be replaced when dependencies are built.
