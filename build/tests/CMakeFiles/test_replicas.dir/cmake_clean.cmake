file(REMOVE_RECURSE
  "CMakeFiles/test_replicas.dir/test_replicas.cc.o"
  "CMakeFiles/test_replicas.dir/test_replicas.cc.o.d"
  "test_replicas"
  "test_replicas.pdb"
  "test_replicas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
