# Empty dependencies file for test_replicas.
# This may be replaced when dependencies are built.
