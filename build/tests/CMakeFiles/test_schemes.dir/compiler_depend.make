# Empty compiler generated dependencies file for test_schemes.
# This may be replaced when dependencies are built.
