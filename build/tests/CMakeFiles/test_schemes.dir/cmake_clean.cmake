file(REMOVE_RECURSE
  "CMakeFiles/test_schemes.dir/test_schemes.cc.o"
  "CMakeFiles/test_schemes.dir/test_schemes.cc.o.d"
  "test_schemes"
  "test_schemes.pdb"
  "test_schemes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
