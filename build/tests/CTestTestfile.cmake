# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_packing[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_schemes[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_kube[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_adaptlab[1]_include.cmake")
include("/root/repo/build/tests/test_chaos[1]_include.cmake")
include("/root/repo/build/tests/test_replicas[1]_include.cmake")
include("/root/repo/build/tests/test_store[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
