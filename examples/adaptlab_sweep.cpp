/**
 * @file
 * AdaptLab extensibility demo: plug a *custom* degradation policy into
 * the benchmarking platform and sweep it against Phoenix across
 * failure rates. The custom policy here keeps whatever survived and
 * restarts failed pods in random order — a straw man that shows the
 * ResilienceScheme interface and the sweep/metrics machinery.
 *
 * Build & run:  ./build/examples/adaptlab_sweep
 */

#include <algorithm>
#include <iostream>

#include "adaptlab/runner.h"
#include "util/rng.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::adaptlab;

namespace {

/** A user-defined policy: random-order restarts, first-fit placement,
 * no criticality, no deletions. */
class RandomRestartScheme : public core::ResilienceScheme
{
  public:
    std::string name() const override { return "RandomRestart"; }

    core::SchemeResult
    apply(const std::vector<sim::Application> &apps,
          const sim::ClusterState &current) override
    {
        core::SchemeResult result;
        result.pack.state = current;
        sim::ClusterState &state = result.pack.state;

        std::vector<sim::PodRef> pending;
        for (const auto &app : apps) {
            for (const auto &ms : app.services) {
                for (int r = 0; r < std::max(ms.replicas, 1); ++r) {
                    const sim::PodRef pod{app.id, ms.id,
                                          static_cast<uint32_t>(r)};
                    if (!state.isActive(pod))
                        pending.push_back(pod);
                }
            }
        }
        util::Rng rng(7);
        rng.shuffle(pending);

        const auto nodes = state.healthyNodes();
        for (const auto &pod : pending) {
            const double cpu = apps[pod.app].services[pod.ms].cpu;
            for (sim::NodeId node : nodes) {
                if (state.place(pod, node, cpu))
                    break;
            }
        }
        result.pack.complete = true;
        return result;
    }
};

} // namespace

int
main()
{
    EnvironmentConfig config;
    config.nodeCount = 300;
    config.nodeCapacity = 64.0;
    config.alibaba.appCount = 12;
    config.alibaba.sizeScale = 0.1;

    std::cout << "building AdaptLab environment ("
              << config.nodeCount << " nodes)...\n";
    const Environment env = buildEnvironment(config);

    core::PhoenixScheme phoenix(core::Objective::Fair);
    RandomRestartScheme custom;

    const std::vector<double> rates{0.2, 0.4, 0.6, 0.8};
    util::Table table({"scheme", "failure-rate", "availability",
                       "norm-revenue", "requests/s"});
    for (auto *scheme :
         std::vector<core::ResilienceScheme *>{&phoenix, &custom}) {
        for (const auto &row : sweepScheme(env, *scheme, rates, 3)) {
            table.row()
                .cell(row.scheme)
                .cell(row.metrics.failureRate, 1)
                .cell(row.metrics.availability)
                .cell(row.metrics.revenue)
                .cell(row.metrics.requestsServed, 1);
        }
    }
    table.print(std::cout);
    std::cout << "Any ResilienceScheme subclass drops into the same "
                 "sweep harness; see src/adaptlab/runner.h.\n";
    return 0;
}
