/**
 * @file
 * Quickstart: the Phoenix public API in ~60 lines.
 *
 *  1. Describe applications (microservices + criticality tags + an
 *     optional dependency graph).
 *  2. Build a cluster and place everything.
 *  3. Fail part of the cluster.
 *  4. Ask Phoenix for a new target state and inspect the plan.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/schemes.h"
#include "sim/cluster.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "util/rng.h"

using namespace phoenix;

int
main()
{
    // An application: three microservices, front (C1) -> api (C2)
    // -> recommendations (C5), 2 CPUs each.
    sim::Application shop;
    shop.id = 0;
    shop.name = "shop";
    shop.pricePerUnit = 2.0;
    shop.hasDependencyGraph = true;
    shop.dag = graph::DiGraph(3);
    shop.dag.addEdge(0, 1);
    shop.dag.addEdge(1, 2);
    shop.services = {
        {0, "front", 2.0, 1, 1, 0},
        {1, "api", 2.0, 2, 1, 0},
        {2, "recommendations", 2.0, 5, 1, 0},
    };

    sim::Application blog = shop; // a second tenant, cheaper
    blog.id = 1;
    blog.name = "blog";
    blog.pricePerUnit = 1.0;
    blog.services[0].name = "nginx";
    blog.services[1].name = "render";
    blog.services[2].name = "analytics";

    std::vector<sim::Application> apps{shop, blog};

    // A 4-node cluster, 4 CPUs each; place everything with Phoenix.
    sim::ClusterState cluster;
    for (int n = 0; n < 4; ++n)
        cluster.addNode(4.0);

    core::PhoenixScheme phoenix(core::Objective::Fair);
    cluster = phoenix.apply(apps, cluster).pack.state;
    std::cout << "steady state: " << cluster.assignment().size()
              << " pods running, utilization "
              << cluster.utilization() << "\n";

    // Disaster: half the capacity gone.
    sim::FailureInjector injector{util::Rng(1)};
    injector.failCapacityFraction(cluster, 0.5);
    std::cout << "after failure: " << cluster.healthyCapacity()
              << " CPUs healthy\n";

    // Replan. Phoenix turns off the least-critical containers and
    // restarts the critical ones within the surviving capacity.
    const core::SchemeResult result = phoenix.apply(apps, cluster);
    const sim::ActiveSet active = result.activeSet(apps);

    std::cout << "plan: " << result.pack.actions.size()
              << " actions, planned in " << result.planSeconds * 1e3
              << " ms\n";
    for (const auto &app : apps) {
        std::cout << "  " << app.name << ":";
        for (const auto &ms : app.services) {
            std::cout << " " << ms.name << "="
                      << (active[app.id][ms.id] ? "on" : "off");
        }
        std::cout << "\n";
    }
    std::cout << "critical availability: "
              << sim::criticalServiceAvailability(apps, active) << "\n";
    return 0;
}
