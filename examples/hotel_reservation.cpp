/**
 * @file
 * Diagonal-scaling compliance demo on HotelReservation (§5): stock
 * DeathStarBench HR crashes user-visibly when a non-critical
 * downstream service is disabled; the error-handling retrofit makes it
 * degrade gracefully (guest reservations at utility 0.8 when the user
 * service is off). The chaos-testing service then validates the
 * criticality tagging of both variants across failure degrees.
 *
 * Build & run:  ./build/examples/hotel_reservation
 */

#include <iostream>
#include <set>

#include "apps/hotel.h"
#include "core/chaos.h"
#include "util/table.h"

using namespace phoenix;
using namespace phoenix::apps;

namespace {

void
showDegradation(const ServiceApp &sapp, const std::string &label)
{
    std::cout << "\n--- " << label << " ---\n";
    std::set<sim::MsId> running;
    for (const auto &ms : sapp.app.services)
        running.insert(ms.id);
    running.erase(hotel::kRecommendation);
    running.erase(hotel::kUser);

    util::Table table({"request", "offered rps", "served rps",
                       "utility"});
    for (const auto &point : evaluateTraffic(sapp, running, 0.6)) {
        table.row()
            .cell(point.request)
            .cell(point.offeredRps, 1)
            .cell(point.servedRps, 1)
            .cell(point.utility, 2);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "Disabling the recommendation and user microservices "
                 "(both non-critical for HR1's 'reserve' goal):\n";

    showDegradation(makeHotelReservation(1, /*compliant=*/false),
                    "stock DeathStarBench HR (front end hard-depends "
                    "on them: everything fails)");
    showDegradation(makeHotelReservation(1, /*compliant=*/true),
                    "with the error-handling retrofit (reserve keeps "
                    "serving; guest checkout at utility 0.8)");

    // Chaos-test the tagging of the compliant variant.
    std::cout << "\nChaos suite over failure degrees:\n";
    const auto report =
        core::runChaosSuite(makeHotelReservation(1, true));
    util::Table table({"failure-degree", "disabled-through",
                       "utility", "critical-goal"});
    for (const auto &trial : report.trials) {
        table.row()
            .cell(trial.failureDegree, 2)
            .cell(trial.lowestDisabledLevel
                      ? "C" + std::to_string(trial.lowestDisabledLevel)
                      : "-")
            .cell(trial.utility, 3)
            .cell(trial.criticalGoalMet ? "met" : "LOST");
    }
    table.print(std::cout);
    std::cout << "tagging effective: "
              << (report.taggingEffective ? "yes" : "NO") << "\n";
    return 0;
}
