/**
 * @file
 * End-to-end failover demo: Overleaf + HotelReservation instances on
 * the mini-Kubernetes cluster with the Phoenix controller attached.
 * Stops kubelet on half the nodes mid-run, watches Phoenix detect the
 * failure, shed non-critical microservices and restore critical
 * throughput, then bring everything back when the nodes recover —
 * the Fig 6 storyline as a runnable example.
 *
 * Build & run:  ./build/examples/overleaf_failover
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "apps/cloudlab.h"
#include "core/controller.h"
#include "core/schemes.h"
#include "kube/kube.h"
#include "sim/metrics.h"

using namespace phoenix;

int
main()
{
    sim::EventQueue events;
    kube::KubeCluster cluster(events);

    const apps::CloudLabTestbed testbed = apps::makeCloudLabTestbed();
    for (size_t n = 0; n < testbed.config.nodeCount; ++n)
        cluster.addNode(testbed.config.cpusPerNode);
    for (const auto &sapp : testbed.serviceApps)
        cluster.addApplication(sapp.app);

    core::PhoenixController controller(
        events, cluster,
        std::make_unique<core::PhoenixScheme>(core::Objective::Cost));

    // Fail 14 of 25 nodes at t=600 s, restore at t=1500 s.
    events.schedule(600.0, [&] {
        std::cout << "[t=600] stopping kubelet on 14 nodes\n";
        for (sim::NodeId n = 0; n < 14; ++n)
            cluster.stopKubelet(n);
    });
    events.schedule(1500.0, [&] {
        std::cout << "[t=1500] kubelets restarting\n";
        for (sim::NodeId n = 0; n < 14; ++n)
            cluster.startKubelet(n);
    });

    // Observe every two minutes.
    for (double t = 120.0; t <= 1920.0; t += 120.0) {
        events.schedule(t, [&, t] {
            sim::ActiveSet active =
                sim::emptyActiveSet(cluster.apps());
            for (const auto &pod : cluster.runningPods())
                active[pod.app][pod.ms] = true;
            std::cout << "[t=" << std::setw(4) << t << "] running="
                      << cluster.runningPods().size() << " pending="
                      << cluster.pendingCount()
                      << " critical-availability="
                      << sim::criticalServiceAvailability(
                             cluster.apps(), active)
                      << "\n";
        });
    }

    events.runUntil(1920.0);

    std::cout << "\nPhoenix replanning timeline:\n";
    for (const auto &record : controller.history()) {
        std::cout << "  t=" << record.detectedAt << " capacity "
                  << record.capacityBefore << " -> "
                  << record.capacityAfter << ", plan "
                  << record.planSeconds * 1e3 << " ms, "
                  << record.deletes << " deletes, "
                  << record.migrations << " migrations, "
                  << record.restarts << " restarts";
        if (record.recoveredAt >= 0.0) {
            std::cout << ", recovered at t=" << record.recoveredAt
                      << " (+"
                      << record.recoveredAt - record.detectedAt
                      << " s)";
        }
        std::cout << "\n";
    }
    return 0;
}
